#!/usr/bin/env python3
"""Schema and sanity check for perf_simcore's BENCH_simcore.json.

CI runs this right after the benchmark. Wall-clock throughput is NOT
gated (shared runners make absolute numbers indicative only); what IS
gated is that the benchmark produced a well-formed report: the headline
cell exists and carries its speedup field, scaling and legacy-twin cells
carry theirs, and the per-cell counters are internally consistent
(delivered can never exceed offered load, throughput must match
delivered / seconds). A malformed or truncated JSON fails the build.

Usage: check_bench_json.py BENCH_simcore.json
"""

import json
import sys

REQUIRED_CELL_FIELDS = (
    "name", "topology", "router", "static_faults", "injection_rate",
    "warmup_cycles", "measure_cycles", "threads", "fabric", "active_set",
    "seconds", "cycles_per_sec", "generated", "delivered",
    "carryover_delivered", "total_hops", "packets_per_sec", "hops_per_sec",
)

# packets_per_sec is serialized with %.6g; allow generous rounding slack.
THROUGHPUT_REL_TOL = 0.02


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_cell(cell):
    name = cell.get("name", "<unnamed>")
    for field in REQUIRED_CELL_FIELDS:
        if field not in cell:
            fail(f"cell {name}: missing field '{field}'")
    if cell["seconds"] <= 0:
        fail(f"cell {name}: nonpositive seconds {cell['seconds']}")
    if cell["carryover_delivered"] < 0:
        fail(f"cell {name}: negative carryover_delivered")
    # delivered counts only measurement-window-born packets; carryover
    # deliveries are tallied separately, so this must hold exactly.
    if cell["delivered"] > cell["generated"]:
        fail(f"cell {name}: delivered {cell['delivered']} exceeds "
             f"generated {cell['generated']}")
    if cell["delivered"] > cell["generated"] + cell["carryover_delivered"]:
        fail(f"cell {name}: delivered exceeds generated + carryover")
    expect_pps = cell["delivered"] / cell["seconds"]
    got_pps = cell["packets_per_sec"]
    if expect_pps > 0 and abs(got_pps - expect_pps) > THROUGHPUT_REL_TOL * expect_pps:
        fail(f"cell {name}: packets_per_sec {got_pps} inconsistent with "
             f"delivered/seconds = {expect_pps:.0f}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_simcore.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {sys.argv[1]}: {err}")

    if report.get("bench") != "perf_simcore":
        fail(f"unexpected bench id {report.get('bench')!r}")
    if report.get("schema_version", 0) < 2:
        fail(f"schema_version {report.get('schema_version')!r} < 2")

    baseline = report.get("baseline")
    if not isinstance(baseline, dict):
        fail("missing baseline object")
    headline_name = baseline.get("headline_cell")
    if not headline_name:
        fail("baseline.headline_cell missing")
    if baseline.get("packets_per_sec", 0) <= 0:
        fail("baseline.packets_per_sec missing or nonpositive")

    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    by_name = {}
    for cell in cells:
        check_cell(cell)
        by_name[cell["name"]] = cell

    headline = by_name.get(headline_name)
    if headline is None:
        fail(f"headline cell {headline_name!r} not in report")
    if "speedup_vs_baseline" not in headline:
        fail(f"headline cell {headline_name!r} lacks speedup_vs_baseline")
    if headline["speedup_vs_baseline"] <= 0:
        fail("headline speedup_vs_baseline must be positive")

    for name, cell in by_name.items():
        # A cell with a <name>_legacy twin is an active-set comparison pair
        # and must report the measured ratio.
        if f"{name}_legacy" in by_name and "speedup_vs_legacy" not in cell:
            fail(f"cell {name}: has a legacy twin but no speedup_vs_legacy")
        # Thread-scaling cells (threads > 1 against a named 1-thread base)
        # must report their curve point.
        if cell["threads"] > 1 and "speedup_vs_threads1" not in cell:
            fail(f"cell {name}: threads={cell['threads']} but no "
                 "speedup_vs_threads1")

    print(f"check_bench_json: OK: {len(cells)} cells, headline "
          f"{headline_name} speedup_vs_baseline="
          f"{headline['speedup_vs_baseline']:.2f}")


if __name__ == "__main__":
    main()
