#!/usr/bin/env python3
"""Schema and sanity check for the JSON benchmark reports.

CI runs this right after each benchmark. Wall-clock throughput is NOT
gated (shared runners make absolute numbers indicative only); what IS
gated is that the benchmark produced a well-formed report. The file's
"bench" field selects the checker:

  perf_simcore   the headline cell exists and carries its speedup field,
                 scaling and legacy-twin cells carry theirs, per-cell
                 counters are internally consistent (delivered can never
                 exceed offered load, throughput must match
                 delivered / seconds), and every scaling cell's packet
                 counters are bit-identical to its threads=1 base cell —
                 the determinism contract, visible in the report itself;
  abl_recovery   all four recovery cells are present with closed packet
                 accounting, the transient-with-retries cell recovered to
                 a delivery ratio >= 0.99, and the same churn made
                 permanent stayed strictly degraded.

A malformed or truncated JSON fails the build.

--min-scaling X additionally requires every speedup_vs_threads1 to be
>= X. CI passes it only on runners with enough cores for the worker
counts being gated; on smaller machines the scaling cells are
oversubscribed by design and only their shape is checked.

--min-throughput-ratio X additionally requires the headline cell's
speedup_vs_baseline to be >= X. Like --min-scaling it is opt-in: the
committed BENCH_simcore.json is regenerated on a quiet machine and gated
at the PR's target ratio, while CI's shared runners check shape only.

Schema version 3 adds a per-cell "phase_breakdown" object (drain / inject
/ advance / commit wall-clock attribution in nanoseconds); reports that
declare schema_version >= 3 must carry it in every cell. Version-2
reports remain accepted without it.

Schema version 4 adds "simd" (the dispatch level the cell's kernels ran
at), "timed_seconds" (wall time of the one instrumented pass that
produced phase_breakdown), and serializes every floating-point field as a
float — cycles_per_sec used to flip between int and float across cells.

Schema version 5 adds a top-level "provenance" object — the same
identifying tuple the simulator's checkpoint header carries (seed,
topology, router, simd, threads, schema_version, build_type) — so a
report is attributable to the run that produced it. Version-5 reports
must carry every provenance field, its simd level must be a known
dispatch level, its schema_version must match the top-level one, and its
build_type must be "optimized" or "debug". Version-4 reports remain
accepted without it.
Version-4 reports are additionally checked for: cycles_per_sec being an
actual float consistent with (warmup + measure) / seconds, the
phase_breakdown components summing to at most threads * timed_seconds
(phases are accumulated across workers, so a multi-thread cell's sum may
legitimately exceed wall time but never the worker-time budget), and
_simd_scalar twin cells carrying bit-identical packet counters to their
vectorized partner — the SIMD dispatch determinism contract, visible in
the report itself.

Usage: check_bench_json.py [--min-scaling X] [--min-throughput-ratio X]
                           BENCH_simcore.json
       check_bench_json.py BENCH_recovery.json
"""

import argparse
import json
import sys

REQUIRED_CELL_FIELDS = (
    "name", "topology", "router", "static_faults", "injection_rate",
    "warmup_cycles", "measure_cycles", "threads", "fabric", "active_set",
    "seconds", "cycles_per_sec", "generated", "delivered",
    "carryover_delivered", "total_hops", "packets_per_sec", "hops_per_sec",
)

REQUIRED_RECOVERY_FIELDS = (
    "name", "delivery_ratio", "generated", "delivered", "repairs_applied",
    "fault_events", "parked_retries", "retransmits", "gave_up",
    "dropped_no_route", "dropped_hop_limit", "orphaned", "in_flight_at_end",
    "accounting_closed",
)

RECOVERY_CELLS = (
    "fault_free", "transient_retry", "transient_no_retry", "permanent",
)

# packets_per_sec is serialized with %.6g; allow generous rounding slack.
THROUGHPUT_REL_TOL = 0.02

PHASE_BREAKDOWN_FIELDS = ("drain_ns", "inject_ns", "advance_ns", "commit_ns")

SIMD_LEVELS = ("scalar", "sse", "avx2")

# cycles_per_sec must reproduce (warmup + measure) / seconds; both come
# from the same run so only float-formatting slack applies.
CYCLES_REL_TOL = 0.02

# phase sum <= threads * timed_seconds, plus slack for the clock reads
# bracketing run() sitting outside the per-phase windows.
PHASE_SUM_REL_TOL = 0.05


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_cell(cell, require_phases=False, require_v4=False):
    name = cell.get("name", "<unnamed>")
    for field in REQUIRED_CELL_FIELDS:
        if field not in cell:
            fail(f"cell {name}: missing field '{field}'")
    if require_phases:
        phases = cell.get("phase_breakdown")
        if not isinstance(phases, dict):
            fail(f"cell {name}: schema_version >= 3 requires a "
                 "phase_breakdown object")
        for field in PHASE_BREAKDOWN_FIELDS:
            value = phases.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"cell {name}: phase_breakdown.{field} missing or "
                     "negative")
    if require_v4:
        if cell.get("simd") not in SIMD_LEVELS:
            fail(f"cell {name}: simd {cell.get('simd')!r} not one of "
                 f"{SIMD_LEVELS}")
        timed = cell.get("timed_seconds")
        if not isinstance(timed, float) or timed <= 0:
            fail(f"cell {name}: timed_seconds missing, non-float, or "
                 "nonpositive")
        # The bug this schema rev fixed: %g serialization emitted
        # cycles_per_sec as an int in some cells and a float in others.
        if not isinstance(cell["cycles_per_sec"], float):
            fail(f"cell {name}: cycles_per_sec {cell['cycles_per_sec']!r} "
                 "must be serialized as a float")
        expect_cps = (cell["warmup_cycles"] + cell["measure_cycles"]) \
            / cell["seconds"]
        got_cps = cell["cycles_per_sec"]
        if abs(got_cps - expect_cps) > CYCLES_REL_TOL * expect_cps:
            fail(f"cell {name}: cycles_per_sec {got_cps} inconsistent with "
                 f"(warmup + measure) / seconds = {expect_cps:.0f}")
        phase_sum_sec = sum(cell["phase_breakdown"][f]
                            for f in PHASE_BREAKDOWN_FIELDS) / 1e9
        budget = cell["threads"] * timed * (1.0 + PHASE_SUM_REL_TOL)
        if phase_sum_sec > budget:
            fail(f"cell {name}: phase_breakdown sum {phase_sum_sec:.4f}s "
                 f"exceeds threads * timed_seconds budget {budget:.4f}s")
    if cell["seconds"] <= 0:
        fail(f"cell {name}: nonpositive seconds {cell['seconds']}")
    if cell["carryover_delivered"] < 0:
        fail(f"cell {name}: negative carryover_delivered")
    # delivered counts only measurement-window-born packets; carryover
    # deliveries are tallied separately, so this must hold exactly.
    if cell["delivered"] > cell["generated"]:
        fail(f"cell {name}: delivered {cell['delivered']} exceeds "
             f"generated {cell['generated']}")
    if cell["delivered"] > cell["generated"] + cell["carryover_delivered"]:
        fail(f"cell {name}: delivered exceeds generated + carryover")
    expect_pps = cell["delivered"] / cell["seconds"]
    got_pps = cell["packets_per_sec"]
    if expect_pps > 0 and abs(got_pps - expect_pps) > THROUGHPUT_REL_TOL * expect_pps:
        fail(f"cell {name}: packets_per_sec {got_pps} inconsistent with "
             f"delivered/seconds = {expect_pps:.0f}")


PROVENANCE_FIELDS = (
    "seed", "topology", "router", "simd", "threads", "schema_version",
    "build_type",
)

BUILD_TYPES = ("optimized", "debug")


def check_provenance(report):
    prov = report.get("provenance")
    if not isinstance(prov, dict):
        fail("schema_version >= 5 requires a provenance object")
    for field in PROVENANCE_FIELDS:
        if field not in prov:
            fail(f"provenance: missing field '{field}'")
    if not isinstance(prov["seed"], int) or prov["seed"] < 0:
        fail(f"provenance: seed {prov['seed']!r} must be a nonnegative int")
    for field in ("topology", "router"):
        if not isinstance(prov[field], str) or not prov[field]:
            fail(f"provenance: {field} must be a nonempty string")
    if prov["simd"] not in SIMD_LEVELS:
        fail(f"provenance: simd {prov['simd']!r} not one of {SIMD_LEVELS}")
    if not isinstance(prov["threads"], int) or prov["threads"] < 1:
        fail(f"provenance: threads {prov['threads']!r} must be a positive "
             "int")
    if prov["schema_version"] != report.get("schema_version"):
        fail(f"provenance: schema_version {prov['schema_version']!r} "
             f"disagrees with the report's {report.get('schema_version')!r}")
    if prov["build_type"] not in BUILD_TYPES:
        fail(f"provenance: build_type {prov['build_type']!r} not one of "
             f"{BUILD_TYPES}")


def check_perf_simcore(report, min_scaling=None, min_throughput_ratio=None):
    if report.get("schema_version", 0) < 2:
        fail(f"schema_version {report.get('schema_version')!r} < 2")
    require_phases = report.get("schema_version", 0) >= 3
    require_v4 = report.get("schema_version", 0) >= 4
    if report.get("schema_version", 0) >= 5:
        check_provenance(report)

    baseline = report.get("baseline")
    if not isinstance(baseline, dict):
        fail("missing baseline object")
    headline_name = baseline.get("headline_cell")
    if not headline_name:
        fail("baseline.headline_cell missing")
    if baseline.get("packets_per_sec", 0) <= 0:
        fail("baseline.packets_per_sec missing or nonpositive")

    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    by_name = {}
    for cell in cells:
        check_cell(cell, require_phases=require_phases, require_v4=require_v4)
        by_name[cell["name"]] = cell

    headline = by_name.get(headline_name)
    if headline is None:
        fail(f"headline cell {headline_name!r} not in report")
    if "speedup_vs_baseline" not in headline:
        fail(f"headline cell {headline_name!r} lacks speedup_vs_baseline")
    if headline["speedup_vs_baseline"] <= 0:
        fail("headline speedup_vs_baseline must be positive")
    if min_throughput_ratio is not None and \
            headline["speedup_vs_baseline"] < min_throughput_ratio:
        fail(f"headline speedup_vs_baseline "
             f"{headline['speedup_vs_baseline']:.3f} below required "
             f"{min_throughput_ratio:.3f}")

    for name, cell in by_name.items():
        # A cell with a <name>_legacy twin is an active-set comparison pair
        # and must report the measured ratio.
        if f"{name}_legacy" in by_name and "speedup_vs_legacy" not in cell:
            fail(f"cell {name}: has a legacy twin but no speedup_vs_legacy")
        # Likewise a <name>_simd_scalar twin: same workload with kernels
        # pinned scalar. The vectorized cell must report the attribution
        # ratio, and the twin's packet counters must match bit for bit —
        # SIMD dispatch may change wall time, never a decision.
        twin = by_name.get(f"{name}_simd_scalar")
        if twin is not None:
            if "speedup_vs_simd_scalar" not in cell:
                fail(f"cell {name}: has a simd_scalar twin but no "
                     "speedup_vs_simd_scalar")
            if require_v4 and twin.get("simd") != "scalar":
                fail(f"cell {name}_simd_scalar: simd level "
                     f"{twin.get('simd')!r} is not 'scalar'")
            for counter in ("generated", "delivered", "total_hops"):
                if cell[counter] != twin[counter]:
                    fail(f"cell {name}: {counter} {cell[counter]} differs "
                         f"from simd_scalar twin ({twin[counter]}) — "
                         "SIMD dispatch determinism violated")
        # Thread-scaling cells (threads > 1 against a named 1-thread base)
        # must report their curve point.
        if cell["threads"] > 1 and "speedup_vs_threads1" not in cell:
            fail(f"cell {name}: threads={cell['threads']} but no "
                 "speedup_vs_threads1")
        base_name = cell.get("scaling_base")
        if base_name is not None:
            base = by_name.get(base_name)
            if base is None:
                fail(f"cell {name}: scaling_base {base_name!r} not in report")
            # The simulator guarantees bit-identical metrics for any worker
            # count; a scaling cell whose counters drift from its threads=1
            # base is a determinism break, not a perf result.
            for counter in ("generated", "delivered", "total_hops"):
                if cell[counter] != base[counter]:
                    fail(f"cell {name}: {counter} {cell[counter]} differs "
                         f"from base {base_name} ({base[counter]}) — "
                         "thread-count determinism violated")
            if min_scaling is not None and \
                    cell["speedup_vs_threads1"] < min_scaling:
                fail(f"cell {name}: speedup_vs_threads1 "
                     f"{cell['speedup_vs_threads1']:.2f} below required "
                     f"{min_scaling:.2f} — threads={cell['threads']} must "
                     "beat threads=1 on this machine")

    scaled = [c for c in cells if "speedup_vs_threads1" in c]
    curve = ", ".join(f"t{c['threads']}={c['speedup_vs_threads1']:.2f}x"
                      for c in scaled)
    print(f"check_bench_json: OK: {len(cells)} cells, headline "
          f"{headline_name} speedup_vs_baseline="
          f"{headline['speedup_vs_baseline']:.2f}"
          + (f", scaling {curve}" if curve else ""))


def check_recovery_cell(cell):
    name = cell.get("name", "<unnamed>")
    for field in REQUIRED_RECOVERY_FIELDS:
        if field not in cell:
            fail(f"cell {name}: missing field '{field}'")
    if not 0.0 <= cell["delivery_ratio"] <= 1.0:
        fail(f"cell {name}: delivery_ratio {cell['delivery_ratio']} "
             "outside [0, 1]")
    if cell["delivered"] > cell["generated"]:
        fail(f"cell {name}: delivered {cell['delivered']} exceeds "
             f"generated {cell['generated']}")
    # The benchmark runs with warmup 0 precisely so the accounting identity
    # closes exactly; an open identity means the retry machinery leaked or
    # double-counted a packet.
    if cell["accounting_closed"] is not True:
        fail(f"cell {name}: packet accounting identity did not close")


def check_abl_recovery(report):
    if report.get("schema_version", 0) < 1:
        fail(f"schema_version {report.get('schema_version')!r} < 1")
    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    by_name = {}
    for cell in cells:
        check_recovery_cell(cell)
        by_name[cell["name"]] = cell
    for name in RECOVERY_CELLS:
        if name not in by_name:
            fail(f"recovery cell {name!r} not in report")

    healed = by_name["transient_retry"]["delivery_ratio"]
    broken = by_name["permanent"]["delivery_ratio"]
    if healed < 0.99:
        fail(f"transient_retry delivery_ratio {healed} below 0.99 — "
             "retries over healing faults failed to recover")
    if healed <= broken:
        fail(f"permanent churn should stay degraded: transient_retry "
             f"{healed} vs permanent {broken}")
    if by_name["transient_retry"]["repairs_applied"] == 0:
        fail("transient_retry applied no repairs — schedule broken")
    if by_name["permanent"]["repairs_applied"] != 0:
        fail("permanent cell applied repairs — without_repairs() broken")

    print(f"check_bench_json: OK: {len(cells)} cells, transient_retry "
          f"delivery={healed:.4f} vs permanent {broken:.4f}")


def main():
    parser = argparse.ArgumentParser(
        description="schema/sanity check for BENCH_*.json reports")
    parser.add_argument("report", help="BENCH_<name>.json to check")
    parser.add_argument(
        "--min-scaling", type=float, default=None, metavar="X",
        help="require every speedup_vs_threads1 >= X (perf_simcore only; "
        "pass on runners with enough cores for the gated worker counts)")
    parser.add_argument(
        "--min-throughput-ratio", type=float, default=None, metavar="X",
        help="require the headline cell's speedup_vs_baseline >= X "
        "(perf_simcore only; pass when gating a report regenerated on a "
        "quiet machine, not on shared CI runners)")
    args = parser.parse_args()
    try:
        with open(args.report, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.report}: {err}")

    bench = report.get("bench")
    if bench == "perf_simcore":
        check_perf_simcore(report, min_scaling=args.min_scaling,
                           min_throughput_ratio=args.min_throughput_ratio)
    elif bench == "abl_recovery":
        if args.min_scaling is not None:
            fail("--min-scaling only applies to perf_simcore reports")
        if args.min_throughput_ratio is not None:
            fail("--min-throughput-ratio only applies to perf_simcore "
                 "reports")
        check_abl_recovery(report)
    else:
        fail(f"unexpected bench id {bench!r}")


if __name__ == "__main__":
    main()
