// Quickstart: build a Gaussian Cube, look at its structure, and route a
// packet with the fault-free FFGCR strategy.
//
//   $ ./quickstart
//
// Walks through the library's core objects: GaussianCube (topology),
// GaussianTree (the class-level quotient tree), and FfgcrRouter (paper
// Algorithm 3).
#include <iostream>

#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"

int main() {
  using namespace gcube;

  // GC(8, 4): 256 nodes, modulus 4 => alpha = 2, four ending classes.
  const GaussianCube gc(8, 4);
  std::cout << "Topology " << gc.name() << ": " << gc.node_count()
            << " nodes, " << gc.link_count() << " links (binary hypercube "
            << "H_8 would have " << 8 * 128 << ")\n\n";

  // The low alpha bits of a node name its ending class; each class owns a
  // set of hypercube dimensions Dim(k).
  for (NodeId k = 0; k < gc.class_count(); ++k) {
    std::cout << "class " << k << ": Dim(k) = {";
    bool first = true;
    for (const Dim c : gc.high_dims(k)) {
      std::cout << (first ? "" : ", ") << c;
      first = false;
    }
    std::cout << "} — GEEC hypercubes of dimension " << gc.high_dim_count(k)
              << "\n";
  }

  // Classes form the Gaussian Tree T_alpha; inter-class moves are tree
  // edges realized by links in dimensions < alpha.
  const GaussianTree tree(gc.alpha());
  std::cout << "\nGaussian Tree T_" << gc.alpha() << " diameter: "
            << tree.diameter() << "\n";

  // Route a packet.
  const NodeId src = 0b00010110;
  const NodeId dst = 0b11001001;
  const FfgcrRouter router(gc);
  const RoutingResult result = router.plan(src, dst);
  std::cout << "\nFFGCR route " << src << " -> " << dst << " ("
            << result.route->length() << " hops, provably optimal):\n  ";
  for (const NodeId node : result.route->nodes()) {
    std::cout << node << " ";
  }
  std::cout << "\n  dimensions crossed: ";
  for (const Dim c : result.route->hops()) {
    std::cout << c << " ";
  }
  std::cout << "\n";
  return 0;
}
