// Fault-tolerance demo: inject faults of each category into a Gaussian
// Cube, check the paper's preconditions, and watch FTGCR route around them.
//
//   $ ./fault_tolerance_demo
//
// Shows: fault categorization (Definitions 3-5), precondition checking
// (Theorems 3/5), and the detour cost of routing under faults.
#include <iostream>

#include "fault/categorize.hpp"
#include "fault/preconditions.hpp"
#include "fault/tolerance_bound.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"

int main() {
  using namespace gcube;
  const GaussianCube gc(9, 2);  // alpha = 1: two ending classes
  std::cout << "Topology " << gc.name() << ", tolerance bound T = "
            << max_tolerable_faults(gc) << " A-category faults\n\n";

  FaultSet faults;
  faults.fail_link(0b000000000, 2);  // A-category: high-dimension link
  faults.fail_link(0b000000100, 0);  // B-category: tree-dimension link
  faults.fail_node(0b000010001);     // C-category: node with links on both levels

  std::cout << "Injected faults:\n";
  for (const LinkId& l : faults.faulty_links()) {
    std::cout << "  link (" << l.lo << " <-> " << l.hi() << ") dim " << l.dim
              << "  category "
              << to_string(categorize_link_fault(gc, l.dim)) << "\n";
  }
  for (const NodeId u : faults.faulty_nodes()) {
    std::cout << "  node " << u << "  category "
              << to_string(categorize_node_fault(gc, u)) << "\n";
  }

  const auto report = check_ftgcr_precondition(gc, faults);
  std::cout << "\nFTGCR precondition: " << (report.holds ? "HOLDS" : "VIOLATED")
            << "\n";
  for (const auto& v : report.violations) {
    std::cout << "  " << v.what << "\n";
  }

  const FfgcrRouter baseline(gc);
  const FtgcrRouter router(gc, faults);
  struct Pair {
    NodeId s, d;
  };
  // Pairs chosen to cross each fault's neighborhood.
  const Pair pairs[] = {{0b000000000, 0b000000100},
                        {0b000000100, 0b000000101},
                        {0b000010000, 0b000010011},
                        {0b111111110, 0b000000001}};
  std::cout << "\nroutes (FTGCR vs fault-free optimum):\n";
  for (const auto& [s, d] : pairs) {
    FtgcrStats stats;
    const auto result = router.plan_with_stats(s, d, stats);
    if (!result.delivered()) {
      std::cout << "  " << s << " -> " << d << ": FAILED (" << result.failure
                << ")\n";
      continue;
    }
    const auto check = validate_route(gc, faults, *result.route);
    std::cout << "  " << s << " -> " << d << ": " << result.route->length()
              << " hops (optimum " << baseline.optimal_length(s, d)
              << "), faults encountered " << stats.faults_encountered
              << ", valid under faults: " << (check.ok ? "yes" : "NO") << "\n";
  }
  return 0;
}
