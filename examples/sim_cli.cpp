// sim_cli: run one simulation cell of the paper's evaluation from the
// command line — the tool for exploring parameters beyond the bundled
// benchmarks.
//
//   $ ./sim_cli --n 10 --modulus 4 --rate 0.05 --cycles 2000
//   $ ./sim_cli --n 9 --modulus 2 --faults 2 --pattern hotspot
//   $ ./sim_cli --n 8 --modulus 2 --buffers 4 --rate 0.3
//
// Dynamic-fault mode (faults arriving while packets are in flight):
//
//   $ ./sim_cli --n 9 --modulus 1 --fault-rate 0.002 --router ftgcr
//   $ ./sim_cli --n 9 --modulus 2 --fault-schedule events.txt
//
// where events.txt holds one event per line:
//   # comment
//   <cycle> node <node-id>
//   <cycle> link <node-id> <dim>
//   <cycle> repair-node <node-id>
//   <cycle> repair-link <node-id> <dim>
//
// Transient-fault recovery (repairs, flapping links, retry delivery):
//
//   $ ./sim_cli --n 9 --fault-rate 0.002 --fault-repair 250
//               --retry-limit 8 --retry-budget 4    (one command line)
//   $ ./sim_cli --n 9 --flap-links 16 --mttf 300 --mttr 60 --retry-limit 8
//
// Checkpoint / crash recovery (see sim/checkpoint.hpp for guarantees):
//
//   $ ./sim_cli --n 8 --checkpoint-every 500 --checkpoint-path run.ckpt
//   $ ./sim_cli --n 8 --resume run.ckpt            # same other flags!
//   $ ./sim_cli --n 8 --checkpoint-every 500 --checkpoint-path run.ckpt
//               --crash-at-cycle 1234 (one line)   # hard _exit(137) mid-run
//
// SIGINT/SIGTERM finish the current cycle, write a final checkpoint (when
// --checkpoint-path is set) plus the metrics summary, and exit 130.
#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

gcube::TrafficPattern parse_pattern(const std::string& name) {
  using gcube::TrafficPattern;
  if (name == "uniform") return TrafficPattern::kUniform;
  if (name == "complement") return TrafficPattern::kBitComplement;
  if (name == "reversal") return TrafficPattern::kBitReversal;
  if (name == "transpose") return TrafficPattern::kTranspose;
  if (name == "hotspot") return TrafficPattern::kHotspot;
  throw std::invalid_argument("unknown pattern '" + name +
                              "' (uniform|complement|reversal|transpose|"
                              "hotspot)");
}

gcube::SimRouterKind parse_router(const std::string& name) {
  using gcube::SimRouterKind;
  if (name == "auto") return SimRouterKind::kAuto;
  if (name == "ffgcr") return SimRouterKind::kFfgcr;
  if (name == "ftgcr") return SimRouterKind::kFtgcr;
  if (name == "ecube") return SimRouterKind::kEcube;
  throw std::invalid_argument("unknown router '" + name +
                              "' (auto|ffgcr|ftgcr|ecube)");
}

/// SIGINT/SIGTERM flag, polled by the simulator at every serial point.
/// The handler only stores to an atomic (async-signal-safe); the graceful
/// work — finishing the cycle, the final checkpoint, the summary — all
/// happens on the normal control path.
std::atomic<bool> g_stop_requested{false};

extern "C" void handle_stop_signal(int) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcube;
  try {
    CliArgs args(argc, argv);
    args.allow({"n", "modulus", "rate", "cycles", "warmup", "faults",
                "pattern", "seed", "buffers", "service", "router",
                "fault-schedule", "fault-rate", "fault-repair", "flap-links",
                "mttf", "mttr", "retry-limit", "retry-backoff",
                "retry-budget", "retransmit-timeout", "threads",
                "oversubscribe", "no-fabric", "no-active-set", "no-batch",
                "simd", "checkpoint-every", "checkpoint-path", "resume",
                "crash-at-cycle", "help"});
    if (args.get_bool("help")) {
      std::cout
          << "usage: sim_cli [--n N] [--modulus M] [--rate R] [--cycles C]\n"
          << "               [--warmup W] [--faults F] [--pattern P]\n"
          << "               [--seed S] [--buffers B] [--service K]\n"
          << "               [--router auto|ffgcr|ftgcr|ecube]\n"
          << "               [--fault-schedule FILE] [--fault-rate R]\n"
          << "               [--fault-repair D] [--flap-links L]\n"
          << "               [--mttf M] [--mttr M] [--retry-limit K]\n"
          << "               [--retry-backoff B] [--retry-budget R]\n"
          << "               [--retransmit-timeout T]\n"
          << "               [--threads T] [--oversubscribe]\n"
          << "               [--no-fabric] [--no-active-set] [--no-batch]\n"
          << "               [--simd scalar|sse|avx2]\n"
          << "               [--checkpoint-every N] [--checkpoint-path F]\n"
          << "               [--resume F] [--crash-at-cycle N]\n"
          << "--fault-schedule/--fault-rate enable dynamic-fault mode:\n"
          << "scheduled events mutate the network mid-run and packets\n"
          << "re-route per hop around faults discovered en route.\n"
          << "--fault-repair D: each random node fault heals D cycles\n"
          << "after it lands (transient faults).\n"
          << "--flap-links L with --mttf/--mttr: L links fail and heal\n"
          << "repeatedly (geometric up/down times with those means).\n"
          << "--retry-limit K: park a stranded packet up to K times with\n"
          << "exponential backoff (--retry-backoff, default 2) instead of\n"
          << "dropping it; --retry-budget R adds up to R end-to-end\n"
          << "source retransmits after --retransmit-timeout cycles.\n"
          << "--threads: simulation worker threads (0 = auto). Metrics\n"
          << "are bit-identical for any thread count at a fixed seed;\n"
          << "counts above the core count are clamped unless\n"
          << "--oversubscribe is given.\n"
          << "--no-fabric: disable table-driven next-hop steering (plan\n"
          << "each route at injection instead).\n"
          << "--no-active-set: disable the active-set cycle loop (scan\n"
          << "every node each cycle, per-cycle Bernoulli injection).\n"
          << "--no-batch: disable the batched word-at-a-time advance and\n"
          << "serve active nodes one at a time (metrics are bit-identical\n"
          << "either way; escape hatch for A/B timing and debugging —\n"
          << "GCUBE_SIM_NO_BATCH=1 does the same for any binary).\n"
          << "--simd: pin the vector-kernel dispatch level (default: best\n"
          << "the CPU supports; requests above it are clamped). Metrics\n"
          << "are bit-identical at every level — escape hatch for A/B\n"
          << "timing and equivalence checks, like --no-batch;\n"
          << "GCUBE_SIMD=scalar|sse|avx2 does the same for any binary.\n"
          << "--checkpoint-path F: save the full run state to F (atomic\n"
          << "write, previous generation kept as F.1); --checkpoint-every\n"
          << "N writes it entering every Nth cycle, and a SIGINT/SIGTERM\n"
          << "halt writes a final one. --resume F continues a run from a\n"
          << "checkpoint (same simulation flags required; --threads and\n"
          << "--simd may differ — final metrics are bit-identical to the\n"
          << "uninterrupted run). --crash-at-cycle N (or the\n"
          << "GCUBE_CRASH_AT_CYCLE env var) hard-exits with status 137\n"
          << "mid-run to exercise crash recovery.\n";
      return 0;
    }
    if (args.has("simd")) {
      const std::string simd = args.get_string("simd", "");
      const auto level = parse_simd_level(simd);
      if (!level) {
        throw std::invalid_argument("unknown --simd level '" + simd +
                                    "' (scalar|sse|avx2)");
      }
      set_simd_level(*level);
    }
    GcSimSpec spec;
    spec.n = static_cast<Dim>(args.get_int("n", 9));
    spec.modulus = static_cast<std::uint64_t>(args.get_int("modulus", 2));
    spec.faulty_nodes = static_cast<std::size_t>(args.get_int("faults", 0));
    spec.pattern = parse_pattern(args.get_string("pattern", "uniform"));
    spec.router = parse_router(args.get_string("router", "auto"));
    if (args.has("fault-schedule")) {
      spec.schedule =
          FaultSchedule::from_file(args.get_string("fault-schedule", ""));
    }
    spec.fault_rate = args.get_double("fault-rate", 0.0);
    spec.fault_repair_after =
        static_cast<Cycle>(args.get_int("fault-repair", 0));
    spec.flapping_links =
        static_cast<std::size_t>(args.get_int("flap-links", 0));
    spec.mttf = args.get_double("mttf", 200.0);
    spec.mttr = args.get_double("mttr", 50.0);
    spec.sim.retry_limit =
        static_cast<std::uint32_t>(args.get_int("retry-limit", 0));
    spec.sim.retry_backoff_base =
        static_cast<Cycle>(args.get_int("retry-backoff", 2));
    spec.sim.retry_budget =
        static_cast<std::uint32_t>(args.get_int("retry-budget", 0));
    spec.sim.retransmit_timeout =
        static_cast<Cycle>(args.get_int("retransmit-timeout", 64));
    spec.sim.injection_rate = args.get_double("rate", 0.02);
    spec.sim.measure_cycles =
        static_cast<Cycle>(args.get_int("cycles", 1500));
    spec.sim.warmup_cycles = static_cast<Cycle>(args.get_int("warmup", 300));
    spec.sim.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    spec.sim.buffer_limit =
        static_cast<std::uint32_t>(args.get_int("buffers", 0));
    spec.sim.service_rate =
        static_cast<std::uint32_t>(args.get_int("service", 4));
    spec.sim.threads = static_cast<std::uint32_t>(args.get_int("threads", 0));
    spec.sim.allow_oversubscribe = args.get_bool("oversubscribe");
    spec.sim.fabric = !args.get_bool("no-fabric");
    spec.sim.active_set = !args.get_bool("no-active-set");
    spec.sim.batch = !args.get_bool("no-batch");
    spec.sim.checkpoint_every =
        static_cast<Cycle>(args.get_int("checkpoint-every", 0));
    spec.sim.checkpoint_path = args.get_string("checkpoint-path", "");
    spec.sim.resume_from = args.get_string("resume", "");
    spec.sim.crash_at_cycle =
        static_cast<Cycle>(args.get_int("crash-at-cycle", 0));
    spec.sim.stop_requested = &g_stop_requested;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    const GcSimOutcome outcome = run_gc_simulation(spec);
    const SimMetrics& m = outcome.metrics;
    TextTable table({"metric", "value"});
    table.add_row({"topology", "GC(" + std::to_string(spec.n) + "," +
                                   std::to_string(spec.modulus) + ")"});
    table.add_row({"faults injected", std::to_string(outcome.faults_injected)});
    table.add_row({"fault events scheduled",
                   std::to_string(outcome.fault_events_scheduled)});
    table.add_row({"fault events applied (measured)",
                   std::to_string(m.fault_events)});
    table.add_row({"repairs applied", std::to_string(m.repairs_applied)});
    table.add_row({"generated (offered)", std::to_string(m.generated)});
    table.add_row({"accepted", std::to_string(m.accepted())});
    table.add_row({"delivered", std::to_string(m.delivered)});
    table.add_row({"carryover delivered (warmup-born)",
                   std::to_string(m.carryover_delivered)});
    table.add_row({"delivery ratio", fmt_double(m.delivery_ratio(), 4)});
    table.add_row({"dropped (at injection)", std::to_string(m.dropped)});
    table.add_row({"reroutes", std::to_string(m.reroutes)});
    table.add_row({"dropped no route", std::to_string(m.dropped_no_route)});
    table.add_row({"dropped hop limit",
                   std::to_string(m.dropped_hop_limit)});
    table.add_row({"orphaned by node fault",
                   std::to_string(m.orphaned_by_node_fault)});
    table.add_row({"parked retries", std::to_string(m.parked_retries)});
    table.add_row({"retransmits", std::to_string(m.retransmits)});
    table.add_row({"gave up", std::to_string(m.gave_up)});
    table.add_row({"in flight at end", std::to_string(m.in_flight_at_end)});
    table.add_row({"avg hops", fmt_double(m.avg_hops(), 3)});
    table.add_row({"avg latency (cycles)", fmt_double(m.avg_latency(), 3)});
    table.add_row({"p50 latency (<=)",
                   std::to_string(m.latency_histogram.percentile(0.50))});
    table.add_row({"p99 latency (<=)",
                   std::to_string(m.latency_histogram.percentile(0.99))});
    table.add_row({"throughput (pkts/cycle)", fmt_double(m.throughput(), 3)});
    table.add_row({"log2 throughput", fmt_double(m.log2_throughput(), 3)});
    table.add_row({"peak in flight", std::to_string(m.peak_in_flight)});
    table.add_row({"injections blocked", std::to_string(m.injections_blocked)});
    table.add_row({"stalled cycles", std::to_string(m.stalled_cycles)});
    table.add_row({"deadlocked", m.deadlocked ? "YES" : "no"});
    if (m.interrupted_at != 0) {
      table.add_row({"interrupted at cycle (partial metrics)",
                     std::to_string(m.interrupted_at)});
    }
    table.add_row({"threads (0 = auto)", std::to_string(spec.sim.threads)});
    table.add_row({"route cache hit rate",
                   fmt_double(m.plan_cache.hit_rate(), 4) + " (" +
                       std::to_string(m.plan_cache.hits) + "/" +
                       std::to_string(m.plan_cache.lookups()) + ", stale " +
                       std::to_string(m.plan_cache.stale) + ")"});
    table.add_row({"hop cache hit rate",
                   fmt_double(m.hop_cache.hit_rate(), 4) + " (" +
                       std::to_string(m.hop_cache.hits) + "/" +
                       std::to_string(m.hop_cache.lookups()) + ", stale " +
                       std::to_string(m.hop_cache.stale) + ")"});
    table.print(std::cout);
    if (m.interrupted_at != 0) {
      // Graceful signal halt: the final checkpoint (when --checkpoint-path
      // was given) and the summary above are already out; exit with the
      // conventional interrupted-by-SIGINT status.
      if (!spec.sim.checkpoint_path.empty()) {
        std::cerr << "sim_cli: interrupted at cycle "
                  << m.interrupted_at << "; resume with --resume "
                  << spec.sim.checkpoint_path << "\n";
      }
      return 130;
    }
    return m.deadlocked ? 3 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
