// Collectives demo: broadcast and multicast on a Gaussian Cube, fault-free
// and with a fault in the way.
//
//   $ ./broadcast_demo
#include <iostream>

#include "fault/fault_set.hpp"
#include "routing/collectives.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  const GaussianCube gc(10, 4);
  std::cout << "Broadcast from node 0 over " << gc.name() << " ("
            << gc.node_count() << " nodes)\n\n";

  const auto tree = build_bfs_spanning_tree(gc, 0);
  std::cout << "fault-free spanning tree: depth " << tree.max_depth
            << ", all-port broadcast " << all_port_broadcast_rounds(tree)
            << " rounds, single-port " << single_port_broadcast_rounds(tree)
            << " rounds (log2 N lower bound: 10)\n";

  FaultSet faults;
  faults.fail_node(0b0000000100);
  faults.fail_link(0b0000000000, 0);
  const auto ft_tree = build_bfs_spanning_tree(gc, 0, &faults);
  std::cout << "with one node + one link fault: reaches " << ft_tree.reached
            << "/" << gc.node_count() - 1 << " nonfaulty nodes, depth "
            << ft_tree.max_depth << ", single-port "
            << single_port_broadcast_rounds(ft_tree) << " rounds\n\n";

  // Multicast: one source, a scattered destination set.
  const FfgcrRouter router(gc);
  const std::vector<NodeId> dests{37, 512, 700, 1001, 255, 768};
  const auto mc = multicast_tree(router, 0, dests);
  std::cout << "multicast to " << dests.size() << " destinations: "
            << mc.links_used << " links used vs " << mc.total_route_length
            << " route hops in total ("
            << fmt_double(100.0 * (1.0 - static_cast<double>(mc.links_used) /
                                             static_cast<double>(
                                                 mc.total_route_length)),
                          1)
            << "% shared); farthest destination " << mc.max_route_length
            << " hops away\n";
  return 0;
}
