// Simulation campaign: run the cycle-driven network simulator over a small
// parameter sweep, in parallel, and print latency/throughput per cell —
// a miniature of the paper's §6 evaluation.
//
//   $ ./simulation_campaign
#include <iostream>
#include <vector>

#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  struct Cell {
    Dim n;
    std::uint64_t m;
    std::size_t faults;
    SimMetrics metrics;
  };
  std::vector<Cell> cells;
  for (const Dim n : {7u, 9u, 11u}) {
    for (const std::uint64_t m : {1u, 2u, 4u}) {
      cells.push_back({n, m, 0, {}});
    }
    cells.push_back({n, 2u, 1, {}});
  }

  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = cells[i].n;
    spec.modulus = cells[i].m;
    spec.faulty_nodes = cells[i].faults;
    spec.sim.injection_rate = 0.02;
    spec.sim.warmup_cycles = 200;
    spec.sim.measure_cycles = 800;
    spec.sim.seed = 10 + i;
    cells[i].metrics = run_gc_simulation(spec).metrics;
  });

  TextTable table({"topology", "faults", "generated", "delivered",
                   "avg hops", "avg latency", "log2 throughput"});
  for (const auto& cell : cells) {
    table.add_row({"GC(" + std::to_string(cell.n) + "," +
                       std::to_string(cell.m) + ")",
                   std::to_string(cell.faults),
                   std::to_string(cell.metrics.generated),
                   std::to_string(cell.metrics.delivered),
                   fmt_double(cell.metrics.avg_hops(), 2),
                   fmt_double(cell.metrics.avg_latency(), 2),
                   fmt_double(cell.metrics.log2_throughput(), 2)});
  }
  table.print(std::cout);
  std::cout << "(deterministic for fixed seeds; cells ran in parallel)\n";
  return 0;
}
