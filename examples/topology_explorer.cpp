// Topology explorer: a small CLI to inspect any GC(n, M), Gaussian Tree, or
// Exchanged Hypercube — properties, a node's neighborhood, and a route.
//
//   $ ./topology_explorer gc 8 4            # properties of GC(8, 4)
//   $ ./topology_explorer gc 8 4 node 22    # neighborhood of node 22
//   $ ./topology_explorer gc 8 4 route 3 200
//   $ ./topology_explorer gc 6 4 dot        # GraphViz DOT to stdout
//   $ ./topology_explorer tree 5            # Gaussian Tree T_5
//   $ ./topology_explorer eh 3 2            # Exchanged Hypercube EH(3, 2)
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/dot_export.hpp"
#include "graph/graph.hpp"
#include "routing/ffgcr.hpp"
#include "topology/exchanged_hypercube.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"

namespace {

using namespace gcube;

void print_properties(const Topology& topo) {
  std::cout << topo.name() << ": " << topo.node_count() << " nodes, "
            << topo.link_count() << " links\n";
  if (topo.node_count() <= (1u << 14)) {
    const Graph g(topo);
    std::cout << "  connected: " << (is_connected(g) ? "yes" : "no") << "\n";
    if (is_connected(g) && topo.node_count() <= (1u << 10)) {
      std::cout << "  diameter: " << diameter(g) << "\n";
    }
    const auto hist = degree_histogram(g);
    std::cout << "  degrees:";
    for (std::size_t deg = 0; deg < hist.size(); ++deg) {
      if (hist[deg] != 0) {
        std::cout << " " << deg << "x" << hist[deg];
      }
    }
    std::cout << "\n";
  }
}

void print_node(const Topology& topo, NodeId u) {
  std::cout << "node " << u << " (degree " << topo.degree(u) << "):\n";
  for (const Dim c : topo.link_dims(u)) {
    std::cout << "  dim " << c << " -> " << Topology::neighbor(u, c) << "\n";
  }
}

int usage() {
  std::cerr << "usage:\n"
            << "  topology_explorer gc <n> <M> [node <id> | route <s> <d>]\n"
            << "  topology_explorer tree <n> [node <id> | route <s> <d>]\n"
            << "  topology_explorer eh <s> <t> [node <id>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcube;
  if (argc < 3) {
    // With no arguments, show a default tour.
    if (argc == 1) {
      print_properties(GaussianCube(8, 4));
      print_properties(GaussianTree(4));
      print_properties(ExchangedHypercube(3, 2));
      return 0;
    }
    return usage();
  }
  const std::string kind = argv[1];
  try {
    if (kind == "gc" && argc >= 4) {
      const GaussianCube gc(static_cast<Dim>(std::stoul(argv[2])),
                            std::stoull(argv[3]));
      if (argc == 4) {
        print_properties(gc);
      } else if (std::string(argv[4]) == "dot" && argc == 5) {
        write_dot(std::cout, gc);
      } else if (std::string(argv[4]) == "node" && argc == 6) {
        print_node(gc, static_cast<NodeId>(std::stoul(argv[5])));
      } else if (std::string(argv[4]) == "route" && argc == 7) {
        const FfgcrRouter router(gc);
        const auto s = static_cast<NodeId>(std::stoul(argv[5]));
        const auto d = static_cast<NodeId>(std::stoul(argv[6]));
        const auto result = router.plan(s, d);
        std::cout << "route " << s << " -> " << d << " ("
                  << result.route->length() << " hops):";
        for (const NodeId u : result.route->nodes()) std::cout << " " << u;
        std::cout << "\n";
      } else {
        return usage();
      }
      return 0;
    }
    if (kind == "tree" && argc >= 3) {
      const GaussianTree tree(static_cast<Dim>(std::stoul(argv[2])));
      if (argc == 3) {
        print_properties(tree);
        std::cout << "  tree diameter: " << tree.diameter() << "\n";
      } else if (std::string(argv[3]) == "dot" && argc == 4) {
        write_dot(std::cout, tree);
      } else if (std::string(argv[3]) == "node" && argc == 5) {
        print_node(tree, static_cast<NodeId>(std::stoul(argv[4])));
      } else if (std::string(argv[3]) == "route" && argc == 6) {
        const auto s = static_cast<NodeId>(std::stoul(argv[4]));
        const auto d = static_cast<NodeId>(std::stoul(argv[5]));
        std::cout << "tree path:";
        for (const NodeId u : tree.path(s, d)) std::cout << " " << u;
        std::cout << "\n";
      } else {
        return usage();
      }
      return 0;
    }
    if (kind == "eh" && argc >= 4) {
      const ExchangedHypercube eh(static_cast<Dim>(std::stoul(argv[2])),
                                  static_cast<Dim>(std::stoul(argv[3])));
      if (argc == 4) {
        print_properties(eh);
      } else if (std::string(argv[4]) == "node" && argc == 6) {
        print_node(eh, static_cast<NodeId>(std::stoul(argv[5])));
      } else {
        return usage();
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
