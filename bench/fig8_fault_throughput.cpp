// Figure 8: A fault's influence on throughput — GC(n, 2) with n = 5..13,
// no faults versus one faulty node.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Figure 8",
                      "log2 throughput, GC(n,2): fault-free vs one faulty "
                      "node");
  const Dim n_lo = 5, n_hi = 13;
  struct Cell {
    Dim n;
    std::size_t faults;
    double log2_tp = 0.0;
  };
  std::vector<Cell> cells;
  for (Dim n = n_lo; n <= n_hi; ++n) {
    cells.push_back({n, 0, 0.0});
    cells.push_back({n, 1, 0.0});
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = cells[i].n;
    spec.modulus = 2;
    spec.faulty_nodes = cells[i].faults;
    spec.fault_seed = 80 + i;
    spec.sim.injection_rate = 0.01;
    spec.sim.warmup_cycles = 300;
    spec.sim.measure_cycles = 1500;
    spec.sim.seed = 4000 + i;
    cells[i].log2_tp = run_gc_simulation(spec).metrics.log2_throughput();
  });
  TextTable table({"n", "no fault", "one fault"});
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    table.add_row({std::to_string(cells[i].n),
                   fmt_double(cells[i].log2_tp, 2),
                   fmt_double(cells[i + 1].log2_tp, 2)});
  }
  table.print(std::cout);
  std::cout << "(log2 of delivered packets per cycle)\n";
  return 0;
}
