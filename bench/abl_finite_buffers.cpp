// Ablation: finite buffers and backpressure — when does store-and-forward
// deadlock, and what does that say about the paper's model assumptions?
//
// GC(8, 2) + FFGCR versus e-cube on H_8 (acyclic channel-dependency graph)
// across buffer capacities and loads. Finding: with undifferentiated
// per-node FIFOs, BOTH deadlock once buffers are tiny and load is high —
// buffer-cycle deadlock is a flow-control property, and CDG acyclicity
// (a wormhole/virtual-channel criterion) does not confer immunity. This is
// exactly why the paper's simulation assumes eager readership (service
// outpaces arrival, i.e., effectively unbounded drain): under that
// assumption its cycle-free routes are deadlock-free, as our unbounded-
// buffer runs confirm.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "sim/network.hpp"
#include "sim/sweep.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation",
                      "finite buffers: backpressure, stalls, deadlock");
  struct Cell {
    bool gc;  // GC(8,2)+FFGCR vs H_8+e-cube
    std::uint32_t buffers;
    double rate;
    SimMetrics metrics;
  };
  std::vector<Cell> cells;
  for (const bool gc : {true, false}) {
    for (const std::uint32_t buffers : {16u, 4u, 2u, 1u}) {
      for (const double rate : {0.05, 0.25}) {
        cells.push_back({gc, buffers, rate, {}});
      }
    }
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    SimConfig cfg;
    cfg.injection_rate = cells[i].rate;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 1200;
    cfg.buffer_limit = cells[i].buffers;
    cfg.seed = 9000 + i;
    const FaultSet none;
    if (cells[i].gc) {
      const GaussianCube topo(8, 2);
      const FfgcrRouter router(topo);
      cells[i].metrics = NetworkSim(topo, router, none, cfg).run();
    } else {
      const Hypercube topo(8);
      const EcubeRouter router(topo);
      cells[i].metrics = NetworkSim(topo, router, none, cfg).run();
    }
  });
  TextTable table({"network/router", "buffers", "rate", "latency",
                   "blocked inj %", "stalled cycles", "deadlock"});
  for (const auto& cell : cells) {
    const auto& m = cell.metrics;
    const double blocked =
        m.generated + m.injections_blocked == 0
            ? 0.0
            : 100.0 * static_cast<double>(m.injections_blocked) /
                  static_cast<double>(m.generated + m.injections_blocked);
    table.add_row({cell.gc ? "GC(8,2) + FFGCR" : "H_8 + e-cube",
                   std::to_string(cell.buffers), fmt_double(cell.rate, 2),
                   fmt_double(m.avg_latency(), 2), fmt_double(blocked, 2),
                   std::to_string(m.stalled_cycles),
                   m.deadlocked ? "YES" : "no"});
  }
  table.print(std::cout);
  std::cout << "(both routers deadlock at tiny buffers: buffer-cycle "
               "deadlock is a flow-control property — CDG acyclicity is a "
               "wormhole criterion and does not protect per-node FIFOs; "
               "eager readership, the paper's assumption, does)\n";
  return 0;
}
