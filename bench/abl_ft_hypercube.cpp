// Ablation: fault-tolerant hypercube/EH routing strategies compared.
//
// (a) In the hypercube: the paper's local adaptive mechanism (preferred /
//     masked spare, as in FREH) vs Wu's safety levels vs the informed
//     router modeling full fault-status exchange. Metrics: delivery rate,
//     average overhead over fault-aware optimum, max overhead.
// (b) In the Exchanged Hypercube: the step-by-step FREH dance vs the
//     informed (post-initialization) crossing router.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_set.hpp"
#include "graph/algorithms.hpp"
#include "routing/freh.hpp"
#include "routing/hypercube_ft.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gcube;

struct Tally {
  std::size_t attempts = 0;
  std::size_t delivered = 0;
  std::size_t total_excess = 0;
  std::size_t max_excess = 0;

  void note(bool ok, std::size_t length, std::uint32_t optimal) {
    ++attempts;
    if (!ok) return;
    ++delivered;
    const std::size_t excess = length - optimal;
    total_excess += excess;
    max_excess = std::max(max_excess, excess);
  }
  [[nodiscard]] std::vector<std::string> row(std::string name) const {
    return {std::move(name), std::to_string(attempts),
            fmt_double(100.0 * static_cast<double>(delivered) /
                           static_cast<double>(attempts), 2),
            fmt_double(static_cast<double>(total_excess) /
                           static_cast<double>(delivered), 3),
            std::to_string(max_excess)};
  }
};

void hypercube_comparison() {
  const Dim n = 6;
  const Hypercube h(n);
  Xoshiro256 rng(99);
  Tally adaptive, informed, safety;
  for (int trial = 0; trial < 50; ++trial) {
    FaultSet faults;
    const std::uint64_t count = 1 + rng.below(n - 1);
    while (faults.node_fault_count() < count) {
      faults.fail_node(static_cast<NodeId>(rng.below(pow2(n))));
    }
    const auto usable = [&faults](NodeId u, Dim c) {
      return faults.link_usable(u, c);
    };
    const SafetyLevelRouter wu(n, faults);
    for (int i = 0; i < 400; ++i) {
      NodeId s, d;
      do {
        s = static_cast<NodeId>(rng.below(pow2(n)));
      } while (faults.node_faulty(s));
      do {
        d = static_cast<NodeId>(rng.below(pow2(n)));
      } while (faults.node_faulty(d));
      const auto dist = bfs_distances(h, s, usable);
      if (dist[d] == kUnreachable) continue;
      const auto a = adaptive_subcube_route(s, d, low_mask(n), usable);
      adaptive.note(a.delivered(), a.delivered() ? a.route->length() : 0,
                    dist[d]);
      const auto inf = informed_subcube_route(s, d, low_mask(n), usable);
      informed.note(inf.delivered(),
                    inf.delivered() ? inf.route->length() : 0, dist[d]);
      const auto w = wu.plan(s, d);
      safety.note(w.delivered(), w.delivered() ? w.route->length() : 0,
                  dist[d]);
    }
  }
  TextTable table({"router (H_6, node faults < n)", "pairs", "delivered %",
                   "avg excess", "max excess"});
  table.add_row(adaptive.row("adaptive (paper mechanism)"));
  table.add_row(informed.row("informed (status exchange)"));
  table.add_row(safety.row("Wu safety levels"));
  table.print(std::cout);
  std::cout << "(excess = hops above the fault-aware optimum; Wu's router "
               "only guarantees delivery from sufficiently safe sources)\n\n";
}

void eh_comparison() {
  const ExchangedHypercube eh(3, 3);
  const Graph g(eh);
  Xoshiro256 rng(123);
  Tally dance, informed;
  for (int trial = 0; trial < 200; ++trial) {
    FaultSet faults;
    const std::uint64_t count = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < count; ++i) {
      faults.fail_node(static_cast<NodeId>(rng.below(eh.node_count())));
    }
    if (!theorem4_holds(eh, faults)) continue;
    const EhFaultOracle oracle = make_eh_oracle(faults);
    for (int i = 0; i < 200; ++i) {
      NodeId r, d;
      do {
        r = static_cast<NodeId>(rng.below(eh.node_count()));
      } while (faults.node_faulty(r));
      do {
        d = static_cast<NodeId>(rng.below(eh.node_count()));
      } while (faults.node_faulty(d));
      const auto dist = bfs_distances(
          eh, r,
          [&faults](NodeId u, Dim c) { return faults.link_usable(u, c); });
      if (dist[d] == kUnreachable) continue;
      const auto a = freh_route(eh, oracle, r, d);
      dance.note(a.delivered(), a.delivered() ? a.route->length() : 0,
                 dist[d]);
      const auto b = informed_eh_route(eh, oracle, r, d);
      informed.note(b.delivered(), b.delivered() ? b.route->length() : 0,
                    dist[d]);
    }
  }
  TextTable table({"router (EH(3,3), Thm-4 faults)", "pairs", "delivered %",
                   "avg excess", "max excess"});
  table.add_row(dance.row("FREH step-by-step dance"));
  table.add_row(informed.row("informed crossing router"));
  table.print(std::cout);
}

}  // namespace

int main() {
  gcube::bench::print_banner(
      "Ablation", "fault-tolerant routing mechanisms: hypercube and EH");
  hypercube_comparison();
  eh_comparison();
  return 0;
}
