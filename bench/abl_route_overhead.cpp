// Ablation: route-length overhead under faults (paper §1 claim 3).
//
// For GC(9, 2) and GC(9, 4) with F = 1..4 precondition-satisfying random
// node faults, measures the distribution of (FTGCR length − fault-free
// optimum) over random nonfaulty pairs, confirming it stays within 2F and
// reporting how rarely the detour machinery even engages.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fault/preconditions.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation", "FTGCR route overhead vs fault count");
  TextTable table({"topology", "faults F", "pairs", "avg overhead",
                   "max overhead", "bound 2F", "detoured %", "replans"});
  Xoshiro256 rng(5150);
  for (const std::uint64_t m : {2u, 4u}) {
    const GaussianCube gc(9, m);
    const FfgcrRouter baseline(gc);
    for (std::size_t num_faults = 1; num_faults <= 4; ++num_faults) {
      FaultSet faults;
      int guard = 0;
      do {
        faults.clear();
        while (faults.node_fault_count() < num_faults) {
          faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
        }
      } while (!check_ftgcr_precondition(gc, faults) && ++guard < 500);
      if (!check_ftgcr_precondition(gc, faults)) continue;
      const FtgcrRouter router(gc, faults);
      const int pairs = 4000;
      std::size_t total_overhead = 0, max_overhead = 0, detoured = 0,
                  replans = 0;
      for (int i = 0; i < pairs; ++i) {
        NodeId s, d;
        do {
          s = static_cast<NodeId>(rng.below(gc.node_count()));
        } while (faults.node_faulty(s));
        do {
          d = static_cast<NodeId>(rng.below(gc.node_count()));
        } while (faults.node_faulty(d));
        FtgcrStats stats;
        const auto result = router.plan_with_stats(s, d, stats);
        if (!result.delivered()) continue;
        const std::size_t overhead =
            result.route->length() - baseline.optimal_length(s, d);
        total_overhead += overhead;
        max_overhead = std::max(max_overhead, overhead);
        detoured += overhead > 0;
        replans += stats.global_replans;
      }
      table.add_row({gc.name(), std::to_string(num_faults),
                     std::to_string(pairs),
                     fmt_double(static_cast<double>(total_overhead) / pairs, 3),
                     std::to_string(max_overhead),
                     std::to_string(2 * num_faults),
                     fmt_double(100.0 * static_cast<double>(detoured) / pairs, 2),
                     std::to_string(replans)});
    }
  }
  table.print(std::cout);
  return 0;
}
