// Shared helpers for the figure-reproduction benches.
#pragma once

#include <iostream>
#include <string>

namespace gcube::bench {

/// Every figure bench prints a header naming the paper artifact it
/// regenerates, so bench_output.txt is self-describing.
inline void print_banner(const std::string& figure, const std::string& what) {
  std::cout << "==============================================================\n"
            << figure << " — " << what << "\n"
            << "==============================================================\n";
}

}  // namespace gcube::bench
