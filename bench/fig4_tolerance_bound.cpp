// Figure 4: log2 of the maximum number of tolerable A-category faults,
// T(GC(n, 2^alpha)), versus dimension n for alpha = 1..4.
//
// T = sum over classes k of max(t_k - 1, 0) * 2^(n - alpha - t_k), each
// GEEC hypercube tolerating one fault less than its dimension t_k
// (reconstruction of the paper's OCR-damaged formula; see DESIGN.md §3).
#include <iostream>

#include "bench_common.hpp"
#include "fault/tolerance_bound.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Figure 4",
                      "log2 T(GC(n, 2^alpha)) vs n, alpha = 1..4");
  TextTable table({"n", "alpha=1", "alpha=2", "alpha=3", "alpha=4"});
  for (Dim n = 6; n <= 24; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (Dim alpha = 1; alpha <= 4; ++alpha) {
      row.push_back(fmt_double(log2_max_tolerable_faults(n, alpha), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(-1.00 marks T = 0: no A-category fault is tolerable.)\n";
  return 0;
}
