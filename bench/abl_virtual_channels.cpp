// Ablation: virtual-channel budget for wormhole-safe FFGCR.
//
// FFGCR's plain channel dependency graph is cyclic (tests/deadlock_test),
// so a wormhole deployment needs virtual channels. The ascending-vc
// annotation (routing/deadlock.hpp) restores acyclicity for any route set;
// this bench measures its cost: the distribution of VCs required per route
// across all pairs, by dimension and modulus — the concrete hardware price
// of the tree-walk routing discipline.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "routing/deadlock.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation",
                      "virtual channels needed for wormhole-safe FFGCR");
  TextTable table({"topology", "max VCs", "avg VCs", "% pairs needing <= 2",
                   "vc-CDG acyclic"});
  for (const Dim n : {6u, 7u, 8u}) {
    for (const std::uint64_t m : {1u, 2u, 4u}) {
      const GaussianCube gc(n, m);
      const FfgcrRouter router(gc);
      ChannelDependencyGraph with_vcs;
      std::uint32_t max_vcs = 0;
      std::uint64_t total_vcs = 0, pairs = 0, small = 0;
      for (NodeId s = 0; s < gc.node_count(); ++s) {
        for (NodeId d = 0; d < gc.node_count(); ++d) {
          if (s == d) continue;
          const RoutingResult planned = router.plan(s, d);
          const Route& route = *planned.route;
          const auto vcs = virtual_channels_required(route);
          with_vcs.add_route(route, annotate_virtual_channels(route));
          max_vcs = std::max(max_vcs, vcs);
          total_vcs += vcs;
          small += vcs <= 2;
          ++pairs;
        }
      }
      table.add_row({gc.name(), std::to_string(max_vcs),
                     fmt_double(static_cast<double>(total_vcs) /
                                    static_cast<double>(pairs), 2),
                     fmt_double(100.0 * static_cast<double>(small) /
                                    static_cast<double>(pairs), 1),
                     with_vcs.has_cycle() ? "NO (bug!)" : "yes"});
    }
  }
  table.print(std::cout);
  return 0;
}
