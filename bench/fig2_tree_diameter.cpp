// Figure 2: Diameter of the Gaussian Tree T_n versus dimension n.
//
// The paper plots D(T_n) against n and reads it as O(n); our exact
// computation (double BFS on the full tree) regenerates the series. We also
// print D(T_n)/n to expose the measured growth rate — see EXPERIMENTS.md
// for the comparison discussion.
#include <iostream>

#include "bench_common.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Figure 2", "Diameter of Gaussian Tree T_n vs n");
  TextTable table({"n", "nodes", "diameter", "diameter/n"});
  for (Dim n = 2; n <= 20; ++n) {
    const GaussianTree tree(n);
    const Dim d = tree.diameter();
    table.add_row({std::to_string(n), std::to_string(tree.node_count()),
                   std::to_string(d),
                   fmt_double(static_cast<double>(d) / n, 2)});
  }
  table.print(std::cout);
  return 0;
}
