// Figure 5: Average latency versus dimension for fault-free GC(n, M),
// n = 6..14, M in {1, 2, 4}, uniform random traffic.
//
// Latency is in cycles (the paper's µs scale was hardware-specific); the
// shape to compare: latency grows with n, and grows with M at fixed n,
// with M's influence the stronger of the two (paper §6).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Figure 5",
                      "Average latency vs dimension, fault-free GC(n, M)");
  const std::vector<std::uint64_t> moduli{1, 2, 4};
  const Dim n_lo = 6, n_hi = 14;
  struct Cell {
    Dim n;
    std::uint64_t m;
    double latency = 0.0;
  };
  std::vector<Cell> cells;
  for (Dim n = n_lo; n <= n_hi; ++n) {
    for (const std::uint64_t m : moduli) cells.push_back({n, m, 0.0});
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = cells[i].n;
    spec.modulus = cells[i].m;
    spec.sim.injection_rate = 0.01;
    spec.sim.warmup_cycles = 300;
    spec.sim.measure_cycles = 1500;
    spec.sim.seed = 1000 + i;
    cells[i].latency = run_gc_simulation(spec).metrics.avg_latency();
  });
  TextTable table({"n", "M=1", "M=2", "M=4"});
  std::size_t i = 0;
  for (Dim n = n_lo; n <= n_hi; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t j = 0; j < moduli.size(); ++j, ++i) {
      row.push_back(fmt_double(cells[i].latency, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(average latency, cycles/packet)\n";
  return 0;
}
