// Ablation: transient-fault recovery — the value of repair events plus
// deterministic retry/backoff delivery. Four cells on GC(9, 2) share one
// traffic workload (warmup 0, so packet accounting closes exactly):
//
//   fault_free        no faults — the ceiling;
//   transient_retry   staggered isolation flaps (every incident link of a
//                     victim dies, heals `dwell` cycles later) with the
//                     retry/backoff + source-retransmit machinery on;
//   transient_no_retry the same flap schedule with recovery knobs at 0 —
//                     stranded packets hard-drop as dropped_no_route;
//   permanent         the same schedule stripped of its repair events
//                     (FaultSchedule::without_repairs), retries ON — shows
//                     retries cannot save packets whose faults never heal.
//
// The claim this ablation documents: with repairs and retries the delivery
// ratio recovers to >= 0.99 while the identical churn made permanent stays
// degraded. Emits BENCH_recovery.json (--out=<path>; --quick shrinks the
// run for CI) checked by scripts/check_bench_json.py.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_set.hpp"
#include "routing/ftgcr.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace gcube;

struct Cell {
  std::string name;
  SimMetrics metrics;
};

/// Offered load fully accounted for (exact because warmup is 0).
bool accounting_closed(const SimMetrics& m) {
  return m.carryover_delivered == 0 &&
         m.generated == m.delivered + m.dropped + m.injections_blocked +
                            m.dropped_no_route + m.dropped_hop_limit +
                            m.orphaned_by_node_fault + m.gave_up +
                            m.in_flight_at_end;
}

/// All incident links of each victim fail at once and heal `dwell` cycles
/// later; victims staggered `stagger` apart. The victim stays alive and
/// addressed by traffic, so packets headed for it genuinely strand — the
/// regime the retry queue exists for.
FaultSchedule isolation_flaps(const GaussianCube& gc,
                              const std::vector<NodeId>& victims, Cycle start,
                              Cycle dwell, Cycle stagger) {
  FaultSchedule s;
  Cycle t = start;
  for (const NodeId v : victims) {
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.fail_link_at(t, v, c);
    }
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.repair_link_at(t + dwell, v, c);
    }
    t += stagger;
  }
  return s;
}

SimMetrics run_cell(const GaussianCube& gc, const FaultSchedule& schedule,
                    const SimConfig& cfg) {
  // The schedule mutates the fault set, so each cell gets a fresh one.
  FaultSet live;
  const FtgcrRouter router(gc, live);
  NetworkSim sim(gc, router, live, cfg, schedule);
  return sim.run();
}

void write_json(const std::string& path, const std::vector<Cell>& cells,
                bool quick) {
  std::ofstream out(path);
  GCUBE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"abl_recovery\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SimMetrics& m = cells[i].metrics;
    out << "    {\n"
        << "      \"name\": \"" << cells[i].name << "\",\n"
        << "      \"delivery_ratio\": " << m.delivery_ratio() << ",\n"
        << "      \"generated\": " << m.generated << ",\n"
        << "      \"delivered\": " << m.delivered << ",\n"
        << "      \"repairs_applied\": " << m.repairs_applied << ",\n"
        << "      \"fault_events\": " << m.fault_events << ",\n"
        << "      \"parked_retries\": " << m.parked_retries << ",\n"
        << "      \"retransmits\": " << m.retransmits << ",\n"
        << "      \"gave_up\": " << m.gave_up << ",\n"
        << "      \"dropped_no_route\": " << m.dropped_no_route << ",\n"
        << "      \"dropped_hop_limit\": " << m.dropped_hop_limit << ",\n"
        << "      \"orphaned\": " << m.orphaned_by_node_fault << ",\n"
        << "      \"in_flight_at_end\": " << m.in_flight_at_end << ",\n"
        << "      \"accounting_closed\": "
        << (accounting_closed(m) ? "true" : "false") << "\n"
        << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcube;
  CliArgs args(argc, argv);
  args.allow({"quick", "out"});
  const bool quick = args.get_bool("quick");
  const std::string out_path = args.get_string("out", "BENCH_recovery.json");

  bench::print_banner(
      "Ablation", "transient-fault recovery: repairs + retry/backoff "
                  "vs hard drops and permanent churn, GC(9, 2)");

  const GaussianCube gc(9, 2);
  SimConfig cfg;
  cfg.injection_rate = 0.015;
  cfg.warmup_cycles = 0;  // exact accounting over the whole run
  cfg.measure_cycles = quick ? 1500 : 4000;
  cfg.seed = 20260805;
  cfg.retry_limit = 10;
  cfg.retry_backoff_base = 2;
  cfg.park_capacity = 32;
  cfg.retry_budget = 4;
  cfg.retransmit_timeout = 64;

  // Churn ends well before the run does (last repair + drain window), so
  // the transient cells measure recovery, not mid-flap steady state.
  const std::vector<NodeId> victims =
      quick ? std::vector<NodeId>{9, 70, 141, 260, 333, 410}
            : std::vector<NodeId>{9, 70, 141, 202, 260, 333, 410, 444, 489};
  const Cycle start = quick ? 60 : 100;
  const Cycle dwell = quick ? 120 : 250;
  const Cycle stagger = quick ? 100 : 220;
  const FaultSchedule transient =
      isolation_flaps(gc, victims, start, dwell, stagger);
  const FaultSchedule permanent = transient.without_repairs();

  SimConfig no_retry_cfg = cfg;
  no_retry_cfg.retry_limit = 0;
  no_retry_cfg.retry_budget = 0;

  std::vector<Cell> cells;
  cells.push_back({"fault_free", run_cell(gc, FaultSchedule{}, cfg)});
  cells.push_back({"transient_retry", run_cell(gc, transient, cfg)});
  cells.push_back(
      {"transient_no_retry", run_cell(gc, transient, no_retry_cfg)});
  cells.push_back({"permanent", run_cell(gc, permanent, cfg)});

  TextTable table({"cell", "delivery", "generated", "delivered", "parked",
                   "retransmits", "gave up", "no route", "in flight",
                   "repairs"});
  for (const Cell& c : cells) {
    const SimMetrics& m = c.metrics;
    table.add_row({c.name, fmt_double(m.delivery_ratio(), 4),
                   std::to_string(m.generated), std::to_string(m.delivered),
                   std::to_string(m.parked_retries),
                   std::to_string(m.retransmits), std::to_string(m.gave_up),
                   std::to_string(m.dropped_no_route),
                   std::to_string(m.in_flight_at_end),
                   std::to_string(m.repairs_applied)});
  }
  table.print(std::cout);

  // The headline claims, enforced so a regression fails loudly: accounting
  // closes in every cell, retries over healing faults recover delivery to
  // >= 0.99, and the identical churn made permanent stays strictly worse.
  bool ok = true;
  for (const Cell& c : cells) {
    if (!accounting_closed(c.metrics)) {
      std::cout << "WARNING: accounting identity open in " << c.name << "\n";
      ok = false;
    }
  }
  const double healed = cells[1].metrics.delivery_ratio();
  const double broken = cells[3].metrics.delivery_ratio();
  if (healed < 0.99) {
    std::cout << "WARNING: transient_retry delivery " << healed
              << " fell below 0.99\n";
    ok = false;
  }
  if (healed <= broken) {
    std::cout << "WARNING: permanent churn should stay degraded ("
              << broken << " vs " << healed << ")\n";
    ok = false;
  }
  if (ok) {
    std::cout << "transient+retries recovered to "
              << fmt_double(healed, 4) << "; permanent churn held at "
              << fmt_double(broken, 4) << "\n";
  }
  write_json(out_path, cells, quick);
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
