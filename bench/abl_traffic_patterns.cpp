// Ablation: traffic patterns — average latency and throughput of GC(9, 2)
// under uniform, bit-complement, bit-reversal, transpose, and hotspot
// traffic. Adversarial patterns concentrate load on the diluted links and
// separate the Gaussian Cube from a full hypercube much more sharply than
// uniform traffic does.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation", "traffic patterns on GC(9, M)");
  const std::vector<TrafficPattern> patterns{
      TrafficPattern::kUniform, TrafficPattern::kBitComplement,
      TrafficPattern::kBitReversal, TrafficPattern::kTranspose,
      TrafficPattern::kHotspot};
  const std::vector<std::uint64_t> moduli{1, 4};
  struct Cell {
    TrafficPattern pattern;
    std::uint64_t m;
    double latency = 0.0;
    double log2_tp = 0.0;
  };
  std::vector<Cell> cells;
  for (const TrafficPattern p : patterns) {
    for (const std::uint64_t m : moduli) cells.push_back({p, m, 0.0, 0.0});
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = 9;
    spec.modulus = cells[i].m;
    spec.pattern = cells[i].pattern;
    spec.sim.injection_rate = 0.03;
    spec.sim.warmup_cycles = 300;
    spec.sim.measure_cycles = 1200;
    spec.sim.seed = 7000 + i;
    const auto metrics = run_gc_simulation(spec).metrics;
    cells[i].latency = metrics.avg_latency();
    cells[i].log2_tp = metrics.log2_throughput();
  });
  TextTable table({"pattern", "M=1 latency", "M=4 latency", "M=1 log2 tp",
                   "M=4 log2 tp"});
  std::size_t i = 0;
  for (const TrafficPattern p : patterns) {
    std::vector<std::string> lat, tp;
    for (std::size_t j = 0; j < moduli.size(); ++j, ++i) {
      lat.push_back(fmt_double(cells[i].latency, 2));
      tp.push_back(fmt_double(cells[i].log2_tp, 2));
    }
    table.add_row({to_string(p), lat[0], lat[1], tp[0], tp[1]});
  }
  table.print(std::cout);
  return 0;
}
