// Ablation: graceful degradation under *online* fault arrivals — the
// paper's actual operating regime (§5: each node picks the next hop from
// local fault knowledge). Node faults arrive mid-run at a per-cycle rate;
// packets whose precomputed next link died re-plan per hop from their
// current node. We sweep the arrival rate on GC(9, 1) — the full 512-node
// hypercube, where the dimension-ordered e-cube baseline is also defined —
// and compare FTGCR's offered-load delivery ratio against e-cube's. The
// fault-blind baseline loses every packet whose path dies; FTGCR keeps
// delivering until the network itself disconnects.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner(
      "Ablation", "delivery ratio vs fault-arrival rate, GC(9, 1), "
                  "FTGCR vs e-cube");
  // Expected total arrivals = rate * (warmup + measure) cycles; the upper
  // rates land near the paper's tolerated densities for a 9-cube
  // (T(GC) ~ n - 1 faults) and beyond.
  const std::vector<double> rates{0.0, 0.0005, 0.001, 0.002, 0.004, 0.008};

  struct Cell {
    double rate = 0.0;
    GcSimOutcome ftgcr;
    GcSimOutcome ecube;
  };
  const std::vector<Cell> cells =
      parallel_map(rates.size(), [&](std::size_t i) {
        Cell cell;
        cell.rate = rates[i];
        GcSimSpec spec;
        spec.n = 9;
        spec.modulus = 1;
        spec.fault_rate = rates[i];
        spec.fault_seed = 1234;  // same seed => same schedule per rate
        spec.sim.injection_rate = 0.02;
        spec.sim.warmup_cycles = 300;
        spec.sim.measure_cycles = 1500;
        spec.sim.seed = 9000;
        spec.router = SimRouterKind::kFtgcr;
        cell.ftgcr = run_gc_simulation(spec);
        spec.router = SimRouterKind::kEcube;
        cell.ecube = run_gc_simulation(spec);
        return cell;
      });

  TextTable table({"fault rate", "arrivals", "FTGCR delivery", "reroutes",
                   "dropped en route", "orphaned", "e-cube delivery",
                   "e-cube dropped"});
  for (const Cell& cell : cells) {
    const SimMetrics& ft = cell.ftgcr.metrics;
    const SimMetrics& ec = cell.ecube.metrics;
    table.add_row({fmt_double(cell.rate, 4),
                   std::to_string(cell.ftgcr.fault_events_scheduled),
                   fmt_double(ft.delivery_ratio(), 4),
                   std::to_string(ft.reroutes),
                   std::to_string(ft.dropped_en_route()),
                   std::to_string(ft.orphaned_by_node_fault),
                   fmt_double(ec.delivery_ratio(), 4),
                   std::to_string(ec.dropped_en_route())});
  }
  table.print(std::cout);

  // The claim the ablation exists to document: under mid-run faults the
  // fault-tolerant strategy degrades strictly more gracefully than the
  // fault-blind baseline.
  bool ok = true;
  for (const Cell& cell : cells) {
    if (cell.rate == 0.0) continue;
    if (cell.ftgcr.metrics.delivery_ratio() <
        cell.ecube.metrics.delivery_ratio()) {
      ok = false;
    }
  }
  std::cout << (ok ? "FTGCR >= e-cube delivery at every fault rate\n"
                   : "WARNING: FTGCR fell below the e-cube baseline\n");
  return ok ? 0 : 1;
}
