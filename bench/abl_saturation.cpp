// Ablation: saturation behavior — average latency versus offered load for
// GC(10, M), M in {1, 2, 4}.
//
// The paper varies dimension at a fixed load; this sweep varies load at a
// fixed dimension, exposing where each dilution level saturates: sparser
// networks (larger M) hit head-of-line congestion at lower injection rates,
// quantifying the cost side of the density/performance tradeoff.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation",
                      "latency vs offered load, GC(10, M) — saturation");
  const std::vector<double> rates{0.005, 0.02, 0.08, 0.15, 0.25, 0.40};
  const std::vector<std::uint64_t> moduli{1, 2, 4};
  struct Cell {
    double rate;
    std::uint64_t m;
    double latency = 0.0;
    double delivered_frac = 0.0;
  };
  std::vector<Cell> cells;
  for (const double rate : rates) {
    for (const std::uint64_t m : moduli) cells.push_back({rate, m, 0.0, 0.0});
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = 10;
    spec.modulus = cells[i].m;
    spec.sim.injection_rate = cells[i].rate;
    spec.sim.warmup_cycles = 300;
    spec.sim.measure_cycles = 1200;
    spec.sim.seed = 6000 + i;
    const auto metrics = run_gc_simulation(spec).metrics;
    cells[i].latency = metrics.avg_latency();
    cells[i].delivered_frac =
        metrics.generated == 0
            ? 0.0
            : static_cast<double>(metrics.delivered) /
                  static_cast<double>(metrics.generated);
  });
  TextTable table({"rate", "M=1 lat", "M=2 lat", "M=4 lat", "M=1 dlv",
                   "M=2 dlv", "M=4 dlv"});
  std::size_t i = 0;
  for (const double rate : rates) {
    std::vector<std::string> row{fmt_double(rate, 3)};
    std::vector<std::string> dlv;
    for (std::size_t j = 0; j < moduli.size(); ++j, ++i) {
      row.push_back(fmt_double(cells[i].latency, 2));
      dlv.push_back(fmt_double(cells[i].delivered_frac, 3));
    }
    row.insert(row.end(), dlv.begin(), dlv.end());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(lat = avg latency in cycles; dlv = delivered/generated in "
               "the window — below 1.0 means queues are growing)\n";
  return 0;
}
