// Micro-benchmarks (google-benchmark): planning costs of the core
// algorithms — PC path construction, FFGCR planning, FTGCR planning under
// faults, and the per-packet cost model the simulator pays. Paper §1
// claim 2: computation is O((n - alpha) log(n - alpha))-ish per route.
#include <benchmark/benchmark.h>

#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "routing/collectives.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "routing/tree_routing.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace gcube;

void BM_TreePathConstruction(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianTree tree(n);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(tree.node_count()));
    const auto d = static_cast<NodeId>(rng.below(tree.node_count()));
    benchmark::DoNotOptimize(tree.path(s, d));
  }
}
BENCHMARK(BM_TreePathConstruction)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_TreeWalkPlanning(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianTree tree(n);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(tree.node_count()));
    const auto d = static_cast<NodeId>(rng.below(tree.node_count()));
    std::vector<NodeId> targets;
    for (int i = 0; i < 4; ++i) {
      targets.push_back(static_cast<NodeId>(rng.below(tree.node_count())));
    }
    benchmark::DoNotOptimize(plan_tree_walk(tree, s, d, targets));
  }
}
BENCHMARK(BM_TreeWalkPlanning)->Arg(4)->Arg(8)->Arg(12);

void BM_FfgcrPlan(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const auto m = static_cast<std::uint64_t>(state.range(1));
  const GaussianCube gc(n, m);
  const FfgcrRouter router(gc);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
    benchmark::DoNotOptimize(router.plan(s, d));
  }
}
BENCHMARK(BM_FfgcrPlan)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({12, 2})
    ->Args({16, 2})
    ->Args({16, 4});

void BM_FtgcrPlanOneFault(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianCube gc(n, 2);
  Xoshiro256 rng(4);
  FaultSet faults;
  do {
    faults.clear();
    faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
  } while (!check_ftgcr_precondition(gc, faults));
  const FtgcrRouter router(gc, faults);
  for (auto _ : state) {
    NodeId s, d;
    do {
      s = static_cast<NodeId>(rng.below(gc.node_count()));
    } while (faults.node_faulty(s));
    do {
      d = static_cast<NodeId>(rng.below(gc.node_count()));
    } while (faults.node_faulty(d));
    benchmark::DoNotOptimize(router.plan(s, d));
  }
}
BENCHMARK(BM_FtgcrPlanOneFault)->Arg(8)->Arg(12)->Arg(14);

void BM_BroadcastTreeBuild(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianCube gc(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_bfs_spanning_tree(gc, 0));
  }
}
BENCHMARK(BM_BroadcastTreeBuild)->Arg(8)->Arg(10)->Arg(12);

void BM_PreconditionCheck(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianCube gc(n, 2);
  Xoshiro256 rng(5);
  FaultSet faults;
  while (faults.node_fault_count() < 3) {
    faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_ftgcr_precondition(gc, faults));
  }
}
BENCHMARK(BM_PreconditionCheck)->Arg(8)->Arg(10)->Arg(12);

void BM_RouteValidation(benchmark::State& state) {
  const auto n = static_cast<Dim>(state.range(0));
  const GaussianCube gc(n, 2);
  const FfgcrRouter router(gc);
  Xoshiro256 rng(6);
  const FaultSet none;
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto planned = router.plan(s, d);
    benchmark::DoNotOptimize(validate_route(gc, none, *planned.route));
  }
}
BENCHMARK(BM_RouteValidation)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
