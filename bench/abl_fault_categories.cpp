// Ablation: which fault category hurts most? Average latency of GC(9, 4)
// under one injected fault of each category (paper Definitions 3-5):
//   A — a high-dimension link fault (handled inside one GEEC, Theorem 3);
//   B — a tree-dimension link fault (handled by EH crossings, Theorem 5);
//   C — a node fault (both levels at once).
// All patterns are precondition-checked so FTGCR is guaranteed to deliver.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "fault/categorize.hpp"
#include "fault/preconditions.hpp"
#include "routing/ftgcr.hpp"
#include "sim/network.hpp"
#include "sim/sweep.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gcube;

/// Draws one fault of the requested category that passes the FTGCR
/// precondition.
FaultSet draw_category_fault(const GaussianCube& gc, FaultCategory category,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 2000; ++attempt) {
    FaultSet f;
    switch (category) {
      case FaultCategory::A: {
        const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
        const auto dims = gc.high_dims(gc.ending_class(u));
        if (dims.empty()) continue;
        f.fail_link(u, dims[rng.below(dims.size())]);
        break;
      }
      case FaultCategory::B: {
        const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
        const auto c = static_cast<Dim>(rng.below(gc.alpha()));
        if (!gc.has_link(u, c)) continue;
        f.fail_link(u, c);
        break;
      }
      case FaultCategory::C: {
        const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
        if (categorize_node_fault(gc, u) != FaultCategory::C) continue;
        f.fail_node(u);
        break;
      }
    }
    if (check_ftgcr_precondition(gc, f)) return f;
  }
  throw std::runtime_error("no tolerable fault of that category found");
}

}  // namespace

int main() {
  using namespace gcube;
  bench::print_banner("Ablation",
                      "fault categories A/B/C vs latency, GC(9, 4)");
  const GaussianCube gc(9, 4);
  struct Cell {
    std::optional<FaultCategory> category;  // nullopt = fault-free baseline
    double latency = 0.0;
    double log2_tp = 0.0;
  };
  std::vector<Cell> cells{{std::nullopt, 0.0, 0.0},
                          {FaultCategory::A, 0.0, 0.0},
                          {FaultCategory::B, 0.0, 0.0},
                          {FaultCategory::C, 0.0, 0.0}};
  parallel_for_index(cells.size(), [&](std::size_t i) {
    FaultSet faults;
    if (cells[i].category) {
      faults = draw_category_fault(gc, *cells[i].category, 40 + i);
    }
    const FtgcrRouter router(gc, faults);
    SimConfig cfg;
    cfg.injection_rate = 0.02;
    cfg.warmup_cycles = 300;
    cfg.measure_cycles = 1200;
    cfg.seed = 8000 + i;
    NetworkSim sim(gc, router, faults, cfg);
    const SimMetrics metrics = sim.run();
    cells[i].latency = metrics.avg_latency();
    cells[i].log2_tp = metrics.log2_throughput();
  });
  TextTable table({"fault", "avg latency", "log2 throughput"});
  const char* names[] = {"none", "A (GEEC link)", "B (tree link)",
                         "C (node)"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.add_row({names[i], fmt_double(cells[i].latency, 3),
                   fmt_double(cells[i].log2_tp, 3)});
  }
  table.print(std::cout);
  return 0;
}
