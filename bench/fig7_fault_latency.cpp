// Figure 7: A fault's influence on average latency — GC(n, 2) with
// n = 5..13, no faults versus one faulty node (FTGCR routing around it).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Figure 7",
                      "Average latency, GC(n,2): fault-free vs one faulty "
                      "node");
  const Dim n_lo = 5, n_hi = 13;
  struct Cell {
    Dim n;
    std::size_t faults;
    double latency = 0.0;
  };
  std::vector<Cell> cells;
  for (Dim n = n_lo; n <= n_hi; ++n) {
    cells.push_back({n, 0, 0.0});
    cells.push_back({n, 1, 0.0});
  }
  parallel_for_index(cells.size(), [&](std::size_t i) {
    GcSimSpec spec;
    spec.n = cells[i].n;
    spec.modulus = 2;
    spec.faulty_nodes = cells[i].faults;
    spec.fault_seed = 70 + i;
    spec.sim.injection_rate = 0.01;
    spec.sim.warmup_cycles = 300;
    spec.sim.measure_cycles = 1500;
    spec.sim.seed = 3000 + i;
    cells[i].latency = run_gc_simulation(spec).metrics.avg_latency();
  });
  TextTable table({"n", "no fault", "one fault"});
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    table.add_row({std::to_string(cells[i].n),
                   fmt_double(cells[i].latency, 2),
                   fmt_double(cells[i + 1].latency, 2)});
  }
  table.print(std::cout);
  std::cout << "(average latency, cycles/packet)\n";
  return 0;
}
