// Ablation: collective primitives on Gaussian Cubes — broadcast rounds
// (single-port and all-port models) versus dimension and modulus, plus
// multicast link sharing. The paper's introduction claims these primitives
// stay efficient across the GC family; this quantifies the dilution cost.
#include <iostream>

#include "bench_common.hpp"
#include "routing/collectives.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Ablation",
                      "broadcast/multicast cost across the GC family");
  {
    TextTable table({"topology", "tree depth (all-port)",
                     "single-port rounds", "log2 N lower bound"});
    for (const Dim n : {8u, 10u, 12u}) {
      for (const std::uint64_t m : {1u, 2u, 4u, 8u}) {
        const GaussianCube gc(n, m);
        const auto tree = build_bfs_spanning_tree(gc, 0);
        table.add_row({gc.name(),
                       std::to_string(all_port_broadcast_rounds(tree)),
                       std::to_string(single_port_broadcast_rounds(tree)),
                       std::to_string(n)});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    TextTable table({"topology", "dests", "links used", "sum of routes",
                     "sharing %"});
    Xoshiro256 rng(31);
    for (const std::uint64_t m : {1u, 2u, 4u}) {
      const GaussianCube gc(10, m);
      const FfgcrRouter router(gc);
      for (const std::size_t count : {4u, 16u, 64u}) {
        std::vector<NodeId> dests;
        while (dests.size() < count) {
          const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
          if (d != 0) dests.push_back(d);
        }
        const auto result = multicast_tree(router, 0, dests);
        const double sharing =
            100.0 * (1.0 - static_cast<double>(result.links_used) /
                               static_cast<double>(result.total_route_length));
        table.add_row({gc.name(), std::to_string(count),
                       std::to_string(result.links_used),
                       std::to_string(result.total_route_length),
                       fmt_double(sharing, 1)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
