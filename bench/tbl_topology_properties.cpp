// Topology properties table (paper §2's motivation: interconnection density
// scales with M without changing the routing algorithm).
//
// For GC(n, M) across n and M: node count, link count, min/max degree, and
// exact diameter (BFS) for sizes we can afford — the cost/performance
// tradeoff the Gaussian Cube family exposes.
#include <iostream>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/table.hpp"

int main() {
  using namespace gcube;
  bench::print_banner("Topology table",
                      "GC(n, M) density and diameter vs modulus");
  TextTable table({"topology", "nodes", "links", "min deg", "max deg",
                   "diameter"});
  for (const Dim n : {6u, 8u, 10u}) {
    for (const std::uint64_t m : {1u, 2u, 4u, 8u}) {
      const GaussianCube gc(n, m);
      const Graph g(gc);
      const auto hist = degree_histogram(g);
      Dim min_deg = 0;
      while (min_deg < hist.size() && hist[min_deg] == 0) ++min_deg;
      table.add_row({gc.name(), std::to_string(gc.node_count()),
                     std::to_string(g.edge_count()), std::to_string(min_deg),
                     std::to_string(hist.size() - 1),
                     std::to_string(diameter(g))});
    }
  }
  table.print(std::cout);
  return 0;
}
