// perf_simcore — simulator hot-path throughput harness.
//
// Times NetworkSim::run() (injection + forwarding, the whole cycle loop)
// across Gaussian-Cube sizes and router kinds, and reports wall-clock
// cycles/sec, delivered packets/sec, and packet-hops/sec per cell. The
// headline cell — GC(10, 4), FTGCR, static faults — is the one each perf
// PR is judged against: its pre-PR measurement is recorded below and the
// JSON output carries both numbers so the perf trajectory is tracked run
// over run. The _t2/_t4 companions rerun the headline workload with exact
// worker counts and report speedup_vs_threads1 — the node-sharded core's
// scaling curve (bit-identical metrics, by the determinism contract).
//
// Output: a human-readable table on stdout and BENCH_simcore.json (schema
// documented in EXPERIMENTS.md §Performance) in the working directory or
// at --out=<path>. --quick shrinks the cycle counts and repetitions for
// CI; quick numbers are noisier but use the identical schema.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

using namespace gcube;

// Pre-PR measurement of the headline cell (GC(10, 4), FTGCR, 12 static
// faults, rate 0.05, 300 + 4000 cycles, seed 4242), best of 3 on the
// reference container: packets/sec delivered at threads=1 by the SoA
// hot/cold packet lanes with the batched word-at-a-time advance, all
// kernels scalar (PR 7 state). The current threads=1 cell — SIMD classify,
// gathered fabric lookups, batched counter-RNG keying behind runtime ISA
// dispatch — is judged against this. Re-measure with `git checkout <PR 7>`
// if the hardware changes.
constexpr double kBaselineHeadlinePacketsPerSec = 1590808.0;

struct CellSpec {
  std::string name;
  Dim n = 10;
  std::uint64_t modulus = 4;
  std::string router;           // "FFGCR", "FTGCR", "ECUBE"
  std::size_t faulty_nodes = 0; // static, precondition-checked
  double injection_rate = 0.05;
  Cycle warmup = 300;
  Cycle measure = 4000;
  bool headline = false;  // carries the recorded baseline in the JSON
  bool quick_only_shrink = true;
  std::uint32_t threads = 1;      // SimConfig::threads (exact worker count)
  std::string scaling_base;       // name of the threads=1 cell to divide by
  bool legacy = false;            // run with fabric + active_set disabled
  std::string legacy_base;        // legacy twin cell: emit speedup_vs_legacy
  bool simd_scalar = false;       // pin SimdLevel::kScalar for this cell
  std::string simd_base;          // scalar twin: emit speedup_vs_simd_scalar
};

struct CellResult {
  CellSpec spec;
  SimMetrics metrics;
  double seconds = 0.0;  // best-of-reps wall time of NetworkSim::run()
  /// Per-phase attribution from ONE extra run with SimConfig::phase_timing
  /// (steady_clock reads in the cycle loop), kept out of `seconds` so the
  /// instrumentation never taxes the headline number. Nanoseconds summed
  /// across workers.
  SimMetrics timed;
  /// Wall time of that one instrumented pass — the denominator the
  /// phase_*_ns attribution must fit inside (sum <= threads * this),
  /// which `seconds` cannot serve: best-of-reps from uninstrumented runs
  /// is routinely shorter than any single instrumented pass.
  double timed_seconds = 0.0;
  /// Dispatch level the cell's kernels actually ran at.
  SimdLevel simd = SimdLevel::kScalar;
  [[nodiscard]] double cycles_per_sec() const {
    return static_cast<double>(spec.warmup + spec.measure) / seconds;
  }
  [[nodiscard]] double packets_per_sec() const {
    return static_cast<double>(metrics.delivered) / seconds;
  }
  [[nodiscard]] double hops_per_sec() const {
    return static_cast<double>(metrics.total_hops) / seconds;
  }
};

/// Draws `count` distinct faulty nodes satisfying the FTGCR precondition
/// (same idiom as the experiment runner; deterministic in `seed`).
FaultSet draw_faults(const GaussianCube& gc, std::size_t count,
                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    FaultSet faults;
    while (faults.node_fault_count() < count) {
      faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
    }
    if (check_ftgcr_precondition(gc, faults)) return faults;
  }
  GCUBE_REQUIRE(false, "no tolerable fault pattern found for " + gc.name());
  return {};
}

CellResult run_cell(const CellSpec& spec, int reps) {
  const GaussianCube gc(spec.n, spec.modulus);
  FaultSet faults;
  if (spec.faulty_nodes > 0) faults = draw_faults(gc, spec.faulty_nodes, 7);

  std::unique_ptr<Router> router;
  if (spec.router == "FFGCR") {
    router = std::make_unique<FfgcrRouter>(gc);
  } else if (spec.router == "FTGCR") {
    router = std::make_unique<FtgcrRouter>(gc, faults);
  } else if (spec.router == "ECUBE") {
    GCUBE_REQUIRE(spec.modulus == 1, "e-cube needs GC(n, 1)");
    router = std::make_unique<EcubeRouter>(gc);
  } else {
    GCUBE_REQUIRE(false, "unknown router kind " + spec.router);
  }

  SimConfig cfg;
  cfg.injection_rate = spec.injection_rate;
  cfg.warmup_cycles = spec.warmup;
  cfg.measure_cycles = spec.measure;
  cfg.seed = 4242;
  cfg.threads = spec.threads;
  // The scaling companions need their exact worker counts even on boxes
  // with fewer cores, so the curve stays comparable across machines.
  cfg.allow_oversubscribe = true;
  cfg.fabric = !spec.legacy;
  cfg.active_set = !spec.legacy;

  CellResult result;
  result.spec = spec;
  // The _simd_scalar twin pins every kernel to the scalar reference for
  // the whole cell (NetworkSim snapshots the level at construction);
  // metrics are bit-identical either way, only wall time may move.
  const SimdLevel entry_level = simd_level();
  if (spec.simd_scalar) set_simd_level(SimdLevel::kScalar);
  result.simd = simd_level();
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // A fresh simulator per rep so queue/pool warm-up is timed every time;
    // the router (and its caches) persists, matching steady-state service.
    NetworkSim sim(gc, *router, faults, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    SimMetrics m = sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || secs < best) best = secs;
    result.metrics = m;
  }
  result.seconds = best;
  // One instrumented pass for the phase breakdown, after (and excluded
  // from) the timed reps. Same workload and seed, so the metrics match the
  // timed runs bit for bit; only the phase_*_ns fields differ from zero.
  cfg.phase_timing = true;
  NetworkSim timed_sim(gc, *router, faults, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  result.timed = timed_sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  result.timed_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (spec.simd_scalar) set_simd_level(entry_level);
  return result;
}

/// packets/sec of the named cell, or 0 when it was not run (quick trims).
double cell_packets_per_sec(const std::vector<CellResult>& cells,
                            const std::string& name) {
  for (const CellResult& c : cells) {
    if (c.spec.name == name) return c.packets_per_sec();
  }
  return 0.0;
}

/// JSON number that is always spelled as a float. Streaming a double with
/// the default %g drops the decimal point whenever the value rounds to an
/// integer at the active precision, so cycles_per_sec used to come out as
/// 256386 in one cell and 44561.6 in the next — poison for schema-inferring
/// consumers. Every floating-point field goes through here.
std::string json_double(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  std::string s = os.str();
  if (s.find_first_of(".e") == std::string::npos) s += ".0";
  return s;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                bool quick) {
  std::ofstream out(path);
  GCUBE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  // Schema 5: a top-level provenance block — the same identifying tuple
  // the checkpoint header carries (seed, topology, router, simd, threads,
  // schema version, build type) — so a report is attributable to the run
  // that produced it without consulting the harness source. Topology /
  // router / simd / threads describe the headline cell.
  const CellResult* headline = &cells.front();
  for (const CellResult& c : cells) {
    if (c.spec.headline) headline = &c;
  }
#ifdef NDEBUG
  const char* build_type = "optimized";
#else
  const char* build_type = "debug";
#endif
  out << "{\n"
      << "  \"bench\": \"perf_simcore\",\n"
      << "  \"schema_version\": 5,\n"
      << "  \"provenance\": {\n"
      << "    \"seed\": 4242,\n"
      << "    \"topology\": \"GC(" << headline->spec.n << ", "
      << headline->spec.modulus << ")\",\n"
      << "    \"router\": \"" << headline->spec.router << "\",\n"
      << "    \"simd\": \"" << to_string(headline->simd) << "\",\n"
      << "    \"threads\": " << headline->spec.threads << ",\n"
      << "    \"schema_version\": 5,\n"
      << "    \"build_type\": \"" << build_type << "\"\n"
      << "  },\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"baseline\": {\n"
      << "    \"label\": \"pre-PR (PR 7, SoA lanes, scalar kernels)\",\n"
      << "    \"headline_cell\": \"gc10x4_ftgcr_static\",\n"
      << "    \"packets_per_sec\": "
      << json_double(kBaselineHeadlinePacketsPerSec) << "\n  },\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\n"
        << "      \"name\": \"" << c.spec.name << "\",\n"
        << "      \"topology\": \"GC(" << c.spec.n << ", " << c.spec.modulus
        << ")\",\n"
        << "      \"router\": \"" << c.spec.router << "\",\n"
        << "      \"static_faults\": " << c.spec.faulty_nodes << ",\n"
        << "      \"injection_rate\": " << json_double(c.spec.injection_rate)
        << ",\n"
        << "      \"warmup_cycles\": " << c.spec.warmup << ",\n"
        << "      \"measure_cycles\": " << c.spec.measure << ",\n"
        << "      \"threads\": " << c.spec.threads << ",\n"
        << "      \"fabric\": " << (c.spec.legacy ? "false" : "true") << ",\n"
        << "      \"active_set\": " << (c.spec.legacy ? "false" : "true")
        << ",\n"
        << "      \"simd\": \"" << to_string(c.simd) << "\",\n"
        << "      \"seconds\": " << json_double(c.seconds) << ",\n"
        << "      \"timed_seconds\": " << json_double(c.timed_seconds)
        << ",\n"
        << "      \"cycles_per_sec\": " << json_double(c.cycles_per_sec())
        << ",\n"
        << "      \"generated\": " << c.metrics.generated << ",\n"
        << "      \"delivered\": " << c.metrics.delivered << ",\n"
        << "      \"carryover_delivered\": " << c.metrics.carryover_delivered
        << ",\n"
        << "      \"total_hops\": " << c.metrics.total_hops << ",\n"
        << "      \"packets_per_sec\": " << json_double(c.packets_per_sec())
        << ",\n"
        << "      \"hops_per_sec\": " << json_double(c.hops_per_sec())
        << ",\n"
        << "      \"phase_breakdown\": {\n"
        << "        \"drain_ns\": " << c.timed.phase_drain_ns << ",\n"
        << "        \"inject_ns\": " << c.timed.phase_inject_ns << ",\n"
        << "        \"advance_ns\": " << c.timed.phase_advance_ns << ",\n"
        << "        \"commit_ns\": " << c.timed.phase_commit_ns
        << "\n      }";
    if (c.spec.headline) {
      out << ",\n      \"baseline_packets_per_sec\": "
          << json_double(kBaselineHeadlinePacketsPerSec)
          << ",\n      \"speedup_vs_baseline\": "
          << json_double(c.packets_per_sec() /
                         kBaselineHeadlinePacketsPerSec);
    }
    if (!c.spec.scaling_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.scaling_base);
      if (base > 0.0) {
        out << ",\n      \"scaling_base\": \"" << c.spec.scaling_base
            << "\",\n      \"speedup_vs_threads1\": "
            << json_double(c.packets_per_sec() / base);
      }
    }
    if (!c.spec.legacy_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.legacy_base);
      if (base > 0.0) {
        out << ",\n      \"speedup_vs_legacy\": "
            << json_double(c.packets_per_sec() / base);
      }
    }
    if (!c.spec.simd_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.simd_base);
      if (base > 0.0) {
        out << ",\n      \"speedup_vs_simd_scalar\": "
            << json_double(c.packets_per_sec() / base);
      }
    }
    out << "\n    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcube;
  CliArgs args(argc, argv);
  args.allow({"quick", "out"});
  const bool quick = args.get_bool("quick");
  const std::string out_path = args.get_string("out", "BENCH_simcore.json");

  bench::print_banner("perf_simcore",
                      "simulator hot-path throughput (inject + forward)");

  std::vector<CellSpec> specs{
      {"gc8x2_ffgcr_faultfree", 8, 2, "FFGCR", 0, 0.05, 300, 4000, false,
       true, 1, "", false, "", false, ""},
      {"gc10x4_ffgcr_faultfree", 10, 4, "FFGCR", 0, 0.05, 300, 4000, false,
       true, 1, "", false, "", false, ""},
      {"gc10x4_ftgcr_static", 10, 4, "FTGCR", 12, 0.05, 300, 4000, true,
       true, 1, "", false, "", false, "gc10x4_ftgcr_static_simd_scalar"},
      // SIMD twin of the headline cell (same role as the _legacy twin for
      // the active-set loop): identical workload with every kernel pinned
      // to the scalar reference, so speedup_vs_simd_scalar on the headline
      // attributes the vectorization win separately from the baseline
      // trajectory. Metrics are bit-identical by the dispatch contract.
      {"gc10x4_ftgcr_static_simd_scalar", 10, 4, "FTGCR", 12, 0.05, 300,
       4000, false, true, 1, "", false, "", true, ""},
      // Thread-scaling companions of the headline cell: identical workload,
      // exact worker counts. Metrics are bit-identical across all three by
      // the determinism contract; only wall time may differ.
      {"gc10x4_ftgcr_static_t2", 10, 4, "FTGCR", 12, 0.05, 300, 4000, false,
       true, 2, "gc10x4_ftgcr_static", false, "", false, ""},
      {"gc10x4_ftgcr_static_t4", 10, 4, "FTGCR", 12, 0.05, 300, 4000, false,
       true, 4, "gc10x4_ftgcr_static", false, "", false, ""},
      {"gc10x1_ecube_faultfree", 10, 1, "ECUBE", 0, 0.05, 300, 4000, false,
       true, 1, "", false, "", false, ""},
      {"gc12x4_ftgcr_static", 12, 4, "FTGCR", 16, 0.02, 300, 1500, false,
       false, 1, "", false, "", false, ""},
      // Low-injection pair: at 1% load most nodes idle most cycles, which
      // is where the active-set worklist (skip idle nodes entirely) pays;
      // the _legacy twin runs the identical workload with fabric and
      // active_set disabled and speedup_vs_legacy is their ratio. Fault-free
      // on purpose: the pair isolates the cycle-loop change, and faults
      // would mix steering-adoption costs (a fabric property) into it.
      {"gc10x4_ftgcr_lowinj", 10, 4, "FTGCR", 0, 0.01, 300, 4000, false,
       true, 1, "", false, "gc10x4_ftgcr_lowinj_legacy", false, ""},
      {"gc10x4_ftgcr_lowinj_legacy", 10, 4, "FTGCR", 0, 0.01, 300, 4000,
       false, true, 1, "", true, "", false, ""},
  };
  if (quick) {
    std::vector<CellSpec> trimmed;
    for (CellSpec spec : specs) {
      if (!spec.quick_only_shrink) continue;  // drop the big cells in CI
      spec.warmup = 100;
      spec.measure = 800;
      trimmed.push_back(spec);
    }
    specs = std::move(trimmed);
  }
  // Best-of-5 in full mode: containerized reference boxes show several
  // percent of run-to-run drift, and the headline ratio is gated at the
  // few-percent level — three reps routinely missed the machine's true
  // ceiling.
  const int reps = quick ? 1 : 5;

  std::vector<CellResult> cells;
  cells.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    cells.push_back(run_cell(spec, reps));
  }

  TextTable table({"cell", "router", "faults", "threads", "simd", "cycles/s",
                   "packets/s", "hops/s", "delivered", "seconds"});
  for (const CellResult& c : cells) {
    table.add_row({c.spec.name, c.spec.router,
                   std::to_string(c.spec.faulty_nodes),
                   std::to_string(c.spec.threads), to_string(c.simd),
                   fmt_double(c.cycles_per_sec(), 0),
                   fmt_double(c.packets_per_sec(), 0),
                   fmt_double(c.hops_per_sec(), 0),
                   std::to_string(c.metrics.delivered),
                   fmt_double(c.seconds, 3)});
  }
  table.print(std::cout);

  for (const CellResult& c : cells) {
    if (c.spec.headline) {
      std::cout << "headline " << c.spec.name << ": "
                << fmt_double(c.packets_per_sec(), 0) << " packets/s vs "
                << fmt_double(kBaselineHeadlinePacketsPerSec, 0)
                << " baseline ("
                << fmt_double(c.packets_per_sec() /
                                  kBaselineHeadlinePacketsPerSec,
                              2)
                << "x)\n";
      const double total = static_cast<double>(
          c.timed.phase_drain_ns + c.timed.phase_inject_ns +
          c.timed.phase_advance_ns + c.timed.phase_commit_ns);
      if (total > 0.0) {
        const auto pct = [&](std::uint64_t ns) {
          return fmt_double(100.0 * static_cast<double>(ns) / total, 1);
        };
        std::cout << "phases " << c.spec.name << ": drain "
                  << pct(c.timed.phase_drain_ns) << "% inject "
                  << pct(c.timed.phase_inject_ns) << "% advance "
                  << pct(c.timed.phase_advance_ns) << "% commit "
                  << pct(c.timed.phase_commit_ns) << "%\n";
      }
    }
    if (!c.spec.scaling_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.scaling_base);
      if (base > 0.0) {
        std::cout << "scaling " << c.spec.name << ": "
                  << fmt_double(c.packets_per_sec() / base, 2)
                  << "x vs threads=1\n";
      }
    }
    if (!c.spec.legacy_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.legacy_base);
      if (base > 0.0) {
        std::cout << "active-set " << c.spec.name << ": "
                  << fmt_double(c.packets_per_sec() / base, 2)
                  << "x vs legacy scan\n";
      }
    }
    if (!c.spec.simd_base.empty()) {
      const double base = cell_packets_per_sec(cells, c.spec.simd_base);
      if (base > 0.0) {
        std::cout << "simd " << c.spec.name << ": "
                  << fmt_double(c.packets_per_sec() / base, 2)
                  << "x vs scalar kernels\n";
      }
    }
  }
  write_json(out_path, cells, quick);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
