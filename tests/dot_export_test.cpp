// DOT export tests: structure, labels, fault and route decoration.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/dot_export.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/topology.hpp"

namespace gcube {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DotExport, EmitsEveryNodeAndLinkOnce) {
  const Hypercube h(3);
  std::ostringstream os;
  write_dot(os, h);
  const std::string dot = os.str();
  EXPECT_EQ(count_occurrences(dot, "n0 ["), 1u);
  EXPECT_EQ(count_occurrences(dot, " -- "), h.link_count());
  EXPECT_NE(dot.find("graph \"H_3\""), std::string::npos);
}

TEST(DotExport, BinaryVersusDecimalLabels) {
  const Hypercube h(3);
  std::ostringstream binary;
  write_dot(binary, h);
  EXPECT_NE(binary.str().find("label=\"101\""), std::string::npos);
  DotOptions options;
  options.binary_labels = false;
  std::ostringstream decimal;
  write_dot(decimal, h, options);
  EXPECT_NE(decimal.str().find("label=\"5\""), std::string::npos);
  EXPECT_EQ(decimal.str().find("label=\"101\""), std::string::npos);
}

TEST(DotExport, MarksFaults) {
  const GaussianCube gc(5, 2);
  FaultSet faults;
  faults.fail_node(3);
  faults.fail_link(0, 0);
  DotOptions options;
  options.faults = &faults;
  std::ostringstream os;
  write_dot(os, gc, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("n3 ["), std::string::npos);
  EXPECT_NE(dot.find("color=red, fontcolor=red"), std::string::npos);
  EXPECT_NE(dot.find("color=red, style=dashed"), std::string::npos);
}

TEST(DotExport, HighlightsRoute) {
  const GaussianCube gc(5, 2);
  const FfgcrRouter router(gc);
  const auto result = router.plan(0, 21);
  DotOptions options;
  options.route = &*result.route;
  std::ostringstream os;
  write_dot(os, gc, options);
  EXPECT_EQ(count_occurrences(os.str(), "color=blue, penwidth=2"),
            result.route->length() + result.route->nodes().size());
}

TEST(DotExport, RefusesHugeNetworks) {
  const Hypercube h(14);
  std::ostringstream os;
  EXPECT_THROW(write_dot(os, h), std::invalid_argument);
}

}  // namespace
}  // namespace gcube
