// Theorem 3 / Theorem 5 precondition checker tests (paper §5).
#include <gtest/gtest.h>

#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

TEST(Theorem3, FaultFreeHolds) {
  const GaussianCube gc(8, 4);
  EXPECT_TRUE(check_theorem3(gc, FaultSet{}));
}

TEST(Theorem3, RejectsNonACategoryFaults) {
  const GaussianCube gc(8, 4);
  {
    FaultSet f;
    f.fail_link(0, 0);  // B-category (tree dimension)
    const auto report = check_theorem3(gc, f);
    EXPECT_FALSE(report.holds);
    ASSERT_FALSE(report.violations.empty());
  }
  {
    FaultSet f;
    f.fail_node(0);  // node fault: B or C, never A
    EXPECT_FALSE(check_theorem3(gc, f));
  }
}

TEST(Theorem3, AcceptsFaultsUnderPerGeecLimit) {
  // GC(10, 2): alpha = 1, Dim(0) = {2,4,6,8}, Dim(1) = {1? no: [1,9] odd >=1}
  // Dim(1) = {3,5,7,9} — wait alpha=1 so dims >= 1: Dim(0) = even dims
  // {2,4,6,8}, Dim(1) = odd dims {3,5,7,9} (dim 1 ≡ 1 mod 2 and >= alpha).
  const GaussianCube gc(10, 2);
  ASSERT_EQ(gc.high_dim_count(0), 4u);
  FaultSet f;
  // Three A-faults in one GEEC (node 0's): under the limit of 4.
  f.fail_link(0, 2);
  f.fail_link(0, 4);
  f.fail_link(0, 6);
  EXPECT_TRUE(check_theorem3(gc, f));
  // A fourth one in the same GEEC breaches N(0) = 4.
  f.fail_link(0, 8);
  EXPECT_FALSE(check_theorem3(gc, f));
}

TEST(Theorem3, FaultsInDifferentGeecsDoNotAccumulate) {
  const GaussianCube gc(10, 2);
  FaultSet f;
  // Same class, different GEECs (different fixed bits outside Dim(0)):
  // GEEC key includes bit 1 (odd dims are outside Dim(0)).
  f.fail_link(0b0000000000, 2);
  f.fail_link(0b0000001000, 2);  // differs in bit 3 -> different GEEC
  f.fail_link(0b0000100000, 2);  // differs in bit 5
  f.fail_link(0b0010000000, 2);  // differs in bit 7
  f.fail_link(0b1000000000, 2);  // differs in bit 9
  EXPECT_TRUE(check_theorem3(gc, f));
}

TEST(Theorem5, FaultFreeHolds) {
  const GaussianCube gc(8, 4);
  EXPECT_TRUE(check_theorem5(gc, FaultSet{}));
}

TEST(Theorem5, SingleNodeFaultToleratedWhenDimsLargeEnough) {
  // GC(12, 2): Dim(0) = {2,4,6,8,10} (5 dims), Dim(1) = {3,5,7,9,11}.
  const GaussianCube gc(12, 2);
  FaultSet f;
  f.fail_node(0b000000000000);
  EXPECT_TRUE(check_theorem5(gc, f));
}

TEST(Theorem5, NodeFaultInDimensionlessClassViolates) {
  // GC(5, 4): class 1 has Dim(1) = {} — a faulty node there cannot be
  // detoured around when crossing tree edges at class 1.
  const GaussianCube gc(5, 4);
  FaultSet f;
  f.fail_node(0b00001);
  EXPECT_FALSE(check_theorem5(gc, f));
}

TEST(Theorem5, CrossLinkFaultCountsAsEZero) {
  const GaussianCube gc(12, 2);
  FaultSet f;
  f.fail_link(0, 0);  // tree-dimension link between classes 0 and 1
  EXPECT_TRUE(check_theorem5(gc, f));
  // Saturate the crossing: e_s + e_0 must stay < |Dim(0)| = 5. Add four
  // side faults in the same crossing structure (class-0 side of the (0,1)
  // edge, same fixed bits).
  f.fail_node(0b000000000100);  // class 0
  f.fail_node(0b000000010000);
  f.fail_node(0b000001000000);
  EXPECT_TRUE(check_theorem5(gc, f));
  f.fail_node(0b000100000000);
  EXPECT_FALSE(check_theorem5(gc, f));
}

TEST(Theorem5, CrossLinkWithFaultyEndpointNotDoubleCounted) {
  const GaussianCube gc(12, 2);
  FaultSet f;
  f.fail_node(0);
  f.fail_link(0, 0);  // endpoint already faulty: not an e_0 fault
  const auto with_node = check_theorem5(gc, f);
  FaultSet only_node;
  only_node.fail_node(0);
  EXPECT_EQ(with_node.holds, check_theorem5(gc, only_node).holds);
}

TEST(FtgcrPrecondition, CombinesBothChecks) {
  const GaussianCube gc(12, 2);
  {
    FaultSet f;
    f.fail_node(0);
    EXPECT_TRUE(check_ftgcr_precondition(gc, f));
  }
  {
    // Too many faults in one GEEC (node faults count here).
    FaultSet f;
    f.fail_link(0, 2);
    f.fail_link(0, 4);
    f.fail_link(0, 6);
    f.fail_link(0, 8);
    f.fail_link(0, 10);
    EXPECT_FALSE(check_ftgcr_precondition(gc, f));
  }
}

TEST(FtgcrPrecondition, ViolationMessagesAreDescriptive) {
  const GaussianCube gc(5, 4);
  FaultSet f;
  f.fail_node(0b00001);
  const auto report = check_ftgcr_precondition(gc, f);
  ASSERT_FALSE(report.holds);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().what.find("crossing"),
            std::string::npos);
}

}  // namespace
}  // namespace gcube
