// Channel-dependency (deadlock) analysis tests.
//
// Findings encoded here (also discussed in EXPERIMENTS.md):
//  * dimension-ordered e-cube routing has an acyclic channel dependency
//    graph (the classical Dally-Seitz result) — the checker must agree;
//  * FFGCR's mixed dimension order (tree walk interleaved with high-bit
//    fixes, detours traversing dimensions both ways) produces channel
//    dependency cycles, so the paper's "deadlock-free routes" claim is a
//    statement about its store-and-forward, eager-readership model (finite
//    cycle-free paths), not wormhole safety.
#include <gtest/gtest.h>

#include "routing/deadlock.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/topology.hpp"

namespace gcube {
namespace {

TEST(ChannelDependencyGraph, EmptyHasNoCycle) {
  const ChannelDependencyGraph cdg;
  EXPECT_EQ(cdg.channel_count(), 0u);
  EXPECT_FALSE(cdg.has_cycle());
}

TEST(ChannelDependencyGraph, SingleRouteIsAcyclic) {
  ChannelDependencyGraph cdg;
  Route r(0);
  r.append(0);
  r.append(1);
  r.append(2);
  cdg.add_route(r);
  EXPECT_EQ(cdg.channel_count(), 3u);
  EXPECT_EQ(cdg.dependency_count(), 2u);
  EXPECT_FALSE(cdg.has_cycle());
}

TEST(ChannelDependencyGraph, DetectsHandmadeCycle) {
  // Four routes chasing each other around a square in H_2:
  // 00->01->11, 01->11->10, 11->10->00, 10->00->01.
  ChannelDependencyGraph cdg;
  const NodeId starts[] = {0b00, 0b01, 0b11, 0b10};
  const Dim first[] = {0, 1, 0, 1};
  const Dim second[] = {1, 0, 1, 0};
  for (int i = 0; i < 4; ++i) {
    Route r(starts[i]);
    r.append(first[i]);
    r.append(second[i]);
    cdg.add_route(r);
  }
  EXPECT_TRUE(cdg.has_cycle());
}

TEST(ChannelDependencyGraph, EcubeIsWormholeSafe) {
  // Dimension order: dependencies only go from lower to higher dimensions,
  // hence no cycle — for the full all-pairs route set.
  for (const Dim n : {3u, 4u, 5u}) {
    const Hypercube h(n);
    const EcubeRouter router(h);
    ChannelDependencyGraph cdg;
    for (NodeId s = 0; s < h.node_count(); ++s) {
      for (NodeId d = 0; d < h.node_count(); ++d) {
        cdg.add_route(*router.plan(s, d).route);
      }
    }
    EXPECT_FALSE(cdg.has_cycle()) << "n=" << n;
    EXPECT_EQ(cdg.channel_count(), 2 * h.link_count());
  }
}

TEST(ChannelDependencyGraph, FfgcrIsNotWormholeSafe) {
  // The finding: FFGCR's all-pairs route set has dependency cycles. Its
  // deadlock freedom is of the store-and-forward kind (routes are finite
  // simple paths; eager readership drains queues), not Dally-Seitz.
  const GaussianCube gc(6, 2);
  const FfgcrRouter router(gc);
  ChannelDependencyGraph cdg;
  for (NodeId s = 0; s < gc.node_count(); ++s) {
    for (NodeId d = 0; d < gc.node_count(); ++d) {
      cdg.add_route(*router.plan(s, d).route);
    }
  }
  EXPECT_TRUE(cdg.has_cycle());
}

TEST(VirtualChannels, AnnotationCountsDescents) {
  Route r(0);
  for (const Dim c : {1u, 3u, 2u, 5u, 0u, 4u}) r.append(c);
  const auto vcs = annotate_virtual_channels(r);
  const std::vector<std::uint32_t> expected{0, 0, 1, 1, 2, 2};
  EXPECT_EQ(vcs, expected);
  EXPECT_EQ(virtual_channels_required(r), 3u);
}

TEST(VirtualChannels, EmptyRouteNeedsNone) {
  EXPECT_EQ(virtual_channels_required(Route(7)), 0u);
}

TEST(VirtualChannels, AscendingRouteNeedsOne) {
  Route r(0);
  for (const Dim c : {0u, 2u, 5u}) r.append(c);
  EXPECT_EQ(virtual_channels_required(r), 1u);
}

TEST(VirtualChannels, MakeFfgcrWormholeSafe) {
  // The headline: the same all-pairs FFGCR route sets whose plain CDG is
  // cyclic become acyclic under the ascending-vc annotation.
  for (const auto& [n, m] : std::vector<std::pair<Dim, std::uint64_t>>{
           {5u, 2u}, {6u, 2u}, {6u, 4u}}) {
    const GaussianCube gc(n, m);
    const FfgcrRouter router(gc);
    ChannelDependencyGraph plain;
    ChannelDependencyGraph with_vcs;
    std::uint32_t max_vcs = 0;
    for (NodeId s = 0; s < gc.node_count(); ++s) {
      for (NodeId d = 0; d < gc.node_count(); ++d) {
        const RoutingResult planned = router.plan(s, d);
        const Route& route = *planned.route;
        plain.add_route(route);
        with_vcs.add_route(route, annotate_virtual_channels(route));
        max_vcs = std::max(max_vcs, virtual_channels_required(route));
      }
    }
    EXPECT_TRUE(plain.has_cycle()) << gc.name();
    EXPECT_FALSE(with_vcs.has_cycle()) << gc.name();
    EXPECT_GE(max_vcs, 2u) << gc.name();
  }
}

TEST(VirtualChannels, EcubeNeedsExactlyOne) {
  const Hypercube h(5);
  const EcubeRouter router(h);
  for (NodeId s = 0; s < 32; ++s) {
    for (NodeId d = 0; d < 32; ++d) {
      if (s == d) continue;
      EXPECT_EQ(virtual_channels_required(*router.plan(s, d).route), 1u);
    }
  }
}

TEST(ChannelDependencyGraph, DirectionalityMatters) {
  // The same undirected link in both directions is two channels; using
  // them in opposite directions must not by itself create a cycle.
  ChannelDependencyGraph cdg;
  Route forth(0b00);
  forth.append(0);
  forth.append(1);
  Route back(0b11);
  back.append(1);
  back.append(0);
  cdg.add_route(forth);
  cdg.add_route(back);
  EXPECT_FALSE(cdg.has_cycle());
}

}  // namespace
}  // namespace gcube
