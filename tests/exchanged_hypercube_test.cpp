// Exchanged Hypercube tests (paper Definition 7).
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/exchanged_hypercube.hpp"

namespace gcube {
namespace {

TEST(ExchangedHypercube, RejectsDegenerateParameters) {
  EXPECT_THROW(ExchangedHypercube(0, 1), std::invalid_argument);
  EXPECT_THROW(ExchangedHypercube(1, 0), std::invalid_argument);
}

TEST(ExchangedHypercube, PartExtractionRoundTrips) {
  const ExchangedHypercube eh(3, 2);
  for (NodeId u = 0; u < eh.node_count(); ++u) {
    EXPECT_EQ(eh.make_node(eh.a_part(u), eh.b_part(u), eh.c_bit(u)), u);
  }
}

class EhParamTest
    : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(EhParamTest, MatchesDefinitionSevenEdgeRule) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  for (NodeId u = 0; u < eh.node_count(); ++u) {
    for (Dim c = 0; c < eh.dims(); ++c) {
      const NodeId v = Topology::neighbor(u, c);
      // Definition 7, written out: differ only in bit 0; or b-part Hamming
      // distance 1 with both c-bits 1; or a-part Hamming distance 1 with
      // both c-bits 0.
      const bool cross = (u ^ v) == 1;
      const bool b_move = eh.a_part(u) == eh.a_part(v) &&
                          hamming(eh.b_part(u), eh.b_part(v)) == 1 &&
                          eh.c_bit(u) == 1 && eh.c_bit(v) == 1;
      const bool a_move = eh.b_part(u) == eh.b_part(v) &&
                          hamming(eh.a_part(u), eh.a_part(v)) == 1 &&
                          eh.c_bit(u) == 0 && eh.c_bit(v) == 0;
      EXPECT_EQ(eh.has_link(u, c), cross || b_move || a_move)
          << "s=" << s << " t=" << t << " u=" << u << " c=" << c;
    }
  }
}

TEST_P(EhParamTest, IsConnected) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  EXPECT_TRUE(is_connected(Graph(eh)));
}

TEST_P(EhParamTest, SideCubesArePartitionedHypercubes) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  // c==0 nodes group by b-part into 2^t disjoint s-cubes; c==1 nodes group
  // by a-part into 2^s disjoint t-cubes.
  std::map<NodeId, std::size_t> s_cubes, t_cubes;
  for (NodeId u = 0; u < eh.node_count(); ++u) {
    if (eh.c_bit(u) == 0) {
      ++s_cubes[eh.b_part(u)];
      for (Dim c = 1; c <= t; ++c) EXPECT_FALSE(eh.has_link(u, c));
      for (Dim c = t + 1; c <= t + s; ++c) EXPECT_TRUE(eh.has_link(u, c));
    } else {
      ++t_cubes[eh.a_part(u)];
      for (Dim c = 1; c <= t; ++c) EXPECT_TRUE(eh.has_link(u, c));
      for (Dim c = t + 1; c <= t + s; ++c) EXPECT_FALSE(eh.has_link(u, c));
    }
  }
  EXPECT_EQ(s_cubes.size(), pow2(t));
  for (const auto& [b, size] : s_cubes) EXPECT_EQ(size, pow2(s));
  EXPECT_EQ(t_cubes.size(), pow2(s));
  for (const auto& [a, size] : t_cubes) EXPECT_EQ(size, pow2(t));
}

TEST_P(EhParamTest, LinkCountFormula) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  // Cross links: 2^(s+t). In-cube: 2^t cubes × s·2^(s-1) + 2^s × t·2^(t-1).
  const std::uint64_t expected = pow2(s + t) +
                                 pow2(t) * s * pow2(s - 1) +
                                 pow2(s) * t * pow2(t - 1);
  EXPECT_EQ(eh.link_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EhParamTest,
    ::testing::Combine(::testing::Values<Dim>(1, 2, 3, 4),
                       ::testing::Values<Dim>(1, 2, 3, 4)));

TEST(ExchangedHypercube, Name) {
  EXPECT_EQ(ExchangedHypercube(3, 2).name(), "EH(3,2)");
}

// Paper (Case II of Algorithm 4): EH(s, t) is isomorphic to EH(t, s) via
// swapping the a- and b-parts and flipping the c-bit.
TEST(ExchangedHypercube, SwapIsomorphism) {
  for (const auto& [s, t] : std::vector<std::pair<Dim, Dim>>{
           {1, 3}, {2, 3}, {2, 4}, {3, 4}}) {
    const ExchangedHypercube a(s, t);
    const ExchangedHypercube b(t, s);
    const auto phi = [&](NodeId u) {
      return b.make_node(a.b_part(u), a.a_part(u), 1u - a.c_bit(u));
    };
    for (NodeId u = 0; u < a.node_count(); ++u) {
      for (Dim c = 0; c < a.dims(); ++c) {
        if (!a.has_link(u, c)) continue;
        const NodeId v = Topology::neighbor(u, c);
        const NodeId pu = phi(u);
        const NodeId pv = phi(v);
        const NodeId diff = pu ^ pv;
        ASSERT_EQ(popcount(diff), 1u);
        ASSERT_TRUE(b.has_link(pu, lsb_index(diff)))
            << "EH(" << s << "," << t << ") edge (" << u << "," << v
            << ") must map to an edge";
      }
    }
  }
}

}  // namespace
}  // namespace gcube
