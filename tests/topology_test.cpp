// Topology tests: binary hypercube, Gaussian Cube GC(n, M) (paper §2).
//
// Highlights:
//  * Theorem 1's local link rule agrees with the original congruence
//    definition for every node, dimension, and power-of-two modulus;
//  * non-power-of-two moduli decompose the network into disconnected
//    subnetworks (the reason the paper restricts M to powers of two);
//  * GC(n, 1) is exactly the binary hypercube;
//  * Dim(k), GEEC masks, and class structure behave as Definition 2/6 says.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/topology.hpp"

namespace gcube {
namespace {

TEST(Hypercube, BasicProperties) {
  const Hypercube h(4);
  EXPECT_EQ(h.dims(), 4u);
  EXPECT_EQ(h.node_count(), 16u);
  EXPECT_EQ(h.name(), "H_4");
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(h.degree(u), 4u);
  }
  EXPECT_EQ(h.link_count(), 32u);  // n * 2^(n-1)
}

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(kMaxDimension + 1), std::invalid_argument);
}

TEST(Hypercube, NeighborsFlipOneBit) {
  const Hypercube h(3);
  const auto nb = h.neighbors(0b101);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0b100u);
  EXPECT_EQ(nb[1], 0b111u);
  EXPECT_EQ(nb[2], 0b001u);
}

TEST(GaussianCube, RejectsNonPowerOfTwoModulus) {
  EXPECT_THROW(GaussianCube(6, 3), std::invalid_argument);
  EXPECT_THROW(GaussianCube(6, 12), std::invalid_argument);
  EXPECT_THROW(GaussianCube(6, 0), std::invalid_argument);
}

TEST(GaussianCube, AlphaClampsToN) {
  const GaussianCube gc(3, 1024);  // M = 2^10 > 2^3
  EXPECT_EQ(gc.alpha(), 3u);
  EXPECT_EQ(gc.modulus(), 8u);
}

TEST(GaussianCube, ModulusOneIsHypercube) {
  const GaussianCube gc(5, 1);
  const Hypercube h(5);
  EXPECT_EQ(gc.alpha(), 0u);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = 0; c < 5; ++c) {
      EXPECT_TRUE(gc.has_link(u, c)) << "u=" << u << " c=" << c;
    }
  }
  EXPECT_EQ(gc.link_count(), h.link_count());
}

// Theorem 1: the local rule matches the original congruence definition for
// all power-of-two moduli.
class GcTheorem1Test : public ::testing::TestWithParam<std::tuple<Dim, int>> {
};

TEST_P(GcTheorem1Test, LocalRuleMatchesOriginalDefinition) {
  const auto [n, alpha_exp] = GetParam();
  const std::uint64_t modulus = pow2(static_cast<Dim>(alpha_exp));
  const GaussianCube gc(n, modulus);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = 0; c < n; ++c) {
      EXPECT_EQ(gc.has_link(u, c),
                GaussianCube::has_link_original(n, modulus, u, c))
          << "n=" << n << " M=" << modulus << " u=" << u << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCubes, GcTheorem1Test,
    ::testing::Combine(::testing::Values<Dim>(2, 3, 4, 5, 6, 7, 8, 9),
                       ::testing::Values(0, 1, 2, 3)));

TEST(GaussianCube, EveryNodeHasDimensionZeroLink) {
  for (const Dim n : {4u, 6u, 8u}) {
    for (const std::uint64_t m : {1u, 2u, 4u, 8u}) {
      const GaussianCube gc(n, m);
      for (NodeId u = 0; u < gc.node_count(); ++u) {
        EXPECT_TRUE(gc.has_link(u, 0));
      }
    }
  }
}

TEST(GaussianCube, LinkRuleIsSymmetric) {
  const GaussianCube gc(8, 4);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = 0; c < 8; ++c) {
      EXPECT_EQ(gc.has_link(u, c), gc.has_link(flip_bit(u, c), c));
    }
  }
}

TEST(GaussianCube, PowerOfTwoModulusIsConnected) {
  for (const Dim n : {4u, 6u, 8u}) {
    for (const std::uint64_t m : {1u, 2u, 4u}) {
      const GaussianCube gc(n, m);
      EXPECT_TRUE(is_connected(Graph(gc))) << gc.name();
    }
  }
}

// Paper §2: a non-power-of-two modulus leaves no link in any dimension
// c > floor(log2 M), so the network splits into exactly
// 2^(n - 1 - floor(log2 M)) disconnected subnetworks (one per combination
// of the untouched top bits).
TEST(GaussianCube, NonPowerOfTwoModulusDecomposesExactly) {
  for (const Dim n : {5u, 6u, 7u}) {
    for (const std::uint64_t m : {3u, 5u, 6u, 7u, 12u}) {
      Graph g(pow2(n));
      for (NodeId u = 0; u < g.node_count(); ++u) {
        for (Dim c = 0; c < n; ++c) {
          const NodeId v = flip_bit(u, c);
          if (u < v && GaussianCube::has_link_original(n, m, u, c)) {
            g.add_edge(u, v);
          }
        }
      }
      EXPECT_FALSE(GaussianCube::is_connected_modulus(m));
      const Dim top_bits = n - 1 - log2_exact(std::bit_floor(m));
      EXPECT_EQ(component_count(g), pow2(top_bits))
          << "n=" << n << " M=" << m;
    }
  }
}

TEST(GaussianCube, EndingClassIsLowBits) {
  const GaussianCube gc(8, 4);  // alpha = 2
  EXPECT_EQ(gc.class_count(), 4u);
  EXPECT_EQ(gc.ending_class(0b10110111), 0b11u);
  EXPECT_EQ(gc.ending_class(0b10110100), 0b00u);
}

TEST(GaussianCube, HighDimsMatchCongruence) {
  for (const Dim n : {5u, 8u, 11u}) {
    for (const Dim a : {1u, 2u, 3u}) {
      const GaussianCube gc(n, pow2(a));
      for (NodeId k = 0; k < gc.class_count(); ++k) {
        const auto dims = gc.high_dims(k);
        EXPECT_EQ(dims.size(), gc.high_dim_count(k));
        NodeId mask = 0;
        for (const Dim c : dims) {
          EXPECT_GE(c, a);
          EXPECT_LT(c, n);
          EXPECT_EQ(c & low_mask(a), k);
          mask |= NodeId{1} << c;
        }
        EXPECT_EQ(mask, gc.high_dims_mask(k));
      }
    }
  }
}

TEST(GaussianCube, HighDimsPartitionHighDimensions) {
  const GaussianCube gc(11, 4);
  NodeId all = 0;
  for (NodeId k = 0; k < gc.class_count(); ++k) {
    EXPECT_EQ(all & gc.high_dims_mask(k), 0u) << "classes must not overlap";
    all |= gc.high_dims_mask(k);
  }
  EXPECT_EQ(all, low_mask(11) & ~low_mask(2));
}

TEST(GaussianCube, HighDimLinksStayInClass) {
  const GaussianCube gc(9, 4);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = gc.alpha(); c < gc.dims(); ++c) {
      if (!gc.has_link(u, c)) continue;
      EXPECT_EQ(gc.ending_class(u), gc.ending_class(flip_bit(u, c)));
      EXPECT_EQ(gc.ending_class(u), c & low_mask(gc.alpha()))
          << "a high link exists only at the class owning its dimension";
    }
  }
}

TEST(GaussianCube, GeecKeyConstantWithinGeecAndSizeIsPow2Dim) {
  const GaussianCube gc(9, 4);
  // Nodes with equal (class, key) form hypercubes of dimension |Dim(k)|:
  // count group sizes.
  std::map<std::pair<NodeId, NodeId>, std::size_t> sizes;
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    ++sizes[{gc.ending_class(u), gc.geec_key(u)}];
  }
  for (const auto& [id, size] : sizes) {
    EXPECT_EQ(size, pow2(gc.high_dim_count(id.first)));
  }
}

TEST(GaussianCube, GeecIsConnectedHypercube) {
  const GaussianCube gc(8, 2);
  // Every high-dimension link connects two nodes of the same GEEC, and
  // within a GEEC every Dim(k) link exists.
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    const NodeId k = gc.ending_class(u);
    for (NodeId m = gc.high_dims_mask(k); m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      ASSERT_TRUE(gc.has_link(u, c));
      EXPECT_EQ(gc.geec_key(u), gc.geec_key(flip_bit(u, c)));
    }
  }
}

TEST(GaussianCube, NameFormatting) {
  EXPECT_EQ(GaussianCube(10, 4).name(), "GC(10,4)");
  EXPECT_EQ(GaussianCube(6, 1).name(), "GC(6,1)");
}

TEST(GaussianCube, DegreeAccounting) {
  // Each node: 1 (dim 0) + links in tree dims + |Dim(class)|.
  const GaussianCube gc(8, 4);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    Dim expected = 0;
    for (Dim c = 0; c < 8; ++c) expected += gc.has_link(u, c);
    EXPECT_EQ(gc.degree(u), expected);
    EXPECT_GE(gc.degree(u), 1u);  // dimension 0 always present
  }
}

// Link dilution: GC(n, M) has far fewer links than H_n for M > 1, and the
// count decreases as M grows (the paper's motivation for scaling density).
TEST(GaussianCube, LinkDilutionMonotoneInModulus) {
  const Dim n = 10;
  std::uint64_t prev = Hypercube(n).link_count();
  for (const std::uint64_t m : {2u, 4u, 8u}) {
    const std::uint64_t links = GaussianCube(n, m).link_count();
    EXPECT_LT(links, prev) << "M=" << m;
    prev = links;
  }
}

}  // namespace
}  // namespace gcube
