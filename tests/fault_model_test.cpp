// Fault model tests: FaultSet, A/B/C categorization (Definitions 3-5),
// N(k)/t_k closed form, and the T(GC) tolerance bound (Figure 4).
#include <gtest/gtest.h>

#include "fault/categorize.hpp"
#include "fault/fault_set.hpp"
#include "fault/tolerance_bound.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

TEST(FaultSet, NodeFaults) {
  FaultSet f;
  EXPECT_TRUE(f.empty());
  f.fail_node(3);
  f.fail_node(3);  // idempotent
  EXPECT_EQ(f.node_fault_count(), 1u);
  EXPECT_TRUE(f.node_faulty(3));
  EXPECT_FALSE(f.node_faulty(4));
}

TEST(FaultSet, LinkFaultsCanonicalizeEndpoints) {
  FaultSet f;
  f.fail_link(0b101, 1);  // same link as at 0b111
  EXPECT_TRUE(f.link_marked(0b101, 1));
  EXPECT_TRUE(f.link_marked(0b111, 1));
  f.fail_link(0b111, 1);  // idempotent from either end
  EXPECT_EQ(f.link_fault_count(), 1u);
}

TEST(FaultSet, LinkUsableIncludesEndpointNodes) {
  FaultSet f;
  EXPECT_TRUE(f.link_usable(0, 2));
  f.fail_node(0b100);
  EXPECT_FALSE(f.link_usable(0, 2));      // endpoint faulty
  EXPECT_TRUE(f.link_usable(0, 1));       // unrelated link fine
  f.fail_link(0, 1);
  EXPECT_FALSE(f.link_usable(0, 1));
  EXPECT_FALSE(f.link_usable(0b010, 1));  // other endpoint view
}

TEST(FaultSet, ClearResets) {
  FaultSet f;
  f.fail_node(1);
  f.fail_link(0, 0);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.link_usable(0, 0));
}

TEST(LinkId, HiEndpoint) {
  const LinkId l = LinkId::of(0b1011, 1);
  EXPECT_EQ(l.lo, 0b1001u);
  EXPECT_EQ(l.hi(), 0b1011u);
}

TEST(Categorize, LinkFaultsByDimension) {
  const GaussianCube gc(8, 4);  // alpha = 2
  EXPECT_EQ(categorize_link_fault(gc, 0), FaultCategory::B);
  EXPECT_EQ(categorize_link_fault(gc, 1), FaultCategory::B);
  EXPECT_EQ(categorize_link_fault(gc, 2), FaultCategory::A);
  EXPECT_EQ(categorize_link_fault(gc, 7), FaultCategory::A);
}

TEST(Categorize, NodeFaultsByClassDims) {
  // GC(5, 4): alpha = 2, classes 0..3. Dim(k) = {c in [2,4] : c ≡ k mod 4}:
  // Dim(0) = {4}, Dim(1) = {}, Dim(2) = {2}, Dim(3) = {3}.
  const GaussianCube gc(5, 4);
  EXPECT_EQ(gc.high_dim_count(1), 0u);
  EXPECT_EQ(categorize_node_fault(gc, 0b00001), FaultCategory::B);
  EXPECT_EQ(categorize_node_fault(gc, 0b00000), FaultCategory::C);
  EXPECT_EQ(categorize_node_fault(gc, 0b00010), FaultCategory::C);
}

TEST(Categorize, CountsAll) {
  const GaussianCube gc(5, 4);
  FaultSet f;
  f.fail_link(0b00000, 4);  // A (dim 4 >= alpha)
  f.fail_link(0b00000, 0);  // B (tree dim)
  f.fail_node(0b00001);     // B (class 1 has no high dims)
  f.fail_node(0b00010);     // C
  const CategoryCounts counts = categorize_all(gc, f);
  EXPECT_EQ(counts.a, 1u);
  EXPECT_EQ(counts.b, 2u);
  EXPECT_EQ(counts.c, 1u);
  EXPECT_EQ(counts.total(), 4u);
  EXPECT_FALSE(counts.only_a());
}

TEST(Categorize, ToString) {
  EXPECT_EQ(to_string(FaultCategory::A), "A");
  EXPECT_EQ(to_string(FaultCategory::B), "B");
  EXPECT_EQ(to_string(FaultCategory::C), "C");
}

// The closed-form t_k must equal |Dim(k)| by direct enumeration — this is
// the OCR-reconstructed formula of Theorem 3 / Figure 4.
class TkFormulaTest : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(TkFormulaTest, ClosedFormMatchesEnumeration) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  for (NodeId k = 0; k < gc.class_count(); ++k) {
    EXPECT_EQ(t_k_closed_form(n, alpha, k), gc.high_dim_count(k))
        << "n=" << n << " alpha=" << alpha << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TkFormulaTest,
    ::testing::Combine(::testing::Values<Dim>(2, 3, 5, 8, 11, 14, 20),
                       ::testing::Values<Dim>(0, 1, 2, 3, 4)));

TEST(ToleranceBound, HypercubeCase) {
  // alpha = 0: one class, t_0 = n, a single GEEC (the whole cube), which
  // tolerates n - 1 faults.
  for (const Dim n : {3u, 5u, 8u}) {
    EXPECT_EQ(max_tolerable_faults(n, 0), n - 1);
  }
}

TEST(ToleranceBound, MatchesPerGeecSum) {
  // Independent recomputation: sum over classes of
  // (#GEECs) * (t_k - 1), using the topology's own Dim(k).
  for (const Dim n : {6u, 9u, 12u}) {
    for (const Dim a : {1u, 2u, 3u}) {
      const GaussianCube gc(n, pow2(a));
      std::uint64_t expected = 0;
      for (NodeId k = 0; k < gc.class_count(); ++k) {
        const Dim tk = gc.high_dim_count(k);
        if (tk >= 1) {
          expected += (pow2(n - a) / pow2(tk)) * (tk - 1);
        }
      }
      EXPECT_EQ(max_tolerable_faults(gc), expected)
          << "n=" << n << " alpha=" << a;
    }
  }
}

TEST(ToleranceBound, GrowsWithDimension) {
  // Figure 4's dominant trend: log2 T grows steadily with n at fixed alpha.
  for (const Dim a : {1u, 2u, 3u, 4u}) {
    std::uint64_t prev = 0;
    for (Dim n = a + 4; n <= 20; ++n) {
      const std::uint64_t t = max_tolerable_faults(n, a);
      EXPECT_GE(t, prev) << "n=" << n << " alpha=" << a;
      prev = t;
    }
  }
}

TEST(ToleranceBound, AlphaTradeoff) {
  // Across alpha the bound is NOT monotone: larger alpha means more,
  // smaller GEECs — each tolerates fewer faults but there are more of
  // them, and for large n the count wins. Pin the tradeoff down at both
  // ends (measured behavior; EXPERIMENTS.md discusses the shape).
  EXPECT_GT(max_tolerable_faults(20, 2), max_tolerable_faults(20, 1));
  EXPECT_GT(max_tolerable_faults(20, 3), max_tolerable_faults(20, 2));
  // For small n the dilution wins: fewer usable dimensions per class.
  EXPECT_LT(max_tolerable_faults(6, 3), max_tolerable_faults(6, 1));
}

TEST(ToleranceBound, Log2Helper) {
  EXPECT_DOUBLE_EQ(log2_max_tolerable_faults(3, 0), 1.0);  // T = 2
  EXPECT_DOUBLE_EQ(log2_max_tolerable_faults(1, 1), -1.0);  // T = 0
}

TEST(ToleranceBound, RejectsInvalidParameters) {
  EXPECT_THROW((void)max_tolerable_faults(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace gcube
