// Checkpoint/restore contract tests.
//
// The golden contract (ISSUE 10): for any interruption cycle k, any thread
// count, any SIMD level, both steered/planned modes — with static faults,
// scheduled faults, and transient-recovery retries live — resuming from
// the checkpoint produces final metrics that deterministic_equals the
// uninterrupted run; and a corrupted or truncated checkpoint is refused
// with an error NAMING the failing section, falling back to the previous
// good generation. The in-process matrix here uses the deterministic
// halt_at_cycle knob (the same serial-point path a SIGINT takes); the CI
// crash-replay job adds the true _exit(137) mid-run legs via sim_cli.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "routing/ftgcr.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "gcube_" + name + ".ckpt";
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove(checkpoint_previous_generation(path).c_str());
  std::remove((path + ".tmp").c_str());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

SimConfig base_config() {
  SimConfig cfg;
  cfg.injection_rate = 0.03;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 700;
  cfg.seed = 1234;
  cfg.allow_oversubscribe = true;  // real concurrency on small machines
  return cfg;
}

/// Isolation flaps around a handful of victims — the transient-recovery
/// regime (packets genuinely strand and park while links heal).
FaultSchedule recovery_schedule(const GaussianCube& gc) {
  FaultSchedule s;
  Cycle t = 80;
  for (const NodeId v : {9u, 40u, 101u, 164u}) {
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.fail_link_at(t, v, c);
    }
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.repair_link_at(t + 150, v, c);
    }
    t += 90;
  }
  return s;
}

/// Plain fault/repair churn (no retries in this scenario's config).
FaultSchedule churn_schedule() {
  FaultSchedule s;
  s.fail_node_at(60, 11);
  s.fail_link_at(120, 77, 1);
  s.repair_node_at(300, 11);
  s.fail_node_at(350, 130);
  s.repair_link_at(420, 77, 1);
  s.fail_link_at(500, 8, 2);
  return s;
}

enum class Scenario { kStatic, kScheduled, kRetryRecovery };

SimConfig scenario_config(Scenario sc) {
  SimConfig cfg = base_config();
  if (sc == Scenario::kRetryRecovery) {
    cfg.retry_limit = 6;
    cfg.retry_backoff_base = 2;
    cfg.park_capacity = 32;
    cfg.retry_budget = 3;
    cfg.retransmit_timeout = 48;
  }
  return cfg;
}

/// One simulation run of the given scenario. `halt` != 0 interrupts at
/// that cycle (writing a final checkpoint to `path`); a non-empty
/// `resume` continues from a checkpoint instead of starting at cycle 0.
SimMetrics run_scenario(Scenario sc, bool fabric, std::uint32_t threads,
                        const std::string& path = "", Cycle halt = 0,
                        const std::string& resume = "") {
  const GaussianCube gc(8, 2);
  SimConfig cfg = scenario_config(sc);
  cfg.fabric = fabric;
  cfg.threads = threads;
  cfg.checkpoint_path = path;
  cfg.halt_at_cycle = halt;
  cfg.resume_from = resume;
  if (sc == Scenario::kStatic) {
    FaultSet faults;
    for (const NodeId v : {3u, 50u, 100u}) faults.fail_node(v);
    const FtgcrRouter router(gc, faults);
    NetworkSim sim(gc, router, faults, cfg);
    return sim.run();
  }
  const FaultSchedule schedule = sc == Scenario::kScheduled
                                     ? churn_schedule()
                                     : recovery_schedule(gc);
  FaultSet live;
  const FtgcrRouter router(gc, live);
  NetworkSim sim(gc, router, live, cfg, schedule);
  return sim.run();
}

// ---------------------------------------------------------------------------
// The resume-determinism matrix: interruption cycles (early/mid/late) x
// thread counts {1,2,4} on BOTH sides of the interruption x steered and
// planned modes x all three fault scenarios. The halted run and the
// resumed run deliberately use different thread counts — execution shape
// is not part of the state.
// ---------------------------------------------------------------------------

TEST(Checkpoint, ResumeMatrixIsBitIdenticalToUninterruptedRun) {
  struct Leg {
    Cycle halt;
    std::uint32_t halt_threads;
    std::uint32_t resume_threads;
  };
  const Leg legs[] = {{150, 1, 4}, {400, 2, 1}, {650, 4, 2}};
  for (const Scenario sc :
       {Scenario::kStatic, Scenario::kScheduled, Scenario::kRetryRecovery}) {
    for (const bool fabric : {true, false}) {
      const SimMetrics uninterrupted = run_scenario(sc, fabric, 1);
      EXPECT_EQ(uninterrupted.interrupted_at, 0u);
      for (const Leg& leg : legs) {
        const std::string path = tmp_path("matrix");
        remove_generations(path);
        const SimMetrics partial = run_scenario(sc, fabric, leg.halt_threads,
                                                path, leg.halt);
        ASSERT_EQ(partial.interrupted_at, leg.halt);
        const SimMetrics resumed = run_scenario(
            sc, fabric, leg.resume_threads, "", 0, path);
        EXPECT_EQ(resumed.interrupted_at, 0u);
        EXPECT_TRUE(resumed.deterministic_equals(uninterrupted))
            << "scenario=" << static_cast<int>(sc)
            << " fabric=" << fabric << " halt=" << leg.halt << " threads "
            << leg.halt_threads << "->" << leg.resume_threads;
        remove_generations(path);
      }
    }
  }
}

TEST(Checkpoint, PeriodicCheckpointRotationKeepsPreviousGeneration) {
  const std::string path = tmp_path("rotation");
  remove_generations(path);
  const SimMetrics uninterrupted =
      run_scenario(Scenario::kScheduled, true, 2);
  SimConfig cfg;  // run again with periodic checkpoints, halting at 550
  (void)cfg;
  const SimMetrics partial =
      [&] {
        const GaussianCube gc(8, 2);
        SimConfig c = scenario_config(Scenario::kScheduled);
        c.fabric = true;
        c.threads = 2;
        c.checkpoint_every = 200;
        c.checkpoint_path = path;
        c.halt_at_cycle = 550;
        FaultSet live;
        const FtgcrRouter router(gc, live);
        NetworkSim sim(gc, router, live, c, churn_schedule());
        return sim.run();
      }();
  ASSERT_EQ(partial.interrupted_at, 550u);
  // Generations: newest = the halt checkpoint (cycle 550), previous = the
  // last periodic one (cycle 400).
  const SimCheckpoint newest = load_checkpoint(path);
  const SimCheckpoint previous =
      load_checkpoint(checkpoint_previous_generation(path));
  EXPECT_EQ(newest.resume_cycle, 550u);
  EXPECT_EQ(previous.resume_cycle, 400u);

  // Corrupt the newest generation: the fallback loader must name the
  // failing section, load the previous generation, and the resume must
  // STILL converge to the uninterrupted metrics.
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(path, bytes);
  std::string used;
  const SimCheckpoint fallback = load_checkpoint_with_fallback(path, &used);
  EXPECT_EQ(used, checkpoint_previous_generation(path));
  EXPECT_EQ(fallback.resume_cycle, 400u);
  const SimMetrics resumed =
      run_scenario(Scenario::kScheduled, true, 1, "", 0, path);
  EXPECT_TRUE(resumed.deterministic_equals(uninterrupted));
  remove_generations(path);
}

TEST(Checkpoint, BothGenerationsCorruptThrowsThePrimaryError) {
  const std::string path = tmp_path("bothbad");
  remove_generations(path);
  write_file(path, {'G', 'C', 'U', 'B', 'E', 'C', 'K', 'X'});  // bad magic
  try {
    (void)load_checkpoint_with_fallback(path);
    FAIL() << "corrupt checkpoint with no fallback generation must throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.section(), "header");
  }
  remove_generations(path);
}

TEST(Checkpoint, ConfigMismatchIsRefusedNamingTheField) {
  const std::string path = tmp_path("mismatch");
  remove_generations(path);
  (void)run_scenario(Scenario::kScheduled, true, 1, path, 300);
  const GaussianCube gc(8, 2);
  const auto expect_refused = [&](SimConfig cfg, const char* field) {
    cfg.fabric = true;
    cfg.allow_oversubscribe = true;
    cfg.resume_from = path;
    FaultSet live;
    const FtgcrRouter router(gc, live);
    NetworkSim sim(gc, router, live, cfg, churn_schedule());
    try {
      (void)sim.run();
      FAIL() << "mismatched " << field << " must be refused";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.section(), "config") << field;
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "error must name the mismatched field: " << e.what();
    }
  };
  SimConfig wrong_seed = base_config();
  wrong_seed.seed = 99;
  expect_refused(wrong_seed, "seed");
  SimConfig wrong_rate = base_config();
  wrong_rate.injection_rate = 0.25;
  expect_refused(wrong_rate, "injection_rate");
  SimConfig wrong_retry = base_config();
  wrong_retry.retry_limit = 6;
  expect_refused(wrong_retry, "retry_limit");

  // A different fault schedule is a different experiment.
  {
    SimConfig cfg = base_config();
    cfg.fabric = true;
    cfg.resume_from = path;
    FaultSet live;
    const FtgcrRouter router(gc, live);
    NetworkSim sim(gc, router, live, cfg, recovery_schedule(gc));
    try {
      (void)sim.run();
      FAIL() << "mismatched schedule must be refused";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.section(), "config");
      EXPECT_NE(std::string(e.what()).find("schedule"), std::string::npos);
    }
  }
  remove_generations(path);
}

TEST(Checkpoint, PresetStopRequestHaltsAtTheFirstSerialPoint) {
  const GaussianCube gc(8, 2);
  SimConfig cfg = base_config();
  std::atomic<bool> stop{true};  // as if SIGINT landed before the run
  cfg.stop_requested = &stop;
  FaultSet faults;
  const FtgcrRouter router(gc, faults);
  NetworkSim sim(gc, router, faults, cfg);
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.interrupted_at, 1u)
      << "the stop flag is honored at the serial point entering cycle 1";
}

// ---------------------------------------------------------------------------
// Corruption fuzzing: flip EVERY byte of a small checkpoint in turn; the
// loader must refuse each mutant with a section-naming error (header
// flips fail the magic/version check) and never crash or load silently.
// Runs under ASan in the CI sanitize job like every other test.
// ---------------------------------------------------------------------------

TEST(Checkpoint, EveryByteFlipIsRefusedWithASectionName) {
  const std::string path = tmp_path("fuzz");
  const std::string mutant = tmp_path("fuzz_mutant");
  remove_generations(path);
  remove_generations(mutant);
  // Small but populated checkpoint: retries on so parked entries and
  // recovery counters are present in the file.
  (void)run_scenario(Scenario::kRetryRecovery, true, 1, path, 260);
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GT(good.size(), 100u);
  const std::vector<std::string> sections = {
      "header", "trailer", "provenance", "config", "globals",
      "faults", "packets", "parked",     "fires",  "links",   "metrics"};
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x20;
    write_file(mutant, bad);
    try {
      (void)load_checkpoint(mutant);
      FAIL() << "byte " << i << " flip loaded silently";
    } catch (const CheckpointError& e) {
      const bool known = std::find(sections.begin(), sections.end(),
                                   e.section()) != sections.end();
      EXPECT_TRUE(known) << "byte " << i << " flip produced an error for "
                         << "unknown section '" << e.section() << "'";
    }
    // Any other exception type (or a crash) fails the test run itself.
  }
  // Truncations at every length must be refused too (a torn write that
  // escaped the atomic rename protocol, e.g. a copied partial file).
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, good.size() / 3,
        good.size() / 2, good.size() - 1}) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<long>(len));
    write_file(mutant, bad);
    EXPECT_THROW((void)load_checkpoint(mutant), CheckpointError)
        << "truncation to " << len;
  }
  // Trailing garbage is refused as well — a valid prefix is not a file.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0);
  write_file(mutant, padded);
  EXPECT_THROW((void)load_checkpoint(mutant), CheckpointError);
  remove_generations(path);
  remove_generations(mutant);
}

TEST(Checkpoint, Crc32MatchesTheIeeeReferenceVector) {
  const char* s = "123456789";
  EXPECT_EQ(checkpoint_crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(checkpoint_crc32(s, 0), 0u);
  // Streaming in two chunks equals one shot.
  const std::uint32_t part = checkpoint_crc32(s, 4);
  EXPECT_EQ(checkpoint_crc32(s + 4, 5, part), 0xCBF43926u);
}

TEST(Checkpoint, FaultEventFingerprintIsOrderAndContentSensitive) {
  FaultSchedule a;
  a.fail_node_at(10, 3);
  a.fail_link_at(10, 7, 1);
  FaultSchedule b;  // same events, same cycle, opposite order
  b.fail_link_at(10, 7, 1);
  b.fail_node_at(10, 3);
  FaultSchedule c;
  c.fail_node_at(10, 3);
  c.fail_link_at(10, 7, 2);  // different dim
  const std::uint64_t fa = fault_events_fingerprint(a.events());
  EXPECT_NE(fa, fault_events_fingerprint(b.events()));
  EXPECT_NE(fa, fault_events_fingerprint(c.events()));
  EXPECT_EQ(fa, fault_events_fingerprint(a.events()));
  EXPECT_NE(fa, fault_events_fingerprint({}));
}

TEST(Checkpoint, ProvenanceAndConfigSurviveTheRoundTrip) {
  const std::string path = tmp_path("provenance");
  remove_generations(path);
  (void)run_scenario(Scenario::kScheduled, true, 2, path, 300);
  const SimCheckpoint ck = load_checkpoint(path);
  EXPECT_EQ(ck.provenance.seed, 1234u);
  EXPECT_EQ(ck.provenance.threads, 2u);
  EXPECT_FALSE(ck.provenance.topology.empty());
  EXPECT_FALSE(ck.provenance.router.empty());
  EXPECT_FALSE(ck.provenance.simd.empty());
  EXPECT_FALSE(ck.provenance.build_type.empty());
  EXPECT_EQ(ck.config.seed, 1234u);
  EXPECT_EQ(ck.config.node_count, 256u);
  EXPECT_EQ(ck.resume_cycle, 300u);
  EXPECT_EQ(ck.config.schedule_events, churn_schedule().events().size());
  // The in-flight invariant the loader enforces.
  std::uint64_t queued = 0;
  for (const auto& q : ck.queues) queued += q.size();
  EXPECT_EQ(queued + ck.parked.size(), ck.in_flight);
  remove_generations(path);
}

TEST(CheckpointDeathTest, CrashInjectionExitsWith137) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = tmp_path("crash");
  remove_generations(path);
  EXPECT_EXIT(
      {
        const GaussianCube gc(8, 2);
        SimConfig cfg = base_config();
        cfg.threads = 1;
        cfg.checkpoint_every = 100;
        cfg.checkpoint_path = path;
        cfg.crash_at_cycle = 250;
        FaultSet faults;
        const FtgcrRouter router(gc, faults);
        NetworkSim sim(gc, router, faults, cfg);
        (void)sim.run();
      },
      testing::ExitedWithCode(137), "");
  // The crash landed AFTER the cycle-200 checkpoint was made durable.
  const SimCheckpoint ck = load_checkpoint(path);
  EXPECT_EQ(ck.resume_cycle, 200u);
  remove_generations(path);
}

}  // namespace
}  // namespace gcube
