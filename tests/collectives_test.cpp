// Collective-communication tests: spanning trees, broadcast schedules,
// multicast route unions (the primitives the paper's introduction cites).
#include <gtest/gtest.h>

#include "fault/fault_set.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "routing/collectives.hpp"
#include "routing/ffgcr.hpp"
#include "routing/tree_routing.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

TEST(SpanningTree, CoversConnectedTopology) {
  const GaussianCube gc(8, 4);
  const auto tree = build_bfs_spanning_tree(gc, 5);
  EXPECT_EQ(tree.reached, gc.node_count());
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    ASSERT_NE(tree.parent[u], SpanningTree::kNoParent);
    if (u != tree.root) {
      // Parent link is a real link.
      const NodeId diff = u ^ tree.parent[u];
      ASSERT_EQ(popcount(diff), 1u);
      ASSERT_TRUE(gc.has_link(u, lsb_index(diff)));
      ASSERT_EQ(tree.depth[u], tree.depth[tree.parent[u]] + 1);
    }
  }
}

TEST(SpanningTree, DepthsAreBfsDistances) {
  const GaussianCube gc(7, 2);
  const Graph g(gc);
  const auto tree = build_bfs_spanning_tree(gc, 0);
  const auto dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    EXPECT_EQ(tree.depth[u], dist[u]);
  }
  EXPECT_EQ(tree.max_depth,
            *std::max_element(dist.begin(), dist.end()));
}

TEST(SpanningTree, ChildCountsAddUp) {
  const GaussianCube gc(7, 2);
  const auto tree = build_bfs_spanning_tree(gc, 3);
  std::uint64_t total_children = 0;
  for (const auto& kids : tree.children) total_children += kids.size();
  EXPECT_EQ(total_children, tree.reached - 1);
}

TEST(SpanningTree, FaultAwareVariantAvoidsFaults) {
  const GaussianCube gc(7, 2);
  FaultSet faults;
  faults.fail_node(9);
  faults.fail_link(0, 2);
  const auto tree = build_bfs_spanning_tree(gc, 0, &faults);
  EXPECT_EQ(tree.parent[9], SpanningTree::kNoParent);
  EXPECT_EQ(tree.reached, gc.node_count() - 1);
  // The faulty link is not a tree edge in either direction.
  EXPECT_NE(tree.parent[0b0000100], 0u);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    if (u == tree.root || tree.parent[u] == SpanningTree::kNoParent) continue;
    ASSERT_TRUE(faults.link_usable(u, lsb_index(u ^ tree.parent[u])));
  }
}

TEST(SpanningTree, RejectsFaultyRoot) {
  const GaussianCube gc(6, 2);
  FaultSet faults;
  faults.fail_node(1);
  EXPECT_THROW((void)build_bfs_spanning_tree(gc, 1, &faults),
               std::invalid_argument);
}

TEST(Broadcast, HypercubeBinomialTreeIsOptimal) {
  // BFS from 0 with ascending neighbor order yields the binomial tree;
  // single-port broadcast on H_n then takes exactly n rounds, the known
  // optimum.
  for (const Dim n : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const Hypercube h(n);
    const auto tree = build_bfs_spanning_tree(h, 0);
    EXPECT_EQ(single_port_broadcast_rounds(tree), n) << "n=" << n;
    EXPECT_EQ(all_port_broadcast_rounds(tree), n) << "n=" << n;
  }
}

TEST(Broadcast, SinglePortAtLeastAllPort) {
  Xoshiro256 rng(3);
  for (const std::uint64_t m : {1u, 2u, 4u}) {
    const GaussianCube gc(8, m);
    for (int i = 0; i < 5; ++i) {
      const auto root = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto tree = build_bfs_spanning_tree(gc, root);
      const auto single = single_port_broadcast_rounds(tree);
      const auto all = all_port_broadcast_rounds(tree);
      EXPECT_GE(single, all);
      // log2(N) is a hard lower bound for single-port broadcast.
      EXPECT_GE(single, 8u);
      EXPECT_LT(single, gc.node_count());
    }
  }
}

TEST(Broadcast, RoundsGrowWithDilution) {
  // Sparser networks broadcast slower (deeper trees).
  const auto rounds_for = [](std::uint64_t m) {
    const GaussianCube gc(10, m);
    return all_port_broadcast_rounds(build_bfs_spanning_tree(gc, 0));
  };
  EXPECT_LE(rounds_for(1), rounds_for(2));
  EXPECT_LE(rounds_for(2), rounds_for(4));
}

TEST(Broadcast, TrivialSingleNodeSubtree) {
  SpanningTree tree;
  tree.root = 0;
  tree.parent = {0};
  tree.children = {{}};
  tree.depth = {0};
  tree.reached = 1;
  EXPECT_EQ(single_port_broadcast_rounds(tree), 0u);
  EXPECT_EQ(all_port_broadcast_rounds(tree), 0u);
}

TEST(Multicast, SharesLinksAcrossDestinations) {
  const GaussianCube gc(8, 2);
  const FfgcrRouter router(gc);
  // Destinations in one far GEEC: routes share the long common prefix.
  const std::vector<NodeId> dests{0b11110000, 0b11010000, 0b10110000};
  const auto result = multicast_tree(router, 0, dests);
  EXPECT_GT(result.links_used, 0u);
  EXPECT_LE(result.links_used, result.total_route_length);
  EXPECT_LT(result.links_used, result.total_route_length)
      << "overlapping routes must share at least one link";
  // Sanity against individual route lengths.
  std::size_t max_len = 0;
  for (const NodeId d : dests) {
    max_len = std::max(max_len, router.plan(0, d).route->length());
  }
  EXPECT_EQ(result.max_route_length, max_len);
}

TEST(Multicast, SingleDestinationEqualsUnicast) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const auto result = multicast_tree(router, 3, {100});
  const auto unicast = router.plan(3, 100);
  EXPECT_EQ(result.links_used, unicast.route->length());
  EXPECT_EQ(result.total_route_length, unicast.route->length());
}

TEST(Multicast, EmptyDestinationSet) {
  const GaussianCube gc(6, 2);
  const FfgcrRouter router(gc);
  const auto result = multicast_tree(router, 0, {});
  EXPECT_EQ(result.links_used, 0u);
  EXPECT_EQ(result.max_route_length, 0u);
}

}  // namespace
}  // namespace gcube
