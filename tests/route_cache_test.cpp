// Route-cache coherence tests (simulator hot-path support).
//
// The routers memoize plans and per-hop decisions in sharded version-
// stamped caches (util/flat_cache.hpp) keyed on FaultSet::version(). The
// property asserted here: a router that has been serving — and caching —
// queries for a while is observationally identical to a freshly
// constructed router over the same topology and fault set, before and
// after arbitrary FaultSet mutations. Any stale entry surviving a version
// bump, or any cache-key collision, breaks this.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_set.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "routing/route.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

std::vector<std::pair<NodeId, NodeId>> sample_pairs(const GaussianCube& gc,
                                                    const FaultSet& faults,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < count) {
    const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
    if (s == d || faults.node_faulty(s) || faults.node_faulty(d)) continue;
    pairs.emplace_back(s, d);
  }
  return pairs;
}

/// Every query against `warm` (whose caches may hold entries from any
/// earlier fault-set version) must match `fresh`, a router built after the
/// last mutation and so computing everything from scratch.
template <typename RouterT>
void expect_matches_fresh(const GaussianCube& gc, const RouterT& warm,
                          const FaultSet& faults, std::uint64_t seed) {
  const RouterT fresh = [&] {
    if constexpr (std::is_same_v<RouterT, FfgcrRouter>) {
      return FfgcrRouter(gc);
    } else {
      return RouterT(gc, faults);
    }
  }();
  for (const auto& [s, d] : sample_pairs(gc, faults, 200, seed)) {
    const RoutingResult warm_plan = warm.plan(s, d);
    const RoutingResult fresh_plan = fresh.plan(s, d);
    ASSERT_EQ(warm_plan.delivered(), fresh_plan.delivered())
        << gc.name() << " s=" << s << " d=" << d;
    if (warm_plan.delivered()) {
      EXPECT_EQ(warm_plan.route->hops(), fresh_plan.route->hops())
          << gc.name() << " s=" << s << " d=" << d;
    }
    // plan_shared must agree with plan (it is the cache the simulator
    // actually consumes), and repeated calls must yield the same object,
    // not just equal hop lists — that is what makes injection a refcount
    // bump.
    const std::shared_ptr<const Route> shared = warm.plan_shared(s, d);
    ASSERT_EQ(shared != nullptr, warm_plan.delivered());
    if (shared != nullptr) {
      EXPECT_EQ(shared->hops(), warm_plan.route->hops());
      EXPECT_EQ(shared.get(), warm.plan_shared(s, d).get());
    }
    const std::optional<Dim> warm_hop = warm.next_hop(s, d);
    const std::optional<Dim> fresh_hop = fresh.next_hop(s, d);
    EXPECT_EQ(warm_hop, fresh_hop) << gc.name() << " s=" << s << " d=" << d;
  }
}

TEST(RouteCacheTest, FfgcrCachedQueriesMatchFreshRouter) {
  const GaussianCube gc(9, 2);
  const FaultSet faults;  // FFGCR is fault-oblivious by contract
  const FfgcrRouter warm(gc);
  expect_matches_fresh(gc, warm, faults, 101);
  // Second pass: now every query hits the warm caches.
  expect_matches_fresh(gc, warm, faults, 101);
}

TEST(RouteCacheTest, FtgcrCachedQueriesMatchFreshAcrossMutations) {
  const GaussianCube gc(9, 2);
  FaultSet faults;
  const FtgcrRouter warm(gc, faults);

  // Phase 0: fault-free, populate the caches (two passes so the second is
  // served from cache).
  expect_matches_fresh(gc, warm, faults, 202);
  expect_matches_fresh(gc, warm, faults, 202);

  // Phase 1..n: mutate the live fault set the warm router observes; every
  // entry cached above is now stale and must not be served.
  const std::vector<std::pair<NodeId, Dim>> mutations = {
      {12, 0}, {40, 3}, {257, 1}, {130, 5}};
  std::uint64_t last_version = faults.version();
  for (std::size_t step = 0; step < mutations.size(); ++step) {
    const auto [node, dim] = mutations[step];
    if (step % 2 == 0) {
      faults.fail_node(node);
    } else {
      faults.fail_link(node, dim);
    }
    ASSERT_GT(faults.version(), last_version)
        << "mutation must bump the cache-invalidation version";
    last_version = faults.version();
    expect_matches_fresh(gc, warm, faults, 404 + step);
    // Re-query with the seed of phase 0: these exact keys sit in the cache
    // under an old version stamp.
    expect_matches_fresh(gc, warm, faults, 202);
  }
}

TEST(RouteCacheTest, CountersTallyHitsMissesAndStale) {
  const GaussianCube gc(8, 2);
  FaultSet faults;
  // Pre-seed one marked link: with a fault-free set next_hop would be
  // served by the table fabric without touching any cache (asserted in
  // FaultFreeFtgcrNextHopBypassesTheCaches below); the counter behavior
  // under test here is the cache machinery's.
  faults.fail_link(5, 0);
  const FtgcrRouter router(gc, faults);
  EXPECT_EQ(router.cache_stats().plan.lookups(), 0u);
  EXPECT_EQ(router.cache_stats().hop.lookups(), 0u);

  (void)router.plan_shared(3, 200);  // cold: one plan miss
  const RouterCacheStats cold = router.cache_stats();
  EXPECT_EQ(cold.plan.misses, 1u);
  EXPECT_EQ(cold.plan.hits, 0u);
  EXPECT_EQ(cold.plan.stale, 0u);

  (void)router.plan_shared(3, 200);  // warm: one plan hit
  const RouterCacheStats warm = router.cache_stats();
  EXPECT_EQ(warm.plan.hits, 1u);
  EXPECT_EQ(warm.plan.misses, 1u);

  // A cold next_hop misses the hop cache, then warms itself through
  // plan_shared — which hits the route just cached above.
  (void)router.next_hop(3, 200);
  const RouterCacheStats hop_cold = router.cache_stats();
  EXPECT_EQ(hop_cold.hop.misses, 1u);
  EXPECT_EQ(hop_cold.hop.hits, 0u);
  EXPECT_EQ(hop_cold.plan.hits, 2u);
  (void)router.next_hop(3, 200);
  EXPECT_EQ(router.cache_stats().hop.hits, 1u);

  // A fault-set mutation strands every cached entry behind an old version
  // stamp: the next lookups find them and count them stale, not hit.
  faults.fail_node(70);
  (void)router.plan_shared(3, 200);
  (void)router.next_hop(3, 200);
  const RouterCacheStats bumped = router.cache_stats();
  EXPECT_EQ(bumped.plan.stale, 1u);
  EXPECT_EQ(bumped.hop.stale, 1u);
  EXPECT_EQ(bumped.plan.hits, 3u);  // next_hop's refill hits the refresh

  // Snapshot deltas scope counters to a window.
  const RouterCacheStats window = bumped - warm;
  EXPECT_EQ(window.plan.stale, 1u);
  EXPECT_EQ(window.plan.misses, 0u);
  EXPECT_EQ(window.hop.lookups(), 3u);  // cold miss, warm hit, stale
}

TEST(RouteCacheTest, FfgcrCountersNeverGoStale) {
  const GaussianCube gc(8, 2);
  const FfgcrRouter router(gc);
  for (int pass = 0; pass < 3; ++pass) {
    (void)router.plan_shared(1, 77);
    (void)router.next_hop(1, 77);
  }
  const RouterCacheStats stats = router.cache_stats();
  EXPECT_EQ(stats.plan.misses, 1u);
  // 2 hits: passes 2 and 3 of plan_shared. next_hop is answered by the
  // table fabric on this shape and never reaches either cache.
  EXPECT_EQ(stats.plan.hits, 2u);
  EXPECT_EQ(stats.plan.stale, 0u);  // fault-blind: no version to outdate
  EXPECT_EQ(stats.hop.lookups(), 0u);
}

TEST(RouteCacheTest, FaultFreeFtgcrNextHopBypassesTheCaches) {
  // The simulator's fault-free fast path: with an empty fault set FTGCR's
  // next_hop is a pure table lookup — no cache traffic, no version checks.
  const GaussianCube gc(8, 2);
  const FaultSet faults;
  const FtgcrRouter router(gc, faults);
  for (const auto& [s, d] : sample_pairs(gc, faults, 50, 606)) {
    ASSERT_TRUE(router.next_hop(s, d).has_value());
  }
  EXPECT_EQ(router.cache_stats().plan.lookups(), 0u);
  EXPECT_EQ(router.cache_stats().hop.lookups(), 0u);
}

TEST(RouteCacheTest, FtgcrRepeatedQueriesAreStableWithinVersion) {
  const GaussianCube gc(10, 4);
  FaultSet faults;
  faults.fail_node(77);
  faults.fail_link(300, 2);
  const FtgcrRouter router(gc, faults);
  for (const auto& [s, d] : sample_pairs(gc, faults, 100, 505)) {
    const std::shared_ptr<const Route> first = router.plan_shared(s, d);
    const std::optional<Dim> hop = router.next_hop(s, d);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(router.plan_shared(s, d).get(), first.get());
      EXPECT_EQ(router.next_hop(s, d), hop);
    }
  }
}

}  // namespace
}  // namespace gcube
