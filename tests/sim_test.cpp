// Simulator tests: determinism, conservation, queueing sanity, traffic,
// metrics arithmetic, dynamic-fault mode, and the parallel sweep helper.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "fault/fault_set.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/traffic.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/simd.hpp"

namespace gcube {
namespace {

SimConfig quick_config() {
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.seed = 99;
  return cfg;
}

TEST(NetworkSim, DeterministicForFixedSeed) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  NetworkSim sim1(gc, router, none, quick_config());
  NetworkSim sim2(gc, router, none, quick_config());
  const SimMetrics a = sim1.run();
  const SimMetrics b = sim2.run();
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.total_hops, b.total_hops);
}

TEST(NetworkSim, DifferentSeedsDiffer) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg = quick_config();
  NetworkSim sim1(gc, router, none, cfg);
  cfg.seed = 100;
  NetworkSim sim2(gc, router, none, cfg);
  EXPECT_NE(sim1.run().total_latency, sim2.run().total_latency);
}

TEST(NetworkSim, DeliversTrafficAtLowLoad) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  const SimMetrics m = NetworkSim(gc, router, none, quick_config()).run();
  EXPECT_GT(m.generated, 0u);
  EXPECT_GT(m.delivered, 0u);
  EXPECT_EQ(m.dropped, 0u);
  // At a 5% injection rate delivery should keep up with generation.
  EXPECT_GT(static_cast<double>(m.delivered),
            0.8 * static_cast<double>(m.generated));
}

TEST(NetworkSim, CarryoverDeliveriesNeverInflateTheDeliveryRatio) {
  // Regression: packets generated in the last warmup cycles and completed
  // inside the window used to be counted in `delivered`, so a short window
  // behind a congested warmup could report delivered > generated and
  // delivery_ratio() > 1. They now land in carryover_delivered.
  const GaussianCube gc(8, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg;
  cfg.injection_rate = 0.25;
  cfg.warmup_cycles = 40;
  cfg.measure_cycles = 60;
  cfg.seed = 7;
  for (const bool modern : {true, false}) {
    cfg.fabric = modern;
    cfg.active_set = modern;
    const SimMetrics m = NetworkSim(gc, router, none, cfg).run();
    ASSERT_GT(m.generated, 0u);
    EXPECT_GT(m.carryover_delivered, 0u)
        << "warmup packets should straddle into this window";
    EXPECT_LE(m.delivered, m.generated);
    EXPECT_LE(m.delivery_ratio(), 1.0);
  }
}

TEST(NetworkSim, FabricSteeringMatchesPlannedRoutingBitForBitFaultFree) {
  // With no faults every node is overlay-clean, so a steered packet takes
  // exactly the table hops — which are byte-identical to the plan the
  // legacy path would have attached at injection. Holding the injection
  // realization fixed (active_set off on both sides), the two execution
  // modes must therefore produce identical metrics, not just similar ones.
  const GaussianCube gc(8, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg = quick_config();
  cfg.active_set = false;
  cfg.fabric = true;
  const SimMetrics steered = NetworkSim(gc, router, none, cfg).run();
  cfg.fabric = false;
  const SimMetrics planned = NetworkSim(gc, router, none, cfg).run();
  ASSERT_GT(steered.delivered, 0u);
  EXPECT_TRUE(steered.deterministic_equals(planned));
}

TEST(NetworkSim, LatencyAtLeastHopsPlusOne) {
  // Each hop takes at least one cycle and delivery happens on dequeue at
  // the destination, so latency >= hops per packet; averages must agree.
  const GaussianCube gc(6, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  const SimMetrics m = NetworkSim(gc, router, none, quick_config()).run();
  ASSERT_GT(m.delivered, 0u);
  EXPECT_GE(m.avg_latency(), m.avg_hops());
}

TEST(NetworkSim, CongestionRaisesLatency) {
  const GaussianCube gc(6, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig low = quick_config();
  low.injection_rate = 0.01;
  SimConfig high = quick_config();
  high.injection_rate = 0.30;
  const double lat_low = NetworkSim(gc, router, none, low).run().avg_latency();
  const double lat_high =
      NetworkSim(gc, router, none, high).run().avg_latency();
  EXPECT_GT(lat_high, lat_low);
}

TEST(NetworkSim, FaultyNodesNeverTouchTraffic) {
  const GaussianCube gc(6, 1);
  FaultSet faults;
  faults.fail_node(7);
  const FtgcrRouter router = FtgcrRouter(gc, faults);
  const SimMetrics m = NetworkSim(gc, router, faults, quick_config()).run();
  EXPECT_GT(m.delivered, 0u);
  EXPECT_EQ(m.dropped, 0u);
}

TEST(NetworkSim, HigherServiceRateNeverHurtsLatency) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig slow = quick_config();
  slow.injection_rate = 0.15;
  slow.service_rate = 1;
  SimConfig fast = slow;
  fast.service_rate = 8;
  const double lat_slow =
      NetworkSim(gc, router, none, slow).run().avg_latency();
  const double lat_fast =
      NetworkSim(gc, router, none, fast).run().avg_latency();
  EXPECT_LE(lat_fast, lat_slow)
      << "eager readership (higher service rate) must not slow delivery";
}

TEST(NetworkSim, PeakInFlightGrowsWithLoad) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig low = quick_config();
  low.injection_rate = 0.01;
  SimConfig high = quick_config();
  high.injection_rate = 0.20;
  const auto m_low = NetworkSim(gc, router, none, low).run();
  const auto m_high = NetworkSim(gc, router, none, high).run();
  EXPECT_GT(m_high.peak_in_flight, m_low.peak_in_flight);
}

TEST(NetworkSim, PeakInFlightIsScopedToMeasurementWindow) {
  // Regression: peak_in_flight used to update during warmup too, so a
  // congested warmup polluted a measured statistic. Arrange a run whose
  // in-flight peak falls squarely in warmup — half the network dies on the
  // last warmup cycle — and check the measured peak is lower than what a
  // run measuring from cycle 0 (same seed, same counter-RNG draw streams,
  // same schedule) sees over the full window.
  const GaussianCube gc(8, 2);
  FaultSet live_a;
  const FtgcrRouter router_a(gc, live_a);
  FaultSet live_b;
  const FtgcrRouter router_b(gc, live_b);
  FaultSchedule mass_kill;
  for (NodeId u = 0; u < gc.node_count(); u += 2) {
    mass_kill.fail_node_at(99, u);
  }
  SimConfig gated;
  gated.injection_rate = 0.10;
  gated.seed = 99;
  gated.warmup_cycles = 100;
  gated.measure_cycles = 50;
  SimConfig full = gated;
  full.warmup_cycles = 0;
  full.measure_cycles = 150;
  const SimMetrics m_gated =
      NetworkSim(gc, router_a, live_a, gated, mass_kill).run();
  const SimMetrics m_full =
      NetworkSim(gc, router_b, live_b, full, mass_kill).run();
  EXPECT_GT(m_gated.peak_in_flight, 0u);
  EXPECT_LT(m_gated.peak_in_flight, m_full.peak_in_flight)
      << "warmup congestion leaked into the measured peak";
}

TEST(NetworkSim, ServiceOpsAccountForHops) {
  // Every delivered packet is handled hops+1 times (each forward plus the
  // final delivery), so over a long window service_ops stays close to
  // total_hops + delivered (edges: packets spanning the window boundary).
  const GaussianCube gc(6, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  const auto m = NetworkSim(gc, router, none, quick_config()).run();
  ASSERT_GT(m.delivered, 0u);
  const double expected =
      static_cast<double>(m.total_hops + m.delivered);
  EXPECT_NEAR(static_cast<double>(m.service_ops), expected,
              0.1 * expected);
}

TEST(NetworkSim, UnboundedBuffersNeverDeadlock) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.30;  // heavy load
  const auto m = NetworkSim(gc, router, none, cfg).run();
  EXPECT_FALSE(m.deadlocked);
  EXPECT_EQ(m.stalled_cycles, 0u);
  EXPECT_EQ(m.injections_blocked, 0u);
}

TEST(NetworkSim, GenerousBuffersAtLowLoadBehaveLikeUnbounded) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig bounded = quick_config();
  bounded.injection_rate = 0.02;
  bounded.buffer_limit = 32;
  const auto m = NetworkSim(gc, router, none, bounded).run();
  EXPECT_FALSE(m.deadlocked);
  EXPECT_GT(m.delivered, 0u);
  SimConfig unbounded = bounded;
  unbounded.buffer_limit = 0;
  const auto u = NetworkSim(gc, router, none, unbounded).run();
  EXPECT_EQ(m.delivered, u.delivered)
      << "buffers never filled, so results must be identical";
  EXPECT_EQ(m.total_latency, u.total_latency);
}

TEST(NetworkSim, TinyBuffersUnderSaturationDeadlock) {
  // Store-and-forward with undifferentiated single-slot FIFOs deadlocks
  // under saturation regardless of the routing function (see
  // bench/abl_finite_buffers); the detector must notice and say so.
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.5;
  cfg.buffer_limit = 1;
  cfg.measure_cycles = 2000;
  const auto m = NetworkSim(gc, router, none, cfg).run();
  EXPECT_TRUE(m.deadlocked);
  EXPECT_GT(m.injections_blocked, 0u);
}

// --- Dynamic-fault mode -------------------------------------------------

void expect_same_metrics(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.service_ops, b.service_ops);
  EXPECT_EQ(a.peak_in_flight, b.peak_in_flight);
  EXPECT_EQ(a.injections_blocked, b.injections_blocked);
  EXPECT_EQ(a.stalled_cycles, b.stalled_cycles);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.latency_histogram.bucket(i), b.latency_histogram.bucket(i));
  }
  EXPECT_TRUE(a.deterministic_equals(b));
}

TEST(DynamicFaults, EmptyScheduleReproducesStaticModeBitForBit) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet static_faults;
  const SimMetrics baseline =
      NetworkSim(gc, router, static_faults, quick_config()).run();
  FaultSet live;
  const FaultSchedule empty;
  const SimMetrics dynamic =
      NetworkSim(gc, router, live, quick_config(), empty).run();
  expect_same_metrics(baseline, dynamic);
  EXPECT_EQ(dynamic.fault_events, 0u);
  EXPECT_EQ(dynamic.reroutes, 0u);
  EXPECT_EQ(dynamic.dropped_en_route(), 0u);
  EXPECT_EQ(dynamic.orphaned_by_node_fault, 0u);
}

TEST(DynamicFaults, EmptyScheduleMatchesStaticUnderStaticFaults) {
  // Same equivalence with a preexisting static fault pattern in place.
  const GaussianCube gc(6, 2);
  FaultSet faults;
  faults.fail_node(9);
  const FtgcrRouter router(gc, faults);
  const SimMetrics baseline =
      NetworkSim(gc, router, faults, quick_config()).run();
  const FaultSchedule empty;
  const SimMetrics dynamic =
      NetworkSim(gc, router, faults, quick_config(), empty).run();
  expect_same_metrics(baseline, dynamic);
}

TEST(DynamicFaults, MidRunNodeFaultOrphansAndReroutes) {
  const GaussianCube gc(7, 1);  // full hypercube: every detour available
  FaultSet faults;
  const FtgcrRouter router(gc, faults);
  FaultSchedule schedule;
  // Several node deaths spread across the measurement window; heavy-ish
  // load so each death catches packets in flight.
  schedule.fail_node_at(80, 3);
  schedule.fail_node_at(150, 77);
  schedule.fail_node_at(220, 101);
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.10;
  const SimMetrics m = NetworkSim(gc, router, faults, cfg, schedule).run();
  EXPECT_EQ(m.fault_events, 3u);
  EXPECT_EQ(faults.node_fault_count(), 3u) << "schedule mutates the live set";
  EXPECT_GT(m.delivered, 0u);
  EXPECT_GT(m.reroutes, 0u) << "in-flight packets must notice dead links";
}

TEST(DynamicFaults, DeliveredPathsAreFaultFreeAtTraversalTime) {
  // The simulator GCUBE_REQUIREs that every delivered packet's recorded
  // path replays from src to dst, and refuses to traverse unusable links;
  // a run with many mid-flight faults exercising both is the regression.
  const GaussianCube gc(7, 2);
  FaultSet faults;
  const FtgcrRouter router(gc, faults);
  const FaultSchedule schedule =
      FaultSchedule::random_node_faults(gc.node_count(), 0.01, 350, 21, 12);
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.08;
  const SimMetrics m = NetworkSim(gc, router, faults, cfg, schedule).run();
  EXPECT_GT(m.delivered, 0u);
  EXPECT_GT(m.fault_events, 0u);
}

TEST(NetworkSim, AuditedReplayHoldsWhenSteeredPacketsReroute) {
  // Only the 1-in-64 audited sample records its traversed path in a
  // HopTail; every other packet keeps a bare hop counter. The delivery
  // replay (a GCUBE_REQUIRE inside the simulator) must therefore still
  // see a complete src->dst path for every audited delivery even when
  // mid-run faults force steered packets off their fault-free table hops
  // — the reroutes assertion pins that the tails actually diverged.
  const GaussianCube gc(7, 2);
  FaultSet faults;
  const FtgcrRouter router(gc, faults);
  const FaultSchedule schedule =
      FaultSchedule::random_node_faults(gc.node_count(), 0.01, 350, 21, 12);
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.08;
  const SimMetrics m = NetworkSim(gc, router, faults, cfg, schedule).run();
  EXPECT_GT(m.delivered, 500u) << "audited samples must reach delivery";
  EXPECT_GT(m.reroutes, 0u) << "faults must deflect steered packets";
}

TEST(NetworkSim, AuditedReplayRidesEverySimdLevel) {
  // The delivery replay (a GCUBE_REQUIRE on every audited packet's
  // recorded path) must hold when the vector classify and gathered
  // fault-free-hop lookups drive the advance — at every dispatch level
  // the CPU supports, not just the default. Each level runs the same
  // rerouting workload as the replay test above and must reproduce the
  // scalar metrics bit for bit.
  const GaussianCube gc(7, 2);
  const FaultSchedule schedule =
      FaultSchedule::random_node_faults(gc.node_count(), 0.01, 350, 21, 12);
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.08;
  const SimdLevel entry = simd_level();
  set_simd_level(SimdLevel::kScalar);
  FaultSet faults_ref;
  const FtgcrRouter router_ref(gc, faults_ref);
  const SimMetrics reference =
      NetworkSim(gc, router_ref, faults_ref, cfg, schedule).run();
  EXPECT_GT(reference.delivered, 500u) << "audited samples must deliver";
  EXPECT_GT(reference.reroutes, 0u) << "faults must deflect packets";
  for (const SimdLevel level : {SimdLevel::kSse, SimdLevel::kAvx2}) {
    if (level > detected_simd_level()) continue;
    set_simd_level(level);
    FaultSet faults;
    const FtgcrRouter router(gc, faults);
    const SimMetrics m = NetworkSim(gc, router, faults, cfg, schedule).run();
    EXPECT_TRUE(m.deterministic_equals(reference))
        << "simd=" << to_string(level);
  }
  set_simd_level(entry);
}

TEST(NetworkSim, AuditSamplingAndBatchingLeaveMetricsUnchanged) {
  // total_hops is fed by the per-packet hop counter, not the audit tail,
  // and the batched advance only reorders reads — so toggling batching
  // must reproduce the whole metrics block bit-for-bit, total_hops
  // included, under the same rerouting workload as the replay test.
  const GaussianCube gc(7, 2);
  FaultSet faults_a;
  FaultSet faults_b;
  const FtgcrRouter router_a(gc, faults_a);
  const FtgcrRouter router_b(gc, faults_b);
  const FaultSchedule schedule =
      FaultSchedule::random_node_faults(gc.node_count(), 0.01, 350, 21, 12);
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.08;
  const SimMetrics batched =
      NetworkSim(gc, router_a, faults_a, cfg, schedule).run();
  cfg.batch = false;
  const SimMetrics scalar =
      NetworkSim(gc, router_b, faults_b, cfg, schedule).run();
  EXPECT_EQ(batched.total_hops, scalar.total_hops);
  EXPECT_TRUE(batched.deterministic_equals(scalar));
}

TEST(DynamicFaults, FtgcrDegradesMoreGracefullyThanEcube) {
  // The tentpole acceptance claim, in miniature: same mid-run fault
  // arrivals, same traffic seed; FTGCR re-routes around discovered faults
  // while fault-blind e-cube drops every packet whose path died.
  GcSimSpec spec;
  spec.n = 7;
  spec.modulus = 1;
  spec.fault_rate = 0.01;
  spec.fault_seed = 17;
  spec.sim = quick_config();
  spec.sim.injection_rate = 0.05;
  spec.router = SimRouterKind::kFtgcr;
  const GcSimOutcome ft = run_gc_simulation(spec);
  spec.router = SimRouterKind::kEcube;
  const GcSimOutcome ec = run_gc_simulation(spec);
  ASSERT_EQ(ft.fault_events_scheduled, ec.fault_events_scheduled);
  EXPECT_GT(ft.metrics.fault_events, 0u);
  EXPECT_GT(ft.metrics.delivery_ratio(), ec.metrics.delivery_ratio());
  EXPECT_LT(ft.metrics.dropped_en_route(), ec.metrics.dropped_en_route());
}

TEST(DynamicFaults, RejectsOutOfRangeEvents) {
  const GaussianCube gc(6, 2);
  FaultSet faults;
  const FtgcrRouter router(gc, faults);
  FaultSchedule bad_node;
  bad_node.fail_node_at(10, 1u << 10);
  EXPECT_THROW(NetworkSim(gc, router, faults, quick_config(), bad_node),
               std::invalid_argument);
  FaultSchedule bad_dim;
  bad_dim.fail_link_at(10, 1, 9);
  EXPECT_THROW(NetworkSim(gc, router, faults, quick_config(), bad_dim),
               std::invalid_argument);
}

TEST(Metrics, OfferedLoadConsistentAcrossBufferLimits) {
  // `generated` counts offered load — including buffer-blocked injections
  // — so the delivery-ratio denominator is the same in finite- and
  // infinite-buffer runs with the same seed.
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  // Load high enough that transient bursts fill a 4-slot buffer and block
  // some injections, but low enough that the run never deadlocks (a
  // deadlocked run ends early and covers a shorter window).
  SimConfig cfg = quick_config();
  cfg.injection_rate = 0.12;
  SimConfig tiny = cfg;
  tiny.buffer_limit = 4;
  const SimMetrics unbounded = NetworkSim(gc, router, none, cfg).run();
  const SimMetrics bounded = NetworkSim(gc, router, none, tiny).run();
  ASSERT_FALSE(bounded.deadlocked);
  EXPECT_GT(bounded.injections_blocked, 0u);
  EXPECT_EQ(bounded.generated, unbounded.generated)
      << "offered load must not depend on buffer_limit";
  EXPECT_EQ(bounded.accepted(),
            bounded.generated - bounded.injections_blocked);
  EXPECT_EQ(unbounded.accepted(), unbounded.generated);
}

TEST(LatencyHistogram, BucketsAndPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  for (Cycle v : {0u, 1u, 1u, 3u, 3u, 3u, 3u, 100u, 100u, 1000u}) {
    h.record(v);
  }
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket(0), 3u);   // 0, 1, 1
  EXPECT_EQ(h.bucket(1), 4u);   // the 3s: [2, 4)
  EXPECT_EQ(h.bucket(6), 2u);   // 100: [64, 128)
  EXPECT_EQ(h.bucket(9), 1u);   // 1000: [512, 1024)
  // p50 falls in the [2,4) bucket; upper edge 3.
  EXPECT_EQ(h.percentile(0.5), 3u);
  // p100 covers the 1000-cycle packet.
  EXPECT_EQ(h.percentile(1.0), 1023u);
  // Percentiles are monotone in q.
  EXPECT_LE(h.percentile(0.1), h.percentile(0.9));
}

TEST(LatencyHistogram, PercentileEdgesAndClamping) {
  // All mass far from bucket 0: p0 must report the first *nonempty*
  // bucket's edge, not bucket 0's, and p100 the last nonempty bucket's.
  LatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.record(100);  // bucket 6: [64, 128)
  h.record(1000);                             // bucket 9: [512, 1024)
  EXPECT_EQ(h.percentile(0.0), 127u);
  EXPECT_EQ(h.percentile(0.5), 127u);
  EXPECT_EQ(h.percentile(1.0), 1023u);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
  // q just under a bucket boundary must not round up past it: 5 of 6
  // deliveries are in bucket 6, so p83 (rank ceil(0.83*6) = 5) stays there.
  EXPECT_EQ(h.percentile(0.83), 127u);
}

TEST(LatencyHistogram, SinglePacketAllPercentilesAgree) {
  LatencyHistogram h;
  h.record(7);  // bucket 2: [4, 8)
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(0.5), 7u);
  EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(LatencyHistogram, SimulationTotalsMatchDeliveries) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  const SimMetrics m = NetworkSim(gc, router, none, quick_config()).run();
  EXPECT_EQ(m.latency_histogram.total(), m.delivered);
  // Mean must lie within [p0-ish, p100] edges.
  EXPECT_LE(m.avg_latency(),
            static_cast<double>(m.latency_histogram.percentile(1.0)));
}

TEST(Metrics, Arithmetic) {
  SimMetrics m;
  m.measured_cycles = 100;
  m.delivered = 50;
  m.total_latency = 500;
  m.total_hops = 200;
  EXPECT_DOUBLE_EQ(m.avg_latency(), 10.0);
  EXPECT_DOUBLE_EQ(m.avg_hops(), 4.0);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.5);
  EXPECT_DOUBLE_EQ(m.log2_throughput(), -1.0);
}

TEST(Metrics, EmptySafe) {
  const SimMetrics m;
  EXPECT_DOUBLE_EQ(m.avg_latency(), 0.0);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);
  EXPECT_DOUBLE_EQ(m.log2_throughput(), 0.0);
}

TEST(Traffic, DestinationsAvoidFaultsAndSelf) {
  FaultSet faults;
  faults.fail_node(3);
  const UniformTraffic traffic(16, 0.5, faults, 1);
  CounterRng rng(counter_key(1, 0, 0));
  for (int i = 0; i < 500; ++i) {
    const NodeId d = traffic.pick_destination(5, rng);
    EXPECT_NE(d, 5u);
    EXPECT_NE(d, 3u);
    EXPECT_LT(d, 16u);
  }
  EXPECT_FALSE(traffic.eligible(3));
  EXPECT_TRUE(traffic.eligible(5));
}

TEST(Traffic, RejectsBadParameters) {
  const FaultSet none;
  EXPECT_THROW(UniformTraffic(1, 0.5, none, 1), std::invalid_argument);
  EXPECT_THROW(UniformTraffic(16, 1.5, none, 1), std::invalid_argument);
}

TEST(Runner, FaultFreeCellRuns) {
  GcSimSpec spec;
  spec.n = 6;
  spec.modulus = 2;
  spec.sim = quick_config();
  const GcSimOutcome out = run_gc_simulation(spec);
  EXPECT_EQ(out.faults_injected, 0u);
  EXPECT_GT(out.metrics.delivered, 0u);
}

TEST(Runner, FaultyCellRespectsPrecondition) {
  GcSimSpec spec;
  spec.n = 7;
  spec.modulus = 2;
  spec.faulty_nodes = 1;
  spec.sim = quick_config();
  const GcSimOutcome out = run_gc_simulation(spec);
  EXPECT_EQ(out.faults_injected, 1u);
  EXPECT_GT(out.metrics.delivered, 0u);
  EXPECT_EQ(out.metrics.dropped, 0u);
}

TEST(Sweep, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_index(16,
                         [](std::size_t i) {
                           if (i == 7) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(Sweep, ZeroJobsIsFine) {
  parallel_for_index(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace gcube
