// SIMD kernel property tests.
//
// Each vectorized hot-path kernel has a scalar reference it must match
// BIT-FOR-BIT at every dispatch level the CPU supports — the tentpole
// contract that lets sim_cli --simd=<level> reproduce identical metrics.
// The determinism suite enforces this end to end through whole simulation
// runs; these tests pin each kernel in isolation on randomized inputs, so
// a lane-ordering or tail-handling bug names the kernel that broke
// instead of surfacing as a diverged histogram three layers up:
//
//  * counter_keys — batched counter_key(seed, node, cycle) derivation;
//  * counter_bernoulli_mask — the exact-integer-threshold Bernoulli scan,
//    including the rate edge cases (0, 1, subnormal-small, NaN) where the
//    float-compare-to-integer-compare rewrite is easiest to get wrong;
//  * NextHopFabric::fault_free_hops — gathered table lookups vs the
//    scalar per-element hop, across shapes with alpha 1..3 (both the
//    pending-dimension branch and the folded tree-edge branch);
//  * classify_front_packets — the 8/4-record transpose + predicate masks
//    over adversarial flag/hops/clean combinations, every count 0..64 so
//    each vector-body/scalar-tail split is exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "routing/next_hop_table.hpp"
#include "sim/advance_simd.hpp"
#include "sim/packet.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace gcube {
namespace {

/// Levels this CPU can execute; levels above detected would clamp inside
/// the dispatcher and silently re-test a lower kernel.
std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (detected_simd_level() >= SimdLevel::kSse) {
    levels.push_back(SimdLevel::kSse);
  }
  if (detected_simd_level() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

TEST(SimdKernels, CounterKeysMatchScalarDerivation) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t seed = rng();
    const std::uint64_t cycle = rng() >> (trial % 40);
    // 67 = two full 32-lane sweeps plus a 3-wide tail.
    std::vector<std::uint32_t> nodes(67);
    for (auto& u : nodes) {
      u = static_cast<std::uint32_t>(rng.below(std::uint64_t{1} << 26));
    }
    std::vector<std::uint64_t> want(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      want[i] = counter_key(seed, nodes[i], cycle);
    }
    for (const SimdLevel level : available_levels()) {
      std::vector<std::uint64_t> got(nodes.size(), 0);
      counter_keys(level, seed, cycle, nodes.data(), nodes.size(),
                   got.data());
      EXPECT_EQ(got, want) << "trial " << trial << " level "
                           << to_string(level);
    }
  }
}

TEST(SimdKernels, BernoulliMaskMatchesScalarDraws) {
  const double rates[] = {0.0,   1e-18, 1e-9, 0.02, 0.05,
                          0.375, 0.5,   0.97, 1.0,  std::nan("")};
  Xoshiro256 rng(11);
  for (const double rate : rates) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint64_t seed = rng();
      const std::uint64_t cycle = rng() >> 30;
      const auto base = static_cast<std::uint32_t>(rng.below(1u << 20)) * 64u;
      const unsigned count =
          (trial % 2 != 0) ? 64u : 1u + static_cast<unsigned>(trial) * 9u;
      std::uint64_t want = 0;
      for (unsigned i = 0; i < count; ++i) {
        CounterRng draw(counter_key(seed, base + i, cycle));
        if (draw.chance(rate)) want |= std::uint64_t{1} << i;
      }
      for (const SimdLevel level : available_levels()) {
        const std::uint64_t got =
            counter_bernoulli_mask(level, seed, cycle, base, count, rate);
        EXPECT_EQ(got, want)
            << "rate " << rate << " count " << count << " level "
            << to_string(level);
      }
    }
  }
}

TEST(SimdKernels, FaultFreeHopsMatchScalarPerElement) {
  // alpha 1, 2, 3: the three table shapes (alpha 3 = deepest subset fold).
  const std::pair<Dim, std::uint64_t> shapes[] = {{8, 2}, {10, 4}, {12, 8}};
  for (const auto& [n, modulus] : shapes) {
    const GaussianCube gc(n, modulus);
    const NextHopFabric fabric(gc);
    ASSERT_TRUE(fabric.supported()) << gc.name();
    Xoshiro256 rng(31 + n);
    // 61 pairs: 7 full AVX2 groups + a 5-wide scalar tail.
    std::vector<NodeId> cur;
    std::vector<NodeId> dst;
    while (cur.size() < 61) {
      const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
      if (s == d) continue;
      cur.push_back(s);
      dst.push_back(d);
    }
    std::vector<Dim> want(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      want[i] = fabric.fault_free_hop(cur[i], dst[i]);
    }
    for (const SimdLevel level : available_levels()) {
      std::vector<Dim> got(cur.size(), 0xFF);
      fabric.fault_free_hops(level, cur.size(), cur.data(), dst.data(),
                             got.data());
      EXPECT_EQ(got, want) << gc.name() << " level " << to_string(level);
    }
  }
}

TEST(SimdKernels, ClassifyFrontPacketsMatchesScalar) {
  // Adversarial randomized records: flags span every steered/adaptive/
  // planned/audited combination, hops sit on both sides of the limit
  // (including equal), dst/plan_len hit the arrival predicates, and the
  // clean window is a fresh random 64-bit mask per trial.
  Xoshiro256 rng(47);
  const std::uint32_t hop_limit = 40;
  const NodeId base = 128;
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t clean = rng();
    const auto count = static_cast<unsigned>(rng.below(65));
    std::vector<PacketHot> records(count);
    std::vector<const PacketHot*> hot(count);
    std::vector<NodeId> nodes(count);
    for (unsigned i = 0; i < count; ++i) {
      PacketHot& h = records[i];
      nodes[i] = base + i;  // one packet per node slot, like the harvest
      h.flags = static_cast<std::uint32_t>(rng.below(16));
      h.hops = static_cast<std::uint32_t>(rng.below(2 * hop_limit + 2));
      h.plan_len = (rng.below(3) == 0)
                       ? h.hops  // force the planned-arrival predicate
                       : static_cast<std::uint32_t>(rng.below(64));
      h.dst = (rng.below(3) == 0)
                  ? nodes[i]  // force the positional-arrival predicate
                  : static_cast<NodeId>(rng.below(1u << 20));
      hot[i] = &records[i];
    }
    const ClassifyMasks want =
        classify_front_packets(SimdLevel::kScalar, count, hot.data(),
                               nodes.data(), base, clean, hop_limit);
    for (const SimdLevel level : available_levels()) {
      const ClassifyMasks got = classify_front_packets(
          level, count, hot.data(), nodes.data(), base, clean, hop_limit);
      EXPECT_EQ(got.arrived, want.arrived)
          << "trial " << trial << " count " << count << " level "
          << to_string(level);
      EXPECT_EQ(got.fast, want.fast)
          << "trial " << trial << " count " << count << " level "
          << to_string(level);
    }
  }
}

TEST(SimdDispatch, ParseAndClampSemantics) {
  EXPECT_EQ(parse_simd_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(parse_simd_level("sse"), SimdLevel::kSse);
  EXPECT_EQ(parse_simd_level("sse4.2"), SimdLevel::kSse);
  EXPECT_EQ(parse_simd_level("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(parse_simd_level("avx512"), std::nullopt);
  EXPECT_EQ(parse_simd_level(""), std::nullopt);
  const SimdLevel entry = simd_level();
  // Requests above the detected level clamp instead of crashing; requests
  // at or below stick exactly.
  set_simd_level(SimdLevel::kAvx2);
  EXPECT_LE(simd_level(), detected_simd_level());
  set_simd_level(SimdLevel::kScalar);
  EXPECT_EQ(simd_level(), SimdLevel::kScalar);
  set_simd_level(entry);
  EXPECT_EQ(simd_level(), entry);
  EXPECT_STREQ(to_string(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(to_string(SimdLevel::kSse), "sse");
  EXPECT_STREQ(to_string(SimdLevel::kAvx2), "avx2");
}

}  // namespace
}  // namespace gcube
