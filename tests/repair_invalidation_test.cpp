// Repair-invalidation property test: after ANY interleaving of fail and
// repair events, a long-lived router (whose version-stamped plan/hop
// caches were populated at every intermediate fault state) must answer
// byte-identically to a fresh router built over the same *final* fault
// set, and an incrementally-refreshed FaultOverlay must equal a
// from-scratch rebuild. This is exactly the stale-state bug class repairs
// introduce: failures only ever shrink the usable link set (so a stale
// "usable" answer is caught by the per-hop checks), while repairs grow it
// — a stale "unusable" answer silently degrades routing instead of
// crashing, and only this equivalence check catches it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/overlay.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

struct Case {
  Dim n;
  std::uint64_t modulus;
};

class RepairInvalidationTest : public ::testing::TestWithParam<Case> {};

/// Touches the router's caches on a deterministic sample of (src, dst)
/// pairs so later queries can hit version-stamped entries from this state.
void exercise_router(const FtgcrRouter& router, std::uint64_t node_count,
                     Xoshiro256& rng) {
  for (int i = 0; i < 24; ++i) {
    const auto s = static_cast<NodeId>(rng.below(node_count));
    const auto d = static_cast<NodeId>(rng.below(node_count));
    (void)router.plan_shared(s, d);
    (void)router.next_hop(s, d);
  }
}

TEST_P(RepairInvalidationTest, RouterAndOverlayMatchFreshRebuild) {
  const Case c = GetParam();
  const GaussianCube gc(c.n, c.modulus);
  const std::uint64_t nodes = gc.node_count();

  FaultSet live;
  const FtgcrRouter router(gc, live);
  FaultOverlay overlay;
  overlay.attach(gc);
  overlay.refresh(live);

  Xoshiro256 rng(0xfeedULL + c.n);
  // Random fail/repair interleaving. Repairs target *known* faulty
  // elements half the time (so they actually fire) and arbitrary ones
  // otherwise (no-op repairs must be harmless).
  for (int step = 0; step < 120; ++step) {
    const std::uint64_t op = rng.below(6);
    const auto u = static_cast<NodeId>(rng.below(nodes));
    const auto dim = static_cast<Dim>(rng.below(gc.dims()));
    switch (op) {
      case 0:
        live.fail_node(u);
        break;
      case 1:
        live.fail_link(u, dim);
        break;
      case 2:
        if (!live.faulty_nodes().empty()) {
          const auto& v = live.faulty_nodes();
          EXPECT_TRUE(live.repair_node(v[rng.below(v.size())]));
        }
        break;
      case 3:
        if (!live.faulty_links().empty()) {
          const auto& v = live.faulty_links();
          const LinkId l = v[rng.below(v.size())];
          EXPECT_TRUE(live.repair_link(l.lo, l.dim));
        }
        break;
      case 4:
        (void)live.repair_node(u);  // may or may not be faulty
        break;
      default:
        (void)live.repair_link(u, dim);
        break;
    }
    overlay.refresh(live);
    // Populate caches against the *current* intermediate state; these
    // entries must all read as stale once the fault set moves again.
    exercise_router(router, nodes, rng);
  }

  // Fresh state rebuilt from the final membership only.
  FaultSet fresh;
  for (const NodeId v : live.faulty_nodes()) fresh.fail_node(v);
  for (const LinkId l : live.faulty_links()) fresh.fail_link(l.lo, l.dim);
  const FtgcrRouter fresh_router(gc, fresh);
  FaultOverlay fresh_overlay;
  fresh_overlay.attach(gc);
  fresh_overlay.refresh(fresh);

  for (NodeId u = 0; u < nodes; ++u) {
    ASSERT_EQ(overlay.usable_mask(u), fresh_overlay.usable_mask(u))
        << "overlay mask diverged at node " << u;
    ASSERT_EQ(overlay.full_mask(u), fresh_overlay.full_mask(u));
  }

  Xoshiro256 probe(0xabcdULL + c.n);
  for (int i = 0; i < 400; ++i) {
    const auto s = static_cast<NodeId>(probe.below(nodes));
    const auto d = static_cast<NodeId>(probe.below(nodes));
    const std::shared_ptr<const Route> a = router.plan_shared(s, d);
    const std::shared_ptr<const Route> b = fresh_router.plan_shared(s, d);
    ASSERT_EQ(a == nullptr, b == nullptr)
        << "plan feasibility diverged for " << s << " -> " << d;
    if (a != nullptr) {
      ASSERT_EQ(a->source(), b->source());
      ASSERT_EQ(a->hops(), b->hops())
          << "plan hops diverged for " << s << " -> " << d;
    }
    ASSERT_EQ(router.next_hop(s, d), fresh_router.next_hop(s, d))
        << "next_hop diverged for " << s << " -> " << d;
  }
}

TEST(RepairSemantics, RepairIsIdempotentAndVersioned) {
  FaultSet f;
  EXPECT_FALSE(f.repair_node(3));  // nothing to repair
  f.fail_node(3);
  const std::uint64_t v1 = f.version();
  const std::uint64_t g1 = f.generation();
  EXPECT_TRUE(f.repair_node(3));
  EXPECT_FALSE(f.node_faulty(3));
  EXPECT_GT(f.version(), v1);      // caches must go stale
  EXPECT_GT(f.generation(), g1);   // incremental consumers must rebuild
  EXPECT_FALSE(f.repair_node(3));  // second repair is a no-op
  EXPECT_TRUE(f.empty());

  f.fail_link(4, 2);  // the dimension-2 link {0, 4}
  const std::uint64_t v2 = f.version();
  EXPECT_TRUE(f.repair_link(0, 2));  // either endpoint addresses the link
  EXPECT_GT(f.version(), v2);
  EXPECT_FALSE(f.link_marked(4, 2));
  EXPECT_TRUE(f.empty());
}

TEST(RepairSemantics, NodeRepairKeepsIndependentLinkMarks) {
  FaultSet f;
  f.fail_node(5);
  f.fail_link(5, 0);
  EXPECT_TRUE(f.repair_node(5));
  EXPECT_FALSE(f.node_faulty(5));
  EXPECT_TRUE(f.link_marked(5, 0));    // the A/B link error persists
  EXPECT_FALSE(f.link_usable(5, 0));   // so the link is still unusable
  EXPECT_TRUE(f.link_usable(5, 1));    // other dims recovered with the node
  EXPECT_TRUE(f.repair_link(5, 0));
  EXPECT_TRUE(f.empty());
}

std::string case_name(const ::testing::TestParamInfo<Case>& param) {
  return "GC" + std::to_string(param.param.n) + "m" +
         std::to_string(param.param.modulus);
}

INSTANTIATE_TEST_SUITE_P(Cubes, RepairInvalidationTest,
                         ::testing::Values(Case{8, 2}, Case{10, 4}),
                         case_name);

}  // namespace
}  // namespace gcube
