// FaultSchedule tests: ordering, the file format, and the random-arrival
// generator's determinism.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "sim/fault_schedule.hpp"

namespace gcube {
namespace {

TEST(FaultSchedule, EventsSortedStablyByCycle) {
  FaultSchedule s;
  s.fail_node_at(50, 1);
  s.fail_link_at(10, 2, 3);
  s.fail_node_at(10, 4);
  s.fail_node_at(0, 5);
  const auto& events = s.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 0u);
  EXPECT_EQ(events[0].node, 5u);
  // Same-cycle events keep insertion order: link(2,3) before node(4).
  EXPECT_EQ(events[1].cycle, 10u);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kLink);
  EXPECT_EQ(events[1].node, 2u);
  EXPECT_EQ(events[1].dim, 3u);
  EXPECT_EQ(events[2].cycle, 10u);
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::kNode);
  EXPECT_EQ(events[2].node, 4u);
  EXPECT_EQ(events[3].cycle, 50u);
}

TEST(FaultSchedule, ParsesTheDocumentedFormat) {
  std::istringstream in(
      "# dynamic faults for the demo\n"
      "\n"
      "100 node 7\n"
      "  250 link 12 3\n"
      "250 node 9\n");
  const FaultSchedule s = FaultSchedule::parse(in);
  ASSERT_EQ(s.size(), 3u);
  const auto& events = s.events();
  EXPECT_EQ(events[0], (FaultEvent{100, FaultEvent::Kind::kNode, 7, 0}));
  EXPECT_EQ(events[1], (FaultEvent{250, FaultEvent::Kind::kLink, 12, 3}));
  EXPECT_EQ(events[2], (FaultEvent{250, FaultEvent::Kind::kNode, 9, 0}));
}

TEST(FaultSchedule, RejectsMalformedLines) {
  const char* bad[] = {
      "100 nod 7\n",            // unknown kind
      "100 repair 7\n",         // unknown kind (close to a real one)
      "100 link 12\n",          // link missing dimension
      "100 repair-link 12\n",   // repair-link missing dimension
      "banana node 7\n",        // non-numeric cycle
      "100 node 7 extra\n",     // trailing garbage
      "100 node 67108864\n",    // node id >= 2^kMaxDimension
      "100 link 12 26\n",       // dim >= kMaxDimension
      "100 repair-node 67108864\n",
      "100 repair-link 12 26\n",
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW((void)FaultSchedule::parse(in), std::invalid_argument)
        << "should reject: " << text;
  }
}

TEST(FaultSchedule, ParseErrorsCarryTheLineNumber) {
  std::istringstream in(
      "# fine\n"
      "10 node 3\n"
      "20 explode 4\n");
  try {
    (void)FaultSchedule::parse(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FaultSchedule, ParsesRepairEvents) {
  std::istringstream in(
      "100 node 7\n"
      "200 repair-node 7\n"
      "300 link 12 3\n"
      "350 repair-link 12 3\n");
  const FaultSchedule s = FaultSchedule::parse(in);
  ASSERT_EQ(s.size(), 4u);
  const auto& events = s.events();
  EXPECT_EQ(events[1],
            (FaultEvent{200, FaultEvent::Kind::kRepairNode, 7, 0}));
  EXPECT_TRUE(events[1].is_repair());
  EXPECT_FALSE(events[1].targets_link());
  EXPECT_EQ(events[3],
            (FaultEvent{350, FaultEvent::Kind::kRepairLink, 12, 3}));
  EXPECT_TRUE(events[3].is_repair());
  EXPECT_TRUE(events[3].targets_link());
}

TEST(FaultSchedule, WithoutRepairsStripsExactlyTheRepairEvents) {
  FaultSchedule s;
  s.fail_node_at(10, 1);
  s.repair_node_at(20, 1);
  s.fail_link_at(30, 2, 0);
  s.repair_link_at(40, 2, 0);
  s.fail_node_at(50, 3);
  const FaultSchedule permanent = s.without_repairs();
  ASSERT_EQ(permanent.size(), 3u);
  for (const auto& e : permanent.events()) EXPECT_FALSE(e.is_repair());
  EXPECT_EQ(permanent.events()[2].node, 3u);
}

TEST(FaultSchedule, FlappingLinksDeterministicAndWellFormed) {
  std::vector<LinkId> candidates;
  for (NodeId u = 0; u < 32; ++u) {
    for (Dim c = 0; c < 5; ++c) {
      if (bit(u, c) == 0) candidates.push_back(LinkId::of(u, c));
    }
  }
  const auto a =
      FaultSchedule::random_flapping_links(candidates, 8, 100, 30, 4000, 11);
  const auto b =
      FaultSchedule::random_flapping_links(candidates, 8, 100, 30, 4000, 11);
  EXPECT_EQ(a.events(), b.events());
  const auto c =
      FaultSchedule::random_flapping_links(candidates, 8, 100, 30, 4000, 12);
  EXPECT_NE(a.events(), c.events());
  EXPECT_GT(a.size(), 8u);  // 4000 cycles at mttf 100: several flaps each

  // Per link the event stream must alternate fail, repair, fail, ... and
  // never repair an up link or fail a down one.
  std::map<std::uint64_t, bool> down;  // key(link) -> currently failed
  std::size_t fails = 0;
  std::size_t repairs = 0;
  for (const auto& e : a.events()) {
    EXPECT_TRUE(e.targets_link());
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.node) << 6) | e.dim;
    if (e.kind == FaultEvent::Kind::kLink) {
      EXPECT_FALSE(down[key]) << "double failure without repair";
      down[key] = true;
      ++fails;
    } else {
      EXPECT_TRUE(down[key]) << "repair of an up link";
      down[key] = false;
      ++repairs;
    }
  }
  EXPECT_GE(fails, repairs);        // a final flap may be cut by the horizon
  EXPECT_LE(fails - repairs, 8u);   // at most one dangling failure per link
}

TEST(FaultSchedule, FlappingLinksValidatesArguments) {
  const std::vector<LinkId> candidates = {LinkId::of(0, 0), LinkId::of(2, 0)};
  EXPECT_THROW((void)FaultSchedule::random_flapping_links(candidates, 3, 100,
                                                          30, 1000, 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::random_flapping_links(candidates, 1, 0.5,
                                                          30, 1000, 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::random_flapping_links(candidates, 1, 100,
                                                          0.0, 1000, 1),
               std::invalid_argument);
}

TEST(FaultSchedule, RandomArrivalsDeterministicInSeed) {
  const auto a = FaultSchedule::random_node_faults(512, 0.01, 2000, 77, 100);
  const auto b = FaultSchedule::random_node_faults(512, 0.01, 2000, 77, 100);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_GT(a.size(), 0u);  // 2000 cycles at 1% — arrivals all but certain
  const auto c = FaultSchedule::random_node_faults(512, 0.01, 2000, 78, 100);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultSchedule, RandomArrivalsRespectCapAndDistinctness) {
  const auto s = FaultSchedule::random_node_faults(64, 0.5, 4000, 5, 10);
  EXPECT_LE(s.size(), 10u);
  std::set<NodeId> victims;
  for (const auto& e : s.events()) {
    EXPECT_EQ(e.kind, FaultEvent::Kind::kNode);
    EXPECT_LT(e.node, 64u);
    EXPECT_TRUE(victims.insert(e.node).second) << "victims must be distinct";
  }
}

TEST(FaultSchedule, ZeroRateGeneratesNothing) {
  EXPECT_TRUE(
      FaultSchedule::random_node_faults(64, 0.0, 4000, 5, 10).empty());
}

}  // namespace
}  // namespace gcube
