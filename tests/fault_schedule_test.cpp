// FaultSchedule tests: ordering, the file format, and the random-arrival
// generator's determinism.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/fault_schedule.hpp"

namespace gcube {
namespace {

TEST(FaultSchedule, EventsSortedStablyByCycle) {
  FaultSchedule s;
  s.fail_node_at(50, 1);
  s.fail_link_at(10, 2, 3);
  s.fail_node_at(10, 4);
  s.fail_node_at(0, 5);
  const auto& events = s.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 0u);
  EXPECT_EQ(events[0].node, 5u);
  // Same-cycle events keep insertion order: link(2,3) before node(4).
  EXPECT_EQ(events[1].cycle, 10u);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kLink);
  EXPECT_EQ(events[1].node, 2u);
  EXPECT_EQ(events[1].dim, 3u);
  EXPECT_EQ(events[2].cycle, 10u);
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::kNode);
  EXPECT_EQ(events[2].node, 4u);
  EXPECT_EQ(events[3].cycle, 50u);
}

TEST(FaultSchedule, ParsesTheDocumentedFormat) {
  std::istringstream in(
      "# dynamic faults for the demo\n"
      "\n"
      "100 node 7\n"
      "  250 link 12 3\n"
      "250 node 9\n");
  const FaultSchedule s = FaultSchedule::parse(in);
  ASSERT_EQ(s.size(), 3u);
  const auto& events = s.events();
  EXPECT_EQ(events[0], (FaultEvent{100, FaultEvent::Kind::kNode, 7, 0}));
  EXPECT_EQ(events[1], (FaultEvent{250, FaultEvent::Kind::kLink, 12, 3}));
  EXPECT_EQ(events[2], (FaultEvent{250, FaultEvent::Kind::kNode, 9, 0}));
}

TEST(FaultSchedule, RejectsMalformedLines) {
  const char* bad[] = {
      "100 nod 7\n",        // unknown kind
      "100 link 12\n",      // link missing dimension
      "banana node 7\n",    // non-numeric cycle
      "100 node 7 extra\n"  // trailing garbage
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW((void)FaultSchedule::parse(in), std::invalid_argument)
        << "should reject: " << text;
  }
}

TEST(FaultSchedule, RandomArrivalsDeterministicInSeed) {
  const auto a = FaultSchedule::random_node_faults(512, 0.01, 2000, 77, 100);
  const auto b = FaultSchedule::random_node_faults(512, 0.01, 2000, 77, 100);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_GT(a.size(), 0u);  // 2000 cycles at 1% — arrivals all but certain
  const auto c = FaultSchedule::random_node_faults(512, 0.01, 2000, 78, 100);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultSchedule, RandomArrivalsRespectCapAndDistinctness) {
  const auto s = FaultSchedule::random_node_faults(64, 0.5, 4000, 5, 10);
  EXPECT_LE(s.size(), 10u);
  std::set<NodeId> victims;
  for (const auto& e : s.events()) {
    EXPECT_EQ(e.kind, FaultEvent::Kind::kNode);
    EXPECT_LT(e.node, 64u);
    EXPECT_TRUE(victims.insert(e.node).second) << "victims must be distinct";
  }
}

TEST(FaultSchedule, ZeroRateGeneratesNothing) {
  EXPECT_TRUE(
      FaultSchedule::random_node_faults(64, 0.0, 4000, 5, 10).empty());
}

}  // namespace
}  // namespace gcube
