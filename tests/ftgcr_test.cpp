// FTGCR tests — the paper's headline guarantees (§1 claims 3 & 6, Theorems
// 3 and 5):
//  * fault-free: FTGCR degenerates to the optimal FFGCR route;
//  * under any fault set passing check_ftgcr_precondition, every nonfaulty
//    pair is delivered with a route valid under the faults;
//  * in the A-only Theorem-3 regime the route is at most 2F hops longer
//    than the fault-free optimum (the paper's claim, verbatim); for B/C
//    faults the claim cannot hold as stated and the asserted envelope is
//    relative to the fault-aware optimum (see check_all_pairs);
//  * the in-cube BFS safeguard is never engaged.
#include <gtest/gtest.h>

#include <tuple>

#include "fault/categorize.hpp"
#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

// Hop-bound checks. The paper claims optimal + 2F; that holds verbatim in
// the A-only Theorem-3 regime (strict_2f). For B/C faults the claim cannot
// hold as stated — there are single-fault configurations where the
// *fault-aware shortest path itself* exceeds optimal + 2F (e.g. GC(5,2)
// with the 0-1 tree link cut: the true optimum between nodes 0 and 1 is 7
// hops versus a fault-free optimum of 1; even Theorem 4's own
// H + 2(F_s+F_t) + 2 is violated by the optimum). See EXPERIMENTS.md. The
// meaningful guarantee, asserted here: FTGCR stays within 2 hops per fault
// plus 6 hops per engaged EH crossing (a blocked crossing costs up to a
// displacement, two extra crossings, and a repair) of the *fault-aware*
// shortest path —
// the cost of the two-level discipline (tree itinerary + structure-confined
// detours) versus an omniscient router. Measured average excess is ~0.01
// hops per pair (bench/abl_route_overhead).
void check_all_pairs(const GaussianCube& gc, const FaultSet& faults,
                     bool strict_2f = false) {
  const FtgcrRouter router(gc, faults);
  const FfgcrRouter baseline(gc);
  const std::size_t total_faults =
      faults.node_fault_count() + faults.link_fault_count();
  for (NodeId s = 0; s < gc.node_count(); ++s) {
    if (faults.node_faulty(s)) continue;
    const auto dist_f = bfs_distances(gc, s, [&faults](NodeId u, Dim c) {
      return faults.link_usable(u, c);
    });
    for (NodeId d = 0; d < gc.node_count(); ++d) {
      if (faults.node_faulty(d)) continue;
      FtgcrStats stats;
      const RoutingResult result = router.plan_with_stats(s, d, stats);
      ASSERT_TRUE(result.delivered()) << gc.name() << " s=" << s << " d=" << d
                                      << ": " << result.failure;
      const Route& route = *result.route;
      ASSERT_EQ(route.source(), s);
      ASSERT_EQ(route.destination(), d);
      const auto check = validate_route(gc, faults, route);
      ASSERT_TRUE(check.ok) << check.reason;
      ASSERT_FALSE(stats.used_fallback)
          << "informed legs never need the BFS safeguard";
      ASSERT_LE(route.length(), dist_f[d] + 2 * total_faults +
                                    6 * stats.freh_crossings)
          << gc.name() << " s=" << s << " d=" << d
          << " (vs fault-aware optimum " << dist_f[d] << ")";
      if (strict_2f) {
        ASSERT_LE(route.length(),
                  baseline.optimal_length(s, d) + 2 * total_faults)
            << gc.name() << " s=" << s << " d=" << d;
      }
    }
  }
}

class FtgcrGridTest : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(FtgcrGridTest, FaultFreeMatchesFfgcrExactly) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  const FaultSet none;
  const FtgcrRouter ft(gc, none);
  const FfgcrRouter ff(gc);
  for (NodeId s = 0; s < gc.node_count(); ++s) {
    for (NodeId d = 0; d < gc.node_count(); ++d) {
      const auto a = ft.plan(s, d);
      const auto b = ff.plan(s, d);
      ASSERT_TRUE(a.delivered());
      ASSERT_EQ(a.route->length(), b.route->length());
      ASSERT_TRUE(a.route->is_simple());
    }
  }
}

TEST_P(FtgcrGridTest, SingleLinkFaultsExhaustive) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = 0; c < n; ++c) {
      if (!gc.has_link(u, c) || bit(u, c) != 0) continue;
      FaultSet f;
      f.fail_link(u, c);
      if (!check_ftgcr_precondition(gc, f)) continue;
      check_all_pairs(gc, f);
    }
  }
}

TEST_P(FtgcrGridTest, SingleNodeFaultsExhaustive) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    FaultSet f;
    f.fail_node(u);
    if (!check_ftgcr_precondition(gc, f)) continue;
    check_all_pairs(gc, f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCubes, FtgcrGridTest,
    ::testing::Combine(::testing::Values<Dim>(4, 5, 6, 7),
                       ::testing::Values<Dim>(0, 1, 2)));

TEST(Ftgcr, RandomMultiFaultCampaign) {
  Xoshiro256 rng(71);
  const std::vector<std::pair<Dim, Dim>> shapes = {
      {6, 1}, {7, 1}, {7, 2}, {8, 1}, {8, 2}};
  for (const auto& [n, alpha] : shapes) {
    const GaussianCube gc(n, pow2(alpha));
    int accepted = 0;
    for (int trial = 0; trial < 300 && accepted < 25; ++trial) {
      FaultSet f;
      const std::uint64_t budget = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < budget; ++i) {
        if (rng.chance(0.4)) {
          f.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
        } else {
          const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
          const auto c = static_cast<Dim>(rng.below(n));
          if (gc.has_link(u, c)) f.fail_link(u, c);
        }
      }
      if (f.empty() || !check_ftgcr_precondition(gc, f)) continue;
      ++accepted;
      check_all_pairs(gc, f);
    }
    EXPECT_GT(accepted, 5) << gc.name();
  }
}

TEST(Ftgcr, TheoremThreeRegimeNeverUsesFallback) {
  // A-category link faults only, under the per-GEEC limit: the paper's
  // adaptive machinery must suffice with no BFS repair.
  Xoshiro256 rng(73);
  const GaussianCube gc(9, 2);
  int accepted = 0;
  for (int trial = 0; trial < 300 && accepted < 30; ++trial) {
    FaultSet f;
    const std::uint64_t budget = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < budget; ++i) {
      const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto dims = gc.high_dims(gc.ending_class(u));
      if (dims.empty()) continue;
      f.fail_link(u, dims[rng.below(dims.size())]);
    }
    if (f.empty() || !check_theorem3(gc, f)) continue;
    ++accepted;
    check_all_pairs(gc, f, /*strict_2f=*/true);
  }
  EXPECT_GT(accepted, 10);
}

TEST(Ftgcr, FaultySourceOrDestinationRejected) {
  const GaussianCube gc(6, 2);
  FaultSet f;
  f.fail_node(5);
  const FtgcrRouter router(gc, f);
  EXPECT_FALSE(router.plan(5, 9).delivered());
  EXPECT_FALSE(router.plan(9, 5).delivered());
}

TEST(Ftgcr, ReportsHonestFailureWhenPreconditionViolated) {
  // Class 1 of GC(5, 4) has no hypercube dimensions; kill the only tree
  // link between two specific classes' lanes and routing must fail rather
  // than lie.
  const GaussianCube gc(5, 4);
  FaultSet f;
  f.fail_node(0b00001);  // B-category fault in a dimensionless class
  ASSERT_FALSE(check_ftgcr_precondition(gc, f));
  const FtgcrRouter router(gc, f);
  // A pair whose itinerary must pass class 1's faulty lane.
  const auto result = router.plan(0b00000, 0b00011);
  if (result.delivered()) {
    // If a route was found it must still be valid.
    EXPECT_TRUE(validate_route(gc, f, *result.route).ok);
  } else {
    EXPECT_FALSE(result.failure.empty());
  }
}

TEST(Ftgcr, RouteLengthDegradesGracefullyWithFaults) {
  // Average route overhead grows with the number of faults but stays within
  // the 2F bound (claim 3). Aggregate check over random pairs.
  const GaussianCube gc(9, 2);
  Xoshiro256 rng(79);
  const FfgcrRouter baseline(gc);
  for (std::size_t num_faults : {1u, 2u, 3u}) {
    FaultSet f;
    int guard = 0;
    do {
      f.clear();
      while (f.node_fault_count() < num_faults) {
        f.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
      }
    } while (!check_ftgcr_precondition(gc, f) && ++guard < 200);
    ASSERT_TRUE(check_ftgcr_precondition(gc, f));
    const FtgcrRouter router(gc, f);
    for (int i = 0; i < 300; ++i) {
      NodeId s, d;
      do {
        s = static_cast<NodeId>(rng.below(gc.node_count()));
      } while (f.node_faulty(s));
      do {
        d = static_cast<NodeId>(rng.below(gc.node_count()));
      } while (f.node_faulty(d));
      FtgcrStats stats;
      const auto result = router.plan_with_stats(s, d, stats);
      ASSERT_TRUE(result.delivered());
      const auto dist_f = bfs_distances(gc, s, [&f](NodeId u, Dim c) {
        return f.link_usable(u, c);
      });
      ASSERT_LE(result.route->length(),
                dist_f[d] + 2 * num_faults + 6 * stats.freh_crossings);
    }
  }
}

}  // namespace
}  // namespace gcube
