// Traffic-pattern tests: the classical destination patterns and their
// interaction with faults and the simulator.
#include <gtest/gtest.h>

#include <map>

#include "routing/ffgcr.hpp"
#include "sim/network.hpp"
#include "sim/runner.hpp"
#include "sim/traffic.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

TEST(PatternTraffic, BitComplement) {
  const FaultSet none;
  const PatternTraffic t(6, 0.1, none, 1, TrafficPattern::kBitComplement);
  CounterRng rng(counter_key(1, 0, 0));
  EXPECT_EQ(t.pick_destination(0b000000, rng), 0b111111u);
  EXPECT_EQ(t.pick_destination(0b101010, rng), 0b010101u);
}

TEST(PatternTraffic, BitReversal) {
  const FaultSet none;
  const PatternTraffic t(6, 0.1, none, 1, TrafficPattern::kBitReversal);
  CounterRng rng(counter_key(1, 0, 0));
  EXPECT_EQ(t.pick_destination(0b100000, rng), 0b000001u);
  EXPECT_EQ(t.pick_destination(0b110100, rng), 0b001011u);
}

TEST(PatternTraffic, Transpose) {
  const FaultSet none;
  const PatternTraffic t(6, 0.1, none, 1, TrafficPattern::kTranspose);
  CounterRng rng(counter_key(1, 0, 0));
  // Rotate by n/2 = 3.
  EXPECT_EQ(t.pick_destination(0b000111, rng), 0b111000u);
  EXPECT_EQ(t.pick_destination(0b101000, rng), 0b000101u);
}

TEST(PatternTraffic, SelfMappingFallsBackToUniform) {
  const FaultSet none;
  const PatternTraffic t(6, 0.1, none, 1, TrafficPattern::kBitReversal);
  CounterRng rng(counter_key(1, 0, 0));
  // A palindromic label maps to itself; the fallback must avoid self.
  const NodeId palindrome = 0b100001;
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(t.pick_destination(palindrome, rng), palindrome);
  }
}

TEST(PatternTraffic, FaultyPatternDestinationFallsBack) {
  FaultSet faults;
  faults.fail_node(0b111111);
  const PatternTraffic t(6, 0.1, faults, 1, TrafficPattern::kBitComplement);
  CounterRng rng(counter_key(1, 0, 0));
  for (int i = 0; i < 50; ++i) {
    const NodeId d = t.pick_destination(0, rng);
    EXPECT_NE(d, 0b111111u);
    EXPECT_NE(d, 0u);
  }
}

TEST(PatternTraffic, HotspotConcentratesTraffic) {
  const FaultSet none;
  const NodeId hot = 13;
  const PatternTraffic t(6, 0.1, none, 1, TrafficPattern::kHotspot, hot,
                         0.5);
  CounterRng rng(counter_key(7, 0, 0));
  std::map<NodeId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    ++counts[t.pick_destination(0, rng)];
  }
  // Roughly half of all packets hit the hot node.
  EXPECT_GT(counts[hot], 1600);
  EXPECT_LT(counts[hot], 2400);
}

TEST(PatternTraffic, ToString) {
  EXPECT_STREQ(to_string(TrafficPattern::kUniform), "uniform");
  EXPECT_STREQ(to_string(TrafficPattern::kHotspot), "hotspot");
}

TEST(PatternTraffic, RejectsBadParameters) {
  const FaultSet none;
  EXPECT_THROW(
      PatternTraffic(6, 0.1, none, 1, TrafficPattern::kHotspot, 999),
      std::invalid_argument);
  EXPECT_THROW(PatternTraffic(6, 0.1, none, 1, TrafficPattern::kHotspot, 0,
                              1.5),
               std::invalid_argument);
}

TEST(PatternTraffic, SimulatorRunsEveryPattern) {
  const GaussianCube gc(7, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  for (const TrafficPattern pattern :
       {TrafficPattern::kUniform, TrafficPattern::kBitComplement,
        TrafficPattern::kBitReversal, TrafficPattern::kTranspose,
        TrafficPattern::kHotspot}) {
    const PatternTraffic traffic(7, cfg.injection_rate, none, cfg.seed,
                                 pattern);
    NetworkSim sim(gc, router, none, cfg, traffic);
    const SimMetrics m = sim.run();
    EXPECT_GT(m.delivered, 0u) << to_string(pattern);
    EXPECT_EQ(m.dropped, 0u) << to_string(pattern);
  }
}

TEST(PatternTraffic, HotspotRaisesLatencyOverUniform) {
  const GaussianCube gc(8, 2);
  const FfgcrRouter router(gc);
  const FaultSet none;
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 500;
  const PatternTraffic uniform(8, cfg.injection_rate, none, cfg.seed,
                               TrafficPattern::kUniform);
  const PatternTraffic hotspot(8, cfg.injection_rate, none, cfg.seed,
                               TrafficPattern::kHotspot, 0, 0.4);
  const double lat_uniform =
      NetworkSim(gc, router, none, cfg, uniform).run().avg_latency();
  const double lat_hotspot =
      NetworkSim(gc, router, none, cfg, hotspot).run().avg_latency();
  EXPECT_GT(lat_hotspot, lat_uniform)
      << "congestion at the hot node must show up in latency";
}

TEST(RunnerPattern, SpecSelectsPattern) {
  GcSimSpec spec;
  spec.n = 6;
  spec.modulus = 2;
  spec.pattern = TrafficPattern::kBitComplement;
  spec.sim.injection_rate = 0.02;
  spec.sim.warmup_cycles = 50;
  spec.sim.measure_cycles = 200;
  const auto outcome = run_gc_simulation(spec);
  EXPECT_GT(outcome.metrics.delivered, 0u);
}

}  // namespace
}  // namespace gcube
