// Route and validation tests.
#include <gtest/gtest.h>

#include "routing/route.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/topology.hpp"

namespace gcube {
namespace {

TEST(Route, EmptyRoute) {
  const Route r(5);
  EXPECT_EQ(r.source(), 5u);
  EXPECT_EQ(r.destination(), 5u);
  EXPECT_EQ(r.length(), 0u);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.is_simple());
  EXPECT_EQ(r.nodes(), std::vector<NodeId>{5});
}

TEST(Route, DestinationFollowsHops) {
  Route r(0b000);
  r.append(0);
  r.append(2);
  EXPECT_EQ(r.destination(), 0b101u);
  const auto nodes = r.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 0b000u);
  EXPECT_EQ(nodes[1], 0b001u);
  EXPECT_EQ(nodes[2], 0b101u);
}

TEST(Route, AppendRoute) {
  Route head(0);
  head.append(1);
  Route tail(2);
  tail.append(0);
  head.append(tail);
  EXPECT_EQ(head.length(), 2u);
  EXPECT_EQ(head.destination(), 0b011u);
}

TEST(Route, SimpleDetection) {
  Route r(0);
  r.append(1);
  EXPECT_TRUE(r.is_simple());
  r.append(1);  // back to the start
  EXPECT_FALSE(r.is_simple());
}

TEST(ValidateRoute, AcceptsLegalRoute) {
  const Hypercube h(3);
  Route r(0);
  r.append(0);
  r.append(1);
  r.append(2);
  EXPECT_TRUE(validate_route(h, r));
}

TEST(ValidateRoute, RejectsMissingLink) {
  const GaussianCube gc(6, 4);  // sparse: most high links absent
  // Dimension 3 link requires the low 2 bits to equal 3 % 4 == 3.
  Route r(0b000000);
  r.append(3);
  const auto check = validate_route(gc, r);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("no such link"), std::string::npos);
}

TEST(ValidateRoute, RejectsOutOfRangeDimension) {
  const Hypercube h(3);
  Route r(0);
  r.append(7);
  EXPECT_FALSE(validate_route(h, r).ok);
}

TEST(ValidateRoute, RejectsFaultyLink) {
  const Hypercube h(3);
  FaultSet faults;
  faults.fail_link(0, 1);
  Route r(0);
  r.append(1);
  const auto check = validate_route(h, faults, r);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("unusable"), std::string::npos);
}

TEST(ValidateRoute, RejectsRouteThroughFaultyNode) {
  const Hypercube h(3);
  FaultSet faults;
  faults.fail_node(0b001);
  Route r(0b000);
  r.append(0);  // into the faulty node
  EXPECT_FALSE(validate_route(h, faults, r).ok);
}

TEST(ValidateRoute, RejectsFaultySource) {
  const Hypercube h(3);
  FaultSet faults;
  faults.fail_node(0);
  EXPECT_FALSE(validate_route(h, faults, Route(0)).ok);
}

TEST(RoutingResult, DeliveredSemantics) {
  RoutingResult r;
  EXPECT_FALSE(r.delivered());
  r.route = Route(0);
  EXPECT_TRUE(r.delivered());
}

}  // namespace
}  // namespace gcube
