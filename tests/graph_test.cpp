// Graph substrate tests: materialization, BFS, components, diameter.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/topology.hpp"

namespace gcube {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(component_count(g), 5u);
}

TEST(Graph, AddEdgeRejectsBadInput) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);  // duplicate, reversed
  EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);  // self-loop
  EXPECT_THROW(g.add_edge(0, 9), std::invalid_argument);  // out of range
}

TEST(Graph, MaterializesTopologyFaithfully) {
  const Hypercube h(4);
  const Graph g(h);
  EXPECT_EQ(g.node_count(), h.node_count());
  EXPECT_EQ(g.edge_count(), h.link_count());
  for (NodeId u = 0; u < h.node_count(); ++u) {
    EXPECT_EQ(g.degree(u), h.degree(u));
    for (Dim c = 0; c < 4; ++c) {
      EXPECT_TRUE(g.has_edge(u, flip_bit(u, c)));
    }
  }
}

TEST(Graph, BfsDistancesOnHypercubeAreHamming) {
  const Hypercube h(5);
  const Graph g(h);
  for (const NodeId s : {0u, 13u, 31u}) {
    const auto dist = bfs_distances(g, s);
    for (NodeId d = 0; d < h.node_count(); ++d) {
      EXPECT_EQ(dist[d], hamming(s, d));
    }
  }
}

TEST(Graph, BfsWithLinkFilter) {
  const Hypercube h(3);
  // Cut every dimension-0 link: the cube splits into two 4-node squares.
  const auto dist = bfs_distances(
      h, 0, [](NodeId, Dim c) { return c != 0; });
  for (NodeId d = 0; d < 8; ++d) {
    if (bit(d, 0) == 1) {
      EXPECT_EQ(dist[d], kUnreachable);
    } else {
      EXPECT_NE(dist[d], kUnreachable);
    }
  }
}

TEST(Graph, ShortestPathLength) {
  const Hypercube h(4);
  EXPECT_EQ(shortest_path_length(h, 0b0000, 0b1111), 4u);
  EXPECT_EQ(shortest_path_length(h, 3, 3), 0u);
}

TEST(Graph, ComponentCount) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(component_count(g), 3u);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Graph, IsTree) {
  Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  EXPECT_TRUE(is_tree(path));
  Graph cycle(3);
  cycle.add_edge(0, 1);
  cycle.add_edge(1, 2);
  cycle.add_edge(2, 0);
  EXPECT_FALSE(is_tree(cycle));
}

TEST(Graph, DiameterOfHypercubeIsN) {
  for (const Dim n : {2u, 3u, 4u, 5u}) {
    EXPECT_EQ(diameter(Graph(Hypercube(n))), n);
  }
}

TEST(Graph, DegreeHistogram) {
  const GaussianCube gc(6, 2);
  const auto hist = degree_histogram(Graph(gc));
  std::uint64_t total = 0;
  for (const auto count : hist) total += count;
  EXPECT_EQ(total, gc.node_count());
}

}  // namespace
}  // namespace gcube
