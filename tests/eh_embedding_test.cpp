// EH embedding tests: the GC crossing structure G(p, q, k) must map to
// EH(|Dim(p)|, |Dim(q)|) as an exact graph isomorphism.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "routing/eh_embedding.hpp"
#include "topology/gaussian_tree.hpp"

namespace gcube {
namespace {

/// Enumerates every node of the structure containing `anchor` by brute
/// force over all GC labels.
std::set<NodeId> structure_nodes(const GaussianCube& gc,
                                 const EhEmbedding& emb) {
  std::set<NodeId> nodes;
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    if (emb.contains(u)) nodes.insert(u);
  }
  return nodes;
}

class EmbeddingTest : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(EmbeddingTest, BijectionAndIsomorphism) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  const GaussianTree tree(alpha);
  // Every tree edge with both classes carrying hypercube dimensions.
  for (NodeId p = 0; p < gc.class_count(); ++p) {
    for (const NodeId q : tree.neighbors(p)) {
      if (p > q) continue;
      if (gc.high_dim_count(p) == 0 || gc.high_dim_count(q) == 0) continue;
      const EhEmbedding emb(gc, p, q, /*anchor=*/p);
      const auto& eh = emb.eh();
      EXPECT_EQ(eh.s(), gc.high_dim_count(p));
      EXPECT_EQ(eh.t(), gc.high_dim_count(q));

      const auto nodes = structure_nodes(gc, emb);
      ASSERT_EQ(nodes.size(), eh.node_count());

      // Bijection: to_eh is injective onto all EH labels; from_eh inverts.
      std::set<NodeId> images;
      for (const NodeId u : nodes) {
        const NodeId x = emb.to_eh(u);
        ASSERT_LT(x, eh.node_count());
        images.insert(x);
        ASSERT_EQ(emb.from_eh(x), u);
        // Class <-> c-bit correspondence.
        ASSERT_EQ(eh.c_bit(x) == 1, gc.ending_class(u) == q);
      }
      ASSERT_EQ(images.size(), eh.node_count());

      // Isomorphism: EH links map exactly onto GC links inside the
      // structure (via to_gc_dim), and the GC link exists.
      for (NodeId x = 0; x < eh.node_count(); ++x) {
        const NodeId u = emb.from_eh(x);
        for (Dim c = 0; c < eh.dims(); ++c) {
          const bool eh_link = eh.has_link(x, c);
          const Dim gc_dim = emb.to_gc_dim(c);
          const NodeId v = flip_bit(u, gc_dim);
          const bool gc_link = gc.has_link(u, gc_dim) && emb.contains(v) &&
                               emb.from_eh(flip_bit(x, c)) == v;
          ASSERT_EQ(eh_link, gc_link)
              << gc.name() << " p=" << p << " q=" << q << " x=" << x
              << " ehdim=" << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EmbeddingTest,
    ::testing::Combine(::testing::Values<Dim>(5, 6, 7, 8, 9, 10),
                       ::testing::Values<Dim>(1, 2, 3)));

TEST(Embedding, RejectsDimensionlessClass) {
  const GaussianCube gc(5, 4);  // Dim(1) is empty
  EXPECT_THROW(EhEmbedding(gc, 0, 1, 0), std::invalid_argument);
}

TEST(Embedding, RejectsNonNeighborClasses) {
  const GaussianCube gc(10, 4);
  // Classes 0 and 3 differ in two bits: not a tree edge.
  EXPECT_THROW(EhEmbedding(gc, 0, 3, 0), std::invalid_argument);
}

TEST(Embedding, AnchorSelectsInstance) {
  const GaussianCube gc(10, 2);
  // Dim(0) = {2,4,6,8}, Dim(1) = {1,3,5,7,9}: no fixed bits remain outside
  // the structure, so there is exactly one instance.
  const EhEmbedding emb(gc, 0, 1, 0);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    EXPECT_TRUE(emb.contains(u));
  }
}

}  // namespace
}  // namespace gcube
