#!/usr/bin/env python3
"""Self-test for scripts/check_bench_json.py.

The checker is itself a CI gate, so it gets the same treatment as the
code it gates: craft well-formed and deliberately broken reports and
assert the checker accepts or rejects each for the stated reason. Run
directly or via ctest (registered in tests/CMakeLists.txt).
"""

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "scripts" / \
    "check_bench_json.py"

FAILURES = []


def cell(name, threads=1, generated=1000, delivered=900, seconds=0.5,
         **extra):
    c = {
        "name": name,
        "topology": "GC(10, 4)",
        "router": "FTGCR",
        "static_faults": 12,
        "injection_rate": 0.05,
        "warmup_cycles": 300,
        "measure_cycles": 4000,
        "threads": threads,
        "fabric": True,
        "active_set": True,
        "seconds": seconds,
        "cycles_per_sec": 4300 / seconds,
        "generated": generated,
        "delivered": delivered,
        "carryover_delivered": 10,
        "total_hops": delivered * 8,
        "packets_per_sec": delivered / seconds,
        "hops_per_sec": delivered * 8 / seconds,
        "phase_breakdown": {
            "drain_ns": 1_000_000,
            "inject_ns": 5_000_000,
            "advance_ns": 14_000_000,
            "commit_ns": 100_000,
        },
    }
    c.update(extra)
    return c


def good_report():
    base = cell("gc10x4_ftgcr_static", headline=True,
                baseline_packets_per_sec=1000.0,
                speedup_vs_baseline=1.8)
    t2 = cell("gc10x4_ftgcr_static_t2", threads=2, seconds=0.4,
              scaling_base="gc10x4_ftgcr_static",
              speedup_vs_threads1=0.5 / 0.4)
    t4 = cell("gc10x4_ftgcr_static_t4", threads=4, seconds=0.3,
              scaling_base="gc10x4_ftgcr_static",
              speedup_vs_threads1=0.5 / 0.3)
    return {
        "bench": "perf_simcore",
        "schema_version": 3,
        "mode": "quick",
        "baseline": {
            "label": "self-test",
            "headline_cell": "gc10x4_ftgcr_static",
            "packets_per_sec": 1000.0,
        },
        "cells": [base, t2, t4],
    }


def good_v4_report():
    """Schema-4 report: simd + timed_seconds per cell, float serialization,
    and a _simd_scalar twin of the headline cell."""
    r = good_report()
    r["schema_version"] = 4
    twin = cell("gc10x4_ftgcr_static_simd_scalar", seconds=0.6)
    r["cells"].append(twin)
    r["cells"][0]["speedup_vs_simd_scalar"] = 0.6 / 0.5
    for c in r["cells"]:
        c["simd"] = "avx2"
        c["timed_seconds"] = c["seconds"] * 1.1
    twin["simd"] = "scalar"
    return r


def good_v5_report():
    """Schema-5 report: v4 plus the top-level provenance block."""
    r = good_v4_report()
    r["schema_version"] = 5
    r["provenance"] = {
        "seed": 4242,
        "topology": "GC(10, 4)",
        "router": "FTGCR",
        "simd": "avx2",
        "threads": 1,
        "schema_version": 5,
        "build_type": "optimized",
    }
    return r


def run_checker(report, *flags):
    """Returns (exit_code, stderr) of the checker on `report` (dict or
    raw string)."""
    with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False) as fh:
        if isinstance(report, str):
            fh.write(report)
        else:
            json.dump(report, fh)
        path = fh.name
    try:
        proc = subprocess.run(
            [sys.executable, str(CHECKER), *flags, path],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stderr
    finally:
        Path(path).unlink()


def expect(label, report, *flags, ok=True, message=""):
    code, stderr = run_checker(report, *flags)
    if ok and code != 0:
        FAILURES.append(f"{label}: expected PASS, got exit {code}: "
                        f"{stderr.strip()}")
    elif not ok and code == 0:
        FAILURES.append(f"{label}: expected FAIL, checker passed it")
    elif not ok and message and message not in stderr:
        FAILURES.append(f"{label}: failed for the wrong reason — wanted "
                        f"{message!r} in: {stderr.strip()}")
    else:
        print(f"  ok: {label}")


def main():
    expect("well-formed report passes", good_report())

    r = good_report()
    r["cells"][0]["delivered"] = r["cells"][0]["generated"] + 1
    r["cells"][0]["packets_per_sec"] = \
        r["cells"][0]["delivered"] / r["cells"][0]["seconds"]
    expect("delivered > generated rejected", r, ok=False, message="exceeds")

    r = good_report()
    r["cells"][1]["delivered"] -= 5  # drift from the threads=1 base
    r["cells"][1]["total_hops"] = r["cells"][1]["delivered"] * 8
    r["cells"][1]["packets_per_sec"] = \
        r["cells"][1]["delivered"] / r["cells"][1]["seconds"]
    r["cells"][1]["hops_per_sec"] = \
        r["cells"][1]["total_hops"] / r["cells"][1]["seconds"]
    expect("scaling-cell counter drift rejected", r, ok=False,
           message="determinism")

    r = good_report()
    del r["cells"][2]["speedup_vs_threads1"]
    expect("scaling cell without curve point rejected", r, ok=False,
           message="speedup_vs_threads1")

    # --min-scaling: the good report's curve is t2=1.25x, t4=1.67x.
    expect("curve above the floor passes the gate", good_report(),
           "--min-scaling", "1.0")
    r = good_report()
    slow = copy.deepcopy(r["cells"][0])
    slow["name"] = "gc10x4_ftgcr_static_t2"
    slow["threads"] = 2
    slow["seconds"] = 0.7  # slower than threads=1
    slow["cycles_per_sec"] = 4300 / 0.7
    slow["packets_per_sec"] = slow["delivered"] / 0.7
    slow["hops_per_sec"] = slow["total_hops"] / 0.7
    slow["scaling_base"] = "gc10x4_ftgcr_static"
    slow["speedup_vs_threads1"] = 0.5 / 0.7
    del slow["headline"]
    del slow["baseline_packets_per_sec"]
    del slow["speedup_vs_baseline"]
    r["cells"][1] = slow
    expect("regressed curve point fails the gate", r,
           "--min-scaling", "1.0", ok=False, message="below required")
    expect("same report passes without the gate", r)

    r = good_report()
    r["cells"][0]["packets_per_sec"] *= 2  # not delivered / seconds
    expect("throughput inconsistent with counters rejected", r, ok=False,
           message="inconsistent")

    expect("truncated JSON rejected", '{"bench": "perf_simcore", "ce',
           ok=False, message="cannot read")

    r = good_report()
    r["schema_version"] = 1
    expect("stale schema rejected", r, ok=False, message="schema_version")

    # --min-throughput-ratio: the good report's headline is 1.8x.
    expect("headline above the ratio floor passes", good_report(),
           "--min-throughput-ratio", "1.15")
    expect("headline below the ratio floor fails", good_report(),
           "--min-throughput-ratio", "2.0", ok=False,
           message="below required")
    expect("ratio gate ungated report still passes", good_report())

    # schema 3 phase breakdown: required per cell, all four fields.
    r = good_report()
    del r["cells"][1]["phase_breakdown"]
    expect("schema-3 cell without phase_breakdown rejected", r, ok=False,
           message="phase_breakdown")
    r = good_report()
    del r["cells"][0]["phase_breakdown"]["advance_ns"]
    expect("phase_breakdown missing a phase rejected", r, ok=False,
           message="advance_ns")
    r = good_report()
    r["cells"][0]["phase_breakdown"]["drain_ns"] = -1
    expect("negative phase time rejected", r, ok=False, message="drain_ns")
    # A version-2 report (pre-phase-timing) is still accepted without it.
    r = good_report()
    r["schema_version"] = 2
    for c in r["cells"]:
        del c["phase_breakdown"]
    expect("schema-2 report without phase_breakdown passes", r)

    # schema 4: simd level, timed_seconds, float-typed cycles_per_sec,
    # phase-sum budget, and the _simd_scalar twin pairing.
    expect("well-formed v4 report passes", good_v4_report())

    r = good_v4_report()
    r["cells"][0]["cycles_per_sec"] = int(r["cells"][0]["cycles_per_sec"])
    expect("int-typed cycles_per_sec rejected", r, ok=False,
           message="float")

    r = good_v4_report()
    r["cells"][0]["cycles_per_sec"] = 4300 / 0.5 * 3  # wrong denominator
    expect("cycles_per_sec inconsistent with seconds rejected", r, ok=False,
           message="inconsistent")

    r = good_v4_report()
    del r["cells"][1]["timed_seconds"]
    expect("v4 cell without timed_seconds rejected", r, ok=False,
           message="timed_seconds")

    r = good_v4_report()
    r["cells"][0]["simd"] = "avx512"
    expect("unknown simd level rejected", r, ok=False, message="simd")

    # cell() carries ~20.1 ms of phase time; 12 ms of timed_seconds only
    # covers that inside a 2-worker budget.
    r = good_v4_report()
    r["cells"][0]["timed_seconds"] = 0.012
    expect("phase sum beyond timed_seconds rejected", r, ok=False,
           message="budget")
    r = good_v4_report()
    r["cells"][1]["timed_seconds"] = 0.012  # threads=2 cell
    expect("multi-thread phase sum within worker budget passes", r)

    r = good_v4_report()
    del r["cells"][0]["speedup_vs_simd_scalar"]
    expect("simd twin without attribution ratio rejected", r, ok=False,
           message="speedup_vs_simd_scalar")

    r = good_v4_report()
    r["cells"][3]["simd"] = "avx2"  # the twin must actually run scalar
    expect("simd twin not pinned scalar rejected", r, ok=False,
           message="not 'scalar'")

    r = good_v4_report()
    r["cells"][3]["delivered"] -= 5
    r["cells"][3]["total_hops"] = r["cells"][3]["delivered"] * 8
    r["cells"][3]["packets_per_sec"] = \
        r["cells"][3]["delivered"] / r["cells"][3]["seconds"]
    r["cells"][3]["hops_per_sec"] = \
        r["cells"][3]["total_hops"] / r["cells"][3]["seconds"]
    expect("simd twin counter drift rejected", r, ok=False,
           message="SIMD dispatch determinism")

    # schema 5: the top-level provenance block, the checkpoint header's
    # identifying tuple mirrored into the report.
    expect("well-formed v5 report passes", good_v5_report())

    r = good_v5_report()
    del r["provenance"]
    expect("v5 report without provenance rejected", r, ok=False,
           message="provenance")

    r = good_v5_report()
    del r["provenance"]["build_type"]
    expect("provenance missing a field rejected", r, ok=False,
           message="build_type")

    r = good_v5_report()
    r["provenance"]["simd"] = "neon"
    expect("provenance unknown simd level rejected", r, ok=False,
           message="simd")

    r = good_v5_report()
    r["provenance"]["schema_version"] = 4
    expect("provenance schema_version disagreement rejected", r, ok=False,
           message="disagrees")

    r = good_v5_report()
    r["provenance"]["build_type"] = "release"
    expect("provenance unknown build_type rejected", r, ok=False,
           message="build_type")

    r = good_v5_report()
    r["provenance"]["threads"] = 0
    expect("provenance nonpositive threads rejected", r, ok=False,
           message="threads")

    # A v4 report (no provenance) must remain accepted.
    expect("v4 report without provenance still passes", good_v4_report())

    if FAILURES:
        print("check_bench_json_test: FAIL", file=sys.stderr)
        for f in FAILURES:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("check_bench_json_test: all cases passed")


if __name__ == "__main__":
    main()
