// FFGCR tests (paper Algorithm 3): validity, termination at the
// destination, simplicity (cycle-freedom), and — the paper's optimality
// claim — route length equal to the BFS shortest path for every pair of
// every small GC, across moduli.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/rng.hpp"
#include "graph/graph.hpp"
#include "graph/graph.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

class FfgcrExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(FfgcrExhaustiveTest, OptimalForEveryPair) {
  const auto [n, alpha] = GetParam();
  if (alpha > n) GTEST_SKIP();
  const GaussianCube gc(n, pow2(alpha));
  const FfgcrRouter router(gc);
  const Graph g(gc);
  for (NodeId s = 0; s < gc.node_count(); ++s) {
    const auto dist = bfs_distances(g, s);
    for (NodeId d = 0; d < gc.node_count(); ++d) {
      const RoutingResult result = router.plan(s, d);
      ASSERT_TRUE(result.delivered());
      const Route& route = *result.route;
      ASSERT_TRUE(validate_route(gc, route).ok)
          << validate_route(gc, route).reason;
      ASSERT_EQ(route.source(), s);
      ASSERT_EQ(route.destination(), d);
      ASSERT_TRUE(route.is_simple()) << "fault-free routes are cycle-free";
      // The paper's optimality claim, against BFS ground truth:
      ASSERT_EQ(route.length(), dist[d]) << gc.name() << " s=" << s
                                         << " d=" << d;
      // And the closed-form optimal length agrees.
      ASSERT_EQ(router.optimal_length(s, d), dist[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCubes, FfgcrExhaustiveTest,
    ::testing::Combine(::testing::Values<Dim>(2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values<Dim>(0, 1, 2, 3)));

TEST(Ffgcr, SelfRouteIsEmpty) {
  const GaussianCube gc(8, 4);
  const FfgcrRouter router(gc);
  const auto result = router.plan(123, 123);
  ASSERT_TRUE(result.delivered());
  EXPECT_TRUE(result.route->empty());
}

TEST(Ffgcr, ModulusOneReducesToHypercubeRouting) {
  const GaussianCube gc(6, 1);
  const FfgcrRouter router(gc);
  for (NodeId s = 0; s < 64; s += 7) {
    for (NodeId d = 0; d < 64; d += 5) {
      const auto result = router.plan(s, d);
      ASSERT_TRUE(result.delivered());
      EXPECT_EQ(result.route->length(), hamming(s, d));
    }
  }
}

TEST(Ffgcr, PureTreeCaseWhenModulusDominates) {
  // M >= 2^n: the cube *is* the Gaussian Tree; routes equal tree paths.
  const GaussianCube gc(5, 32);
  const FfgcrRouter router(gc);
  const GaussianTree tree(5);
  for (NodeId s = 0; s < 32; ++s) {
    for (NodeId d = 0; d < 32; ++d) {
      const auto result = router.plan(s, d);
      ASSERT_TRUE(result.delivered());
      EXPECT_EQ(result.route->length(), tree.distance(s, d));
    }
  }
}

TEST(Ffgcr, MessageOverheadIsLinear) {
  // The header (hop list) of an optimal route is bounded by the network
  // diameter — O(n) per the paper's claim 1.
  const GaussianCube gc(10, 4);
  const FfgcrRouter router(gc);
  const std::size_t diam = 4 * 10;  // generous linear envelope
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto result = router.plan(s, d);
    ASSERT_TRUE(result.delivered());
    EXPECT_LE(result.route->length(), diam);
  }
}

TEST(GcRoutePlan, GroupsHighBitsByOwningClass) {
  const GaussianCube gc(10, 4);  // alpha = 2
  const GaussianTree tree(2);
  const NodeId s = 0;
  const NodeId d = (NodeId{1} << 6) | (NodeId{1} << 7) | 1u;
  const auto plan = make_gc_route_plan(gc, tree, s, d);
  // Bit 6 belongs to class 6 % 4 = 2; bit 7 to class 3; bit 0 is a tree
  // dimension and appears in the walk, not in pending_high.
  ASSERT_EQ(plan.pending_high.size(), 2u);
  EXPECT_EQ(plan.pending_high.at(2), NodeId{1} << 6);
  EXPECT_EQ(plan.pending_high.at(3), NodeId{1} << 7);
  EXPECT_EQ(plan.class_walk.front(), gc.ending_class(s));
  EXPECT_EQ(plan.class_walk.back(), gc.ending_class(d));
}

TEST(Ecube, MatchesHammingOnHypercube) {
  const Hypercube h(6);
  const EcubeRouter router(h);
  for (NodeId s = 0; s < 64; s += 3) {
    for (NodeId d = 0; d < 64; d += 7) {
      const auto result = router.plan(s, d);
      ASSERT_TRUE(result.delivered());
      EXPECT_EQ(result.route->length(), hamming(s, d));
      EXPECT_TRUE(validate_route(h, *result.route).ok);
      EXPECT_EQ(result.route->destination(), d);
    }
  }
}

TEST(Ecube, RejectsDilutedCube) {
  const GaussianCube gc(6, 4);
  const EcubeRouter router(gc);
  // Some pair requires a missing link under dimension order.
  EXPECT_THROW((void)router.plan(0, 0b111100), std::invalid_argument);
}

}  // namespace
}  // namespace gcube
