// CLI argument parser tests.
#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hpp"

namespace gcube {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const auto args = parse({"--n=10", "--rate=0.5"});
  EXPECT_EQ(args.get_int("n", 0), 10);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const auto args = parse({"--n", "12", "--name", "hello"});
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(Cli, BooleanFlags) {
  const auto args = parse({"--verbose", "--n", "3"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Cli, Defaults) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("d", 1.5), 1.5);
}

TEST(Cli, Positional) {
  const auto args = parse({"alpha", "--n", "1", "beta"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "alpha");
  EXPECT_EQ(args.positional()[1], "beta");
}

TEST(Cli, AllowRejectsUnknownFlags) {
  auto args = parse({"--speling-mistake", "1"});
  EXPECT_THROW(args.allow({"n", "rate"}), std::invalid_argument);
  auto ok = parse({"--n", "1"});
  ok.allow({"n", "rate"});  // must not throw
}

TEST(Cli, TypeErrorsAreLoud) {
  const auto args = parse({"--n", "abc"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, BareDashesRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Cli, LastValueWins) {
  const auto args = parse({"--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

}  // namespace
}  // namespace gcube
