// The parallel core's determinism contract, as a property test.
//
// For a fixed seed, the full SimMetrics of a run — latency histogram
// included — must be bit-identical for ANY thread count, because every
// per-node decision depends only on start-of-cycle committed state,
// per-(node, cycle) counter RNG draws, and canonical (source-ascending)
// queue order. The matrix here crosses topologies {GC(8,2), GC(10,4)},
// fault regimes {static pattern, mid-run schedule}, and thread counts
// {1, 2, 4, hardware, auto}; explicit counts above the core count
// genuinely oversubscribe (allow_oversubscribe bypasses the default clamp
// to hardware_concurrency), so this exercises real interleavings even on
// small CI machines. The same binary runs under the ThreadSanitizer CI
// job. Both execution modes are covered: the default next-hop-fabric +
// active-set loop, and the legacy full-scan path. The whole matrix runs
// on the fused cycle loop (one dispatch per run, barrier_serial commits,
// parity-double-buffered rings, batched drains) — so every case is also
// a regression test that fusing the phases changed nothing observable.
// The BatchedAdvanceEqualsScalar* cases additionally pin the batched
// word-at-a-time advance to the scalar per-node scan bit-for-bit, across
// steered and planned traffic, static and scheduled faults, finite
// buffers, and thread counts {1, 2, 4}. The SimdLevelsEqualScalar* cases
// sweep every SIMD dispatch level the CPU supports (scalar, SSE4.2, AVX2)
// against the scalar threads=1 reference over the same axes — the
// vectorized classify / fabric-lookup / counter-RNG kernels batch pure
// integer functions, so every level must reproduce the metrics exactly.
//
// Cache counters (SimMetrics::plan_cache / hop_cache) are deliberately NOT
// compared: the hit/miss split depends on which worker reaches a cold key
// first. deterministic_equals() excludes them by contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/simd.hpp"

namespace gcube {
namespace {

/// Field-by-field comparison so a contract violation names the metric that
/// diverged instead of a bare deterministic_equals() == false.
void expect_identical(const SimMetrics& got, const SimMetrics& want,
                      const std::string& label) {
  EXPECT_EQ(got.generated, want.generated) << label;
  EXPECT_EQ(got.delivered, want.delivered) << label;
  EXPECT_EQ(got.carryover_delivered, want.carryover_delivered) << label;
  EXPECT_EQ(got.dropped, want.dropped) << label;
  EXPECT_EQ(got.total_latency, want.total_latency) << label;
  EXPECT_EQ(got.total_hops, want.total_hops) << label;
  EXPECT_EQ(got.service_ops, want.service_ops) << label;
  EXPECT_EQ(got.peak_in_flight, want.peak_in_flight) << label;
  EXPECT_EQ(got.injections_blocked, want.injections_blocked) << label;
  EXPECT_EQ(got.stalled_cycles, want.stalled_cycles) << label;
  EXPECT_EQ(got.deadlocked, want.deadlocked) << label;
  EXPECT_EQ(got.fault_events, want.fault_events) << label;
  EXPECT_EQ(got.reroutes, want.reroutes) << label;
  EXPECT_EQ(got.dropped_no_route, want.dropped_no_route) << label;
  EXPECT_EQ(got.dropped_hop_limit, want.dropped_hop_limit) << label;
  EXPECT_EQ(got.repairs_applied, want.repairs_applied) << label;
  EXPECT_EQ(got.parked_retries, want.parked_retries) << label;
  EXPECT_EQ(got.retransmits, want.retransmits) << label;
  EXPECT_EQ(got.gave_up, want.gave_up) << label;
  EXPECT_EQ(got.in_flight_at_end, want.in_flight_at_end) << label;
  EXPECT_EQ(got.orphaned_by_node_fault, want.orphaned_by_node_fault)
      << label;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(got.latency_histogram.bucket(i),
              want.latency_histogram.bucket(i))
        << label << " histogram bucket " << i;
  }
  EXPECT_TRUE(got.deterministic_equals(want)) << label;
}

std::vector<std::uint32_t> thread_matrix() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // 0 = auto (ThreadBudget grant) rides along: whatever it resolves to
  // must produce the same metrics too.
  return {1, 2, 4, hw, 0};
}

void expect_thread_invariant(GcSimSpec spec, const std::string& label) {
  spec.sim.threads = 1;
  const GcSimOutcome baseline = run_gc_simulation(spec);
  ASSERT_GT(baseline.metrics.generated, 0u) << label << ": inert workload";
  for (const std::uint32_t threads : thread_matrix()) {
    if (threads == 1) continue;
    spec.sim.threads = threads;
    const GcSimOutcome outcome = run_gc_simulation(spec);
    expect_identical(outcome.metrics, baseline.metrics,
                     label + " threads=" + std::to_string(threads) +
                         " vs threads=1");
  }
}

/// The batched word-at-a-time advance must be BIT-IDENTICAL to the scalar
/// active-set scan — a stronger property than the active_set toggle (which
/// legitimately changes injection draw-stream layout): batching only
/// reorders reads, never decisions. Compares every batch on/off × thread
/// count combination against one scalar threads=1 reference.
void expect_batch_invariant(GcSimSpec spec, const std::string& label) {
  spec.sim.batch = false;
  spec.sim.threads = 1;
  const GcSimOutcome scalar = run_gc_simulation(spec);
  ASSERT_GT(scalar.metrics.generated, 0u) << label << ": inert workload";
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    spec.sim.threads = threads;
    spec.sim.batch = true;
    const GcSimOutcome batched = run_gc_simulation(spec);
    expect_identical(batched.metrics, scalar.metrics,
                     label + " batched threads=" + std::to_string(threads) +
                         " vs scalar threads=1");
    if (threads != 1) {
      spec.sim.batch = false;
      const GcSimOutcome off = run_gc_simulation(spec);
      expect_identical(off.metrics, scalar.metrics,
                       label + " scalar threads=" + std::to_string(threads) +
                           " vs scalar threads=1");
    }
  }
}

/// Pins the process-wide SIMD dispatch level for one scope and restores
/// the entry level on exit, so a failing cell cannot poison later tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prior_(simd_level()) {
    set_simd_level(level);
  }
  ~ScopedSimdLevel() { set_simd_level(prior_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prior_;
};

/// Every dispatch level this CPU can actually run. Levels above the
/// detected one are excluded rather than requested: set_simd_level would
/// clamp them, silently re-testing kernels already covered.
std::vector<SimdLevel> simd_matrix() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (detected_simd_level() >= SimdLevel::kSse) {
    levels.push_back(SimdLevel::kSse);
  }
  if (detected_simd_level() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// The SIMD kernels (classify, fabric lookup, counter-RNG batch) must be
/// BIT-IDENTICAL to the scalar reference at every dispatch level and
/// thread count: they batch pure integer functions, so vectorization may
/// reorder reads but never change a decision. One scalar threads=1
/// reference, then every available level × {1, 2, 4} threads against it.
void expect_simd_invariant(GcSimSpec spec, const std::string& label) {
  spec.sim.threads = 1;
  GcSimOutcome reference;
  {
    ScopedSimdLevel pin(SimdLevel::kScalar);
    reference = run_gc_simulation(spec);
  }
  ASSERT_GT(reference.metrics.generated, 0u) << label << ": inert workload";
  for (const SimdLevel level : simd_matrix()) {
    ScopedSimdLevel pin(level);
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      spec.sim.threads = threads;
      const GcSimOutcome outcome = run_gc_simulation(spec);
      expect_identical(outcome.metrics, reference.metrics,
                       label + " simd=" + to_string(level) + " threads=" +
                           std::to_string(threads) + " vs scalar threads=1");
    }
  }
}

GcSimSpec base_spec(Dim n, std::uint64_t modulus) {
  GcSimSpec spec;
  spec.n = n;
  spec.modulus = modulus;
  spec.router = SimRouterKind::kFtgcr;
  spec.sim.injection_rate = 0.05;
  spec.sim.warmup_cycles = 30;
  spec.sim.measure_cycles = 200;
  spec.sim.seed = 99;
  // The matrix intentionally runs more workers than this machine has
  // cores; the default clamp would quietly serialize those cells.
  spec.sim.allow_oversubscribe = true;
  return spec;
}

/// Mid-run node and link deaths straddling the warmup boundary, built on
/// the topology's own size so both cells stress orphaning, re-routing, and
/// en-route drops.
FaultSchedule scheduled_faults(const GcSimSpec& spec) {
  const GaussianCube gc(spec.n, spec.modulus);
  const NodeId nodes = static_cast<NodeId>(gc.node_count());
  FaultSchedule schedule;
  schedule.fail_node_at(10, nodes / 3);
  schedule.fail_link_at(10, nodes / 2 + 1, 0);
  schedule.fail_node_at(45, nodes / 5 + 2);
  schedule.fail_link_at(90, nodes - 7, 1);
  schedule.fail_node_at(140, 2 * nodes / 3);
  return schedule;
}

TEST(Determinism, Gc8x2StaticFaults) {
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  expect_thread_invariant(spec, "GC(8,2) static");
}

TEST(Determinism, Gc8x2ScheduledFaults) {
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  expect_thread_invariant(spec, "GC(8,2) scheduled");
}

TEST(Determinism, Gc10x4StaticFaults) {
  GcSimSpec spec = base_spec(10, 4);
  spec.faulty_nodes = 6;
  spec.sim.injection_rate = 0.04;
  expect_thread_invariant(spec, "GC(10,4) static");
}

TEST(Determinism, Gc10x4ScheduledFaults) {
  GcSimSpec spec = base_spec(10, 4);
  spec.sim.injection_rate = 0.04;
  spec.schedule = scheduled_faults(spec);
  expect_thread_invariant(spec, "GC(10,4) scheduled");
}

TEST(Determinism, LegacyScanModeIsThreadInvariantToo) {
  // The pre-fabric execution path (full per-node scan, Bernoulli
  // injection, plan-at-injection) stays available behind the toggles and
  // must honor the same contract.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  spec.sim.fabric = false;
  spec.sim.active_set = false;
  expect_thread_invariant(spec, "GC(8,2) legacy scan");
}

TEST(Determinism, FiniteBuffersBackpressureIsThreadInvariant) {
  // Exercises the snapshot-occupancy backpressure path and blocked
  // injections — the part of the contract that replaced live occupancy.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 3;
  spec.sim.injection_rate = 0.20;
  spec.sim.buffer_limit = 3;
  expect_thread_invariant(spec, "GC(8,2) finite buffers");
}

TEST(Determinism, RecoveryRetriesAreThreadInvariant) {
  // Transient faults that heal, with parking and retransmits on. In the
  // fused cycle loop the fault/repair application and the park wake both
  // run inside the barrier's serial section (cycle_prework), and stranded
  // packets ride the per-shard parity rings — none of which may depend on
  // how nodes are sharded.
  GcSimSpec spec = base_spec(8, 2);
  const GaussianCube gc(spec.n, spec.modulus);
  const NodeId nodes = static_cast<NodeId>(gc.node_count());
  FaultSchedule schedule;
  schedule.fail_node_at(20, nodes / 4);
  schedule.repair_node_at(70, nodes / 4);
  schedule.fail_link_at(40, nodes / 2, 1);
  schedule.repair_link_at(120, nodes / 2, 1);
  schedule.fail_node_at(100, 3 * nodes / 4);
  spec.schedule = schedule;
  spec.sim.retry_limit = 4;
  spec.sim.retry_backoff_base = 2;
  spec.sim.retry_budget = 2;
  expect_thread_invariant(spec, "GC(8,2) transient recovery");
}

TEST(Determinism, FiniteBuffersWithScheduledFaultsIsThreadInvariant) {
  // The two extra synchronization points at once: finite buffers add the
  // mid-cycle occupancy-snapshot barrier between phases A and B, and the
  // schedule adds serial fault prework between cycles. Backpressure,
  // blocked injections, and mid-run orphaning must all commute with the
  // thread count.
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  spec.sim.injection_rate = 0.20;
  spec.sim.buffer_limit = 3;
  expect_thread_invariant(spec, "GC(8,2) finite buffers + schedule");
}

TEST(Determinism, BatchedAdvanceEqualsScalarSteeredStatic) {
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  expect_batch_invariant(spec, "GC(8,2) steered static");
}

TEST(Determinism, BatchedAdvanceEqualsScalarSteeredScheduled) {
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  expect_batch_invariant(spec, "GC(8,2) steered scheduled");
}

TEST(Determinism, BatchedAdvanceEqualsScalarPlannedStatic) {
  // fabric off = plan-at-injection packets: the batched classify sees no
  // steered fast path, so this pins the arrival-detection and full-path
  // hint plumbing instead.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  spec.sim.fabric = false;
  expect_batch_invariant(spec, "GC(8,2) planned static");
}

TEST(Determinism, BatchedAdvanceEqualsScalarPlannedScheduled) {
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  spec.sim.fabric = false;
  expect_batch_invariant(spec, "GC(8,2) planned scheduled");
}

TEST(Determinism, BatchedAdvanceEqualsScalarFiniteBuffers) {
  // Finite buffers disable on-the-spot retirement in the batched pass
  // (and its depth-1 inline apply); backpressure decisions must still
  // match the scalar scan exactly.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 3;
  spec.sim.injection_rate = 0.20;
  spec.sim.buffer_limit = 3;
  expect_batch_invariant(spec, "GC(8,2) finite buffers");
}

TEST(Determinism, SimdLevelsEqualScalarSteeredStatic) {
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  expect_simd_invariant(spec, "GC(8,2) steered static");
}

TEST(Determinism, SimdLevelsEqualScalarSteeredScheduled) {
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  expect_simd_invariant(spec, "GC(8,2) steered scheduled");
}

TEST(Determinism, SimdLevelsEqualScalarPlannedStatic) {
  // fabric off = plan-at-injection packets: the vector classify sees no
  // steered fast path, so this cell pins the arrival-predicate lanes and
  // the batched injection keying instead of the gathered table lookups.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  spec.sim.fabric = false;
  expect_simd_invariant(spec, "GC(8,2) planned static");
}

TEST(Determinism, SimdLevelsEqualScalarPlannedScheduled) {
  GcSimSpec spec = base_spec(8, 2);
  spec.schedule = scheduled_faults(spec);
  spec.sim.fabric = false;
  expect_simd_invariant(spec, "GC(8,2) planned scheduled");
}

TEST(Determinism, SimdLevelsEqualScalarBernoulliScan) {
  // active_set off is the one mode whose injection predicate runs through
  // counter_bernoulli_mask every cycle (the active-set loop only keys
  // batches); the mask-then-filter scan must reproduce the per-node
  // virtual calls draw for draw.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  spec.sim.active_set = false;
  expect_simd_invariant(spec, "GC(8,2) bernoulli scan");
}

TEST(Determinism, RepeatedRunsOfOneSimulatorAgree) {
  // run() rebuilds all state, so the same NetworkSim must reproduce
  // itself — and the cache counters must show the sim actually exercised
  // the router's memoization during measurement.
  GcSimSpec spec = base_spec(8, 2);
  spec.faulty_nodes = 5;
  spec.sim.threads = 2;
  const GcSimOutcome a = run_gc_simulation(spec);
  const GcSimOutcome b = run_gc_simulation(spec);
  expect_identical(a.metrics, b.metrics, "repeat run");
  EXPECT_GT(a.metrics.plan_cache.lookups(), 0u);
}

}  // namespace
}  // namespace gcube
