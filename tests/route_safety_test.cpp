// Regression: no FTGCR route — including the global_bfs fallback tails
// engaged when a fault pattern violates the paper's preconditions — ever
// steps onto a faulty node or traverses an unusable link. Checked hop by
// hop (not only via validate_route) over randomized fault patterns that
// are deliberately *not* precondition-filtered, so the dense ones force
// the fallback machinery to engage.
#include <gtest/gtest.h>

#include <cstddef>

#include "fault/fault_set.hpp"
#include "routing/ftgcr.hpp"
#include "routing/route.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

/// Walks the route one hop at a time, asserting every intermediate state
/// is safe under `faults`.
void check_hop_by_hop(const GaussianCube& gc, const FaultSet& faults,
                      const Route& route, NodeId d) {
  NodeId cur = route.source();
  ASSERT_FALSE(faults.node_faulty(cur)) << "source faulty";
  for (const Dim c : route.hops()) {
    ASSERT_LT(c, gc.dims()) << "dimension out of range";
    ASSERT_TRUE(gc.has_link(cur, c))
        << "node " << cur << " has no dimension-" << c << " link";
    ASSERT_FALSE(faults.link_marked(cur, c))
        << "route traverses a marked-faulty link at " << cur;
    ASSERT_TRUE(faults.link_usable(cur, c))
        << "route traverses an unusable link at " << cur;
    cur = flip_bit(cur, c);
    ASSERT_FALSE(faults.node_faulty(cur))
        << "route visits faulty node " << cur;
  }
  ASSERT_EQ(cur, d) << "route must end at the destination";
}

/// Random fault pattern with `nodes` node faults and `links` link marks —
/// intentionally not filtered through check_ftgcr_precondition.
FaultSet random_faults(const GaussianCube& gc, std::size_t nodes,
                       std::size_t links, Xoshiro256& rng) {
  FaultSet f;
  while (f.node_fault_count() < nodes) {
    f.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
  }
  std::size_t placed = 0;
  for (int attempt = 0; placed < links && attempt < 10000; ++attempt) {
    const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto c = static_cast<Dim>(rng.below(gc.dims()));
    if (!gc.has_link(u, c)) continue;
    f.fail_link(u, c);
    placed = f.link_fault_count();
  }
  return f;
}

TEST(RouteSafety, FtgcrNeverTraversesFaultsUnderRandomPatterns) {
  struct Shape {
    Dim n;
    std::uint64_t modulus;
  };
  const Shape shapes[] = {{6, 1}, {6, 2}, {7, 2}, {7, 4}, {8, 4}};
  Xoshiro256 rng(0xFA17);
  std::size_t delivered = 0;
  std::size_t fallback_tails = 0;
  for (const Shape& shape : shapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    for (int pattern = 0; pattern < 12; ++pattern) {
      // Ramp density: late patterns are far past the tolerance bound and
      // reliably exercise the global re-plan fallback.
      const auto node_faults = static_cast<std::size_t>(1 + pattern);
      const auto link_faults = static_cast<std::size_t>(pattern / 2);
      const FaultSet faults = random_faults(gc, node_faults, link_faults, rng);
      const FtgcrRouter router(gc, faults);
      for (int trial = 0; trial < 60; ++trial) {
        const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
        const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
        if (faults.node_faulty(s) || faults.node_faulty(d)) continue;
        FtgcrStats stats;
        const RoutingResult result = router.plan_with_stats(s, d, stats);
        // Unfiltered patterns may legitimately be unroutable (network cut);
        // the contract under test is that *returned* routes are safe.
        if (!result.delivered()) continue;
        ++delivered;
        fallback_tails += stats.global_replans;
        check_hop_by_hop(gc, faults, *result.route, d);
      }
    }
  }
  EXPECT_GT(delivered, 1000u) << "test must exercise a real route volume";
  EXPECT_GT(fallback_tails, 0u)
      << "dense patterns must engage the global_bfs fallback so its tails "
         "are covered by the hop-by-hop check";
}

}  // namespace
}  // namespace gcube
