// Tree-routing tests: FindBP, the B(·) branch table, CT closed traversal,
// and the full inter-class walk planner (paper Algorithms 1-2, §4).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "routing/tree_routing.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

/// Reference branch point: the last common node of path(r, d) and L,
/// scanning from r (both are paths from r in a tree, so their intersection
/// is a common prefix).
NodeId branch_point_by_prefix(const GaussianTree& tree,
                              const std::vector<NodeId>& path, NodeId d) {
  const auto to_d = tree.path(path.front(), d);
  const std::unordered_set<NodeId> on_path(path.begin(), path.end());
  NodeId branch = path.front();
  for (const NodeId u : to_d) {
    if (!on_path.contains(u)) break;
    branch = u;
  }
  return branch;
}

TEST(FindBranchPoint, MatchesPrefixReferenceExhaustively) {
  const GaussianTree tree(5);
  const auto nodes = tree.node_count();
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<NodeId>(rng.below(nodes));
    const auto e = static_cast<NodeId>(rng.below(nodes));
    const auto path = tree.path(s, e);
    const std::unordered_set<NodeId> on_path(path.begin(), path.end());
    for (NodeId d = 0; d < nodes; ++d) {
      if (on_path.contains(d)) continue;
      EXPECT_EQ(find_branch_point(tree, path, d),
                branch_point_by_prefix(tree, path, d))
          << "s=" << s << " e=" << e << " d=" << d;
    }
  }
}

TEST(FindBranchPoint, RejectsTargetOnPath) {
  const GaussianTree tree(4);
  const auto path = tree.path(0, 9);
  EXPECT_THROW((void)find_branch_point(tree, path, path[1]), std::invalid_argument);
}

TEST(BranchTable, GroupsTargetsByBranchNode) {
  const GaussianTree tree(5);
  const auto path = tree.path(0, 21);
  std::vector<NodeId> targets;
  for (NodeId u = 0; u < tree.node_count(); ++u) targets.push_back(u);
  const auto table = build_branch_table(tree, path, targets);
  const std::unordered_set<NodeId> on_path(path.begin(), path.end());
  std::size_t grouped = 0;
  for (const auto& [branch, group] : table) {
    EXPECT_TRUE(on_path.contains(branch)) << "branch points lie on L";
    for (const NodeId d : group) {
      EXPECT_FALSE(on_path.contains(d));
      EXPECT_EQ(find_branch_point(tree, path, d), branch);
    }
    grouped += group.size();
  }
  // Every off-path target appears exactly once.
  EXPECT_EQ(grouped, tree.node_count() - on_path.size());
}

void expect_walk_valid(const GaussianTree& tree,
                       const std::vector<NodeId>& walk) {
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    const NodeId diff = walk[i] ^ walk[i + 1];
    ASSERT_EQ(popcount(diff), 1u) << "walk steps are single-bit";
    ASSERT_TRUE(tree.has_link(walk[i], lsb_index(diff)))
        << "walk steps are tree edges";
  }
}

TEST(ClosedTraverse, VisitsAllTargetsAndReturns) {
  const GaussianTree tree(5);
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto r = static_cast<NodeId>(rng.below(tree.node_count()));
    std::vector<NodeId> targets;
    const auto k = 1 + rng.below(5);
    for (std::uint64_t i = 0; i < k; ++i) {
      targets.push_back(static_cast<NodeId>(rng.below(tree.node_count())));
    }
    const auto walk = closed_traverse(tree, r, targets);
    ASSERT_EQ(walk.front(), r);
    ASSERT_EQ(walk.back(), r);
    expect_walk_valid(tree, walk);
    const std::set<NodeId> covered(walk.begin(), walk.end());
    for (const NodeId t : targets) {
      EXPECT_TRUE(covered.contains(t)) << "target " << t << " missed";
    }
    // Optimality: exactly twice the Steiner-tree edge count.
    std::vector<NodeId> terminals{r};
    terminals.insert(terminals.end(), targets.begin(), targets.end());
    EXPECT_EQ(walk.size() - 1, 2 * steiner_edge_count(tree, terminals));
  }
}

TEST(ClosedTraverse, NoTargetsIsTrivial) {
  const GaussianTree tree(4);
  const auto walk = closed_traverse(tree, 6, {});
  EXPECT_EQ(walk, std::vector<NodeId>{6});
}

TEST(PlanTreeWalk, CoversTargetsEndsAtDestination) {
  const GaussianTree tree(6);
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<NodeId>(rng.below(tree.node_count()));
    const auto d = static_cast<NodeId>(rng.below(tree.node_count()));
    std::vector<NodeId> targets;
    const auto k = rng.below(6);
    for (std::uint64_t i = 0; i < k; ++i) {
      targets.push_back(static_cast<NodeId>(rng.below(tree.node_count())));
    }
    const auto walk = plan_tree_walk(tree, s, d, targets);
    ASSERT_EQ(walk.front(), s);
    ASSERT_EQ(walk.back(), d);
    expect_walk_valid(tree, walk);
    const std::set<NodeId> covered(walk.begin(), walk.end());
    for (const NodeId t : targets) ASSERT_TRUE(covered.contains(t));
    // Optimality: 2 * steiner − dist(s, d).
    std::vector<NodeId> terminals{s, d};
    terminals.insert(terminals.end(), targets.begin(), targets.end());
    EXPECT_EQ(walk.size() - 1,
              2 * steiner_edge_count(tree, terminals) - tree.distance(s, d));
  }
}

TEST(PlanTreeWalk, WalkOptimalityAgainstBruteForce) {
  // Brute-force the minimum covering walk on a tiny tree by checking that
  // no shorter walk exists: the lower bound 2*steiner − dist is also an
  // information-theoretic lower bound, so equality implies optimality.
  const GaussianTree tree(3);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      for (NodeId t1 = 0; t1 < 8; ++t1) {
        for (NodeId t2 = 0; t2 < 8; ++t2) {
          const auto walk = plan_tree_walk(tree, s, d, {t1, t2});
          const std::size_t bound =
              2 * steiner_edge_count(tree, {s, d, t1, t2}) -
              tree.distance(s, d);
          ASSERT_EQ(walk.size() - 1, bound)
              << "s=" << s << " d=" << d << " t=" << t1 << "," << t2;
        }
      }
    }
  }
}

TEST(PlanTreeWalk, DegenerateCases) {
  const GaussianTree tree(4);
  EXPECT_EQ(plan_tree_walk(tree, 5, 5, {}), std::vector<NodeId>{5});
  // Target equal to source/destination adds nothing.
  EXPECT_EQ(plan_tree_walk(tree, 5, 5, {5}), std::vector<NodeId>{5});
  const auto direct = plan_tree_walk(tree, 0, 7, {});
  EXPECT_EQ(direct, tree.path(0, 7));
}

TEST(PlanTreeWalk, TargetsOnPathAddNoLength) {
  const GaussianTree tree(5);
  const auto path = tree.path(2, 27);
  const std::vector<NodeId> mid(path.begin() + 1, path.end() - 1);
  const auto walk = plan_tree_walk(tree, 2, 27, mid);
  EXPECT_EQ(walk, path);
}

TEST(SteinerEdgeCount, SingleTerminal) {
  const GaussianTree tree(4);
  EXPECT_EQ(steiner_edge_count(tree, {7}), 0u);
}

TEST(SteinerEdgeCount, PairIsDistance) {
  const GaussianTree tree(5);
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<NodeId>(rng.below(tree.node_count()));
    const auto b = static_cast<NodeId>(rng.below(tree.node_count()));
    EXPECT_EQ(steiner_edge_count(tree, {a, b}), tree.distance(a, b));
  }
}

}  // namespace
}  // namespace gcube
