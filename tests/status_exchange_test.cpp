// Fault-status-exchange tests (paper §1 claims 4-5): gossip over same-class
// links converges in few rounds, tables stay within F same-class-related
// entries, and convergence is complete per reachable component.
#include <gtest/gtest.h>

#include "fault/fault_set.hpp"
#include "fault/status_exchange.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

TEST(StatusExchange, FaultFreeConvergesImmediately) {
  const GaussianCube gc(8, 2);
  const auto result = simulate_status_exchange(gc, FaultSet{});
  EXPECT_EQ(result.rounds_to_convergence, 0u);
  EXPECT_EQ(result.max_table_entries, 0u);
  EXPECT_EQ(result.max_class_faults, 0u);
  EXPECT_TRUE(result.converged_complete);
}

TEST(StatusExchange, SingleLinkFaultSpreadsThroughItsGeec) {
  const GaussianCube gc(10, 2);  // Dim(0) = {2,4,6,8}
  FaultSet faults;
  faults.fail_link(0, 2);  // A-category fault in class 0
  const auto result = simulate_status_exchange(gc, faults);
  EXPECT_TRUE(result.converged_complete);
  EXPECT_EQ(result.max_class_faults, 1u);
  EXPECT_EQ(result.max_table_entries, 1u);
  // The GEEC has dimension 4; information crosses it in at most its
  // diameter many rounds.
  EXPECT_LE(result.rounds_to_convergence, 4u);
  EXPECT_GE(result.rounds_to_convergence, 1u);
}

TEST(StatusExchange, TreeLinkFaultIsKnownToBothClasses) {
  const GaussianCube gc(10, 2);
  FaultSet faults;
  faults.fail_link(0, 0);  // B-category fault between classes 0 and 1
  const auto result = simulate_status_exchange(gc, faults);
  EXPECT_TRUE(result.converged_complete);
  EXPECT_EQ(result.max_class_faults, 1u);  // related to both classes
  EXPECT_EQ(result.max_table_entries, 1u);
}

TEST(StatusExchange, ClaimFiveTableBound) {
  // Claim 5: each node maintains at most F addresses, F = faults related
  // to its class. Check across random fault sets.
  Xoshiro256 rng(91);
  for (const auto& [n, m] : std::vector<std::pair<Dim, std::uint64_t>>{
           {8u, 2u}, {9u, 4u}, {10u, 2u}}) {
    const GaussianCube gc(n, m);
    for (int trial = 0; trial < 15; ++trial) {
      FaultSet faults;
      const std::uint64_t count = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        if (rng.chance(0.5)) {
          faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
        } else {
          const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
          const auto c = static_cast<Dim>(rng.below(n));
          if (gc.has_link(u, c)) faults.fail_link(u, c);
        }
      }
      const auto result = simulate_status_exchange(gc, faults);
      EXPECT_LE(result.max_table_entries, result.max_class_faults)
          << gc.name();
      EXPECT_TRUE(result.converged_complete) << gc.name();
    }
  }
}

TEST(StatusExchange, RoundsBoundedByGeecDiameter) {
  // Claim 4 bounds the exchange rounds; the structural bound is the GEEC
  // diameter |Dim(k)| (a hypercube's diameter is its dimension), plus one
  // round of slack for the fixpoint check.
  Xoshiro256 rng(93);
  for (const auto& [n, m] : std::vector<std::pair<Dim, std::uint64_t>>{
           {9u, 2u}, {10u, 4u}, {11u, 2u}}) {
    const GaussianCube gc(n, m);
    Dim max_geec_dim = 0;
    for (NodeId k = 0; k < gc.class_count(); ++k) {
      max_geec_dim = std::max(max_geec_dim, gc.high_dim_count(k));
    }
    for (int trial = 0; trial < 10; ++trial) {
      FaultSet faults;
      faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
      const auto result = simulate_status_exchange(gc, faults);
      EXPECT_LE(result.rounds_to_convergence, max_geec_dim + 1u) << gc.name();
    }
  }
}

TEST(StatusExchange, HypercubeCaseHasOneClass) {
  // alpha = 0: one class covering the whole cube; a fault is class-related
  // to every node and spreads through all n dimensions.
  const GaussianCube gc(6, 1);
  FaultSet faults;
  faults.fail_node(0);
  const auto result = simulate_status_exchange(gc, faults);
  EXPECT_TRUE(result.converged_complete);
  EXPECT_EQ(result.max_class_faults, 1u);
  EXPECT_LE(result.rounds_to_convergence, 6u);
}

}  // namespace
}  // namespace gcube
