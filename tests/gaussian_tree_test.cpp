// Gaussian Graph / Gaussian Tree tests (paper §3).
//
//  * Theorem 2: G_n is a tree — connected with 2^n - 1 edges — for all
//    tested n, and the per-dimension edge counts match the proof's
//    E_n(0) = 2^(n-1), E_n(i) = 2^(n-1-i);
//  * Algorithm 1 (PC): produces the unique tree path — simple, adjacent
//    hops, optimal length versus BFS — for every pair in small trees;
//  * parent/children/diameter behave consistently.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

class GaussianTreeParamTest : public ::testing::TestWithParam<Dim> {};

TEST_P(GaussianTreeParamTest, IsATree) {
  const GaussianTree t(GetParam());
  const Graph g(t);
  EXPECT_EQ(g.edge_count(), t.node_count() - 1);
  EXPECT_TRUE(is_tree(g));
}

TEST_P(GaussianTreeParamTest, PerDimensionEdgeCountsMatchTheorem2) {
  const Dim n = GetParam();
  const GaussianTree t(n);
  std::vector<std::uint64_t> count(n, 0);
  for (NodeId u = 0; u < t.node_count(); ++u) {
    for (Dim c = 0; c < n; ++c) {
      if (t.has_link(u, c)) ++count[c];
    }
  }
  // Each link counted twice (once per endpoint).
  EXPECT_EQ(count[0], pow2(n));  // E_n(0) = 2^(n-1)
  for (Dim c = 1; c < n; ++c) {
    EXPECT_EQ(count[c], pow2(n - c)) << "E_n(" << c << ") = 2^(n-1-" << c
                                     << ")";
  }
}

TEST_P(GaussianTreeParamTest, PathConstructionIsTheTreePath) {
  const Dim n = GetParam();
  if (n > 6) GTEST_SKIP() << "exhaustive pair check kept to small trees";
  const GaussianTree t(n);
  const Graph g(t);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    const auto dist = bfs_distances(g, s);
    for (NodeId d = 0; d < t.node_count(); ++d) {
      const auto path = t.path(s, d);
      ASSERT_EQ(path.front(), s);
      ASSERT_EQ(path.back(), d);
      // Simple and adjacent:
      std::set<NodeId> seen(path.begin(), path.end());
      ASSERT_EQ(seen.size(), path.size()) << "PC path must be simple";
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const NodeId diff = path[i] ^ path[i + 1];
        ASSERT_EQ(popcount(diff), 1u);
        ASSERT_TRUE(t.has_link(path[i], lsb_index(diff)));
      }
      // Optimal (hence the unique tree path):
      ASSERT_EQ(path.size() - 1, dist[d]) << "s=" << s << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, GaussianTreeParamTest,
                         ::testing::Values<Dim>(1, 2, 3, 4, 5, 6, 8, 10));

TEST(GaussianTree, TrivialSingleNode) {
  const GaussianTree t(0);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.diameter(), 0u);
  EXPECT_EQ(t.path(0, 0), std::vector<NodeId>{0});
  EXPECT_EQ(t.distance(0, 0), 0u);
}

TEST(GaussianTree, PathDimsMatchesPath) {
  const GaussianTree t(6);
  const auto nodes = t.path(0b101101, 0b010010);
  const auto dims = t.path_dims(0b101101, 0b010010);
  ASSERT_EQ(dims.size(), nodes.size() - 1);
  NodeId cur = nodes.front();
  for (std::size_t i = 0; i < dims.size(); ++i) {
    cur = flip_bit(cur, dims[i]);
    EXPECT_EQ(cur, nodes[i + 1]);
  }
}

TEST(GaussianTree, NodeZeroIsALeaf) {
  // Node 0 fails the low-bits condition for every c >= 1, so its only edge
  // is the dimension-0 edge to node 1.
  const GaussianTree t(8);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.neighbors(0), std::vector<NodeId>{1});
}

TEST(GaussianTree, ParentChildrenConsistency) {
  const GaussianTree t(5);
  for (NodeId u = 1; u < t.node_count(); ++u) {
    const NodeId p = t.parent(u);
    ASSERT_TRUE(t.has_link(u, lsb_index(u ^ p)));
    // u must be among p's children.
    const auto kids = t.children(p);
    EXPECT_NE(std::find(kids.begin(), kids.end(), u), kids.end());
    // Parent is strictly closer to the root.
    EXPECT_EQ(t.distance(p, 0) + 1, t.distance(u, 0));
  }
  EXPECT_THROW((void)t.parent(0), std::invalid_argument);
}

TEST(GaussianTree, ChildrenPartitionNodes) {
  const GaussianTree t(5);
  std::size_t total = 0;
  for (NodeId u = 0; u < t.node_count(); ++u) total += t.children(u).size();
  EXPECT_EQ(total, t.node_count() - 1);  // every non-root has one parent
}

TEST(GaussianTree, DiameterMatchesAllPairsBfs) {
  for (const Dim n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const GaussianTree t(n);
    EXPECT_EQ(t.diameter(), diameter(Graph(t))) << "n=" << n;
  }
}

TEST(GaussianTree, DiameterGrowthIsModest) {
  // Paper Figure 2 plots D(T_n) against n and claims O(n); our exact
  // computation (bench/fig2_tree_diameter) shows mildly superlinear growth
  // (e.g. 81 at n = 14), which EXPERIMENTS.md discusses. Here we pin down
  // monotonicity and a quadratic envelope, and that growth per dimension
  // stays bounded.
  Dim prev = GaussianTree(2).diameter();
  for (Dim n = 3; n <= 14; ++n) {
    const Dim d = GaussianTree(n).diameter();
    EXPECT_GE(d, prev);
    EXPECT_LE(d, n * n) << "diameter stays well below quadratic";
    EXPECT_LE(d, 2 * prev + 1) << "growth per dimension is bounded";
    prev = d;
  }
}

TEST(GaussianTree, DistanceSymmetry) {
  const GaussianTree t(7);
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<NodeId>(rng.below(t.node_count()));
    const auto b = static_cast<NodeId>(rng.below(t.node_count()));
    EXPECT_EQ(t.distance(a, b), t.distance(b, a));
  }
}

}  // namespace
}  // namespace gcube
