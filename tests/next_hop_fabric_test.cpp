// Next-hop fabric property tests.
//
// The fabric compiles FFGCR's stepwise decision into flat tables
// (routing/next_hop_table.hpp) and the fault overlay flattens FaultSet
// queries into per-node masks (fault/overlay.hpp). The simulator steers
// packets through the composite (clean node -> fabric lookup, patched node
// -> full FTGCR machinery), so the properties checked here are exactly the
// ones the hot path relies on:
//
//  * the table answer is byte-identical to the plan machinery's first hop
//    for FFGCR always, and for FTGCR whenever the fault set is empty;
//  * following fabric hops reproduces the full optimal route;
//  * the overlay agrees bit-for-bit with the hash-based FaultSet view,
//    incrementally refreshed or rebuilt from scratch;
//  * at overlay-clean nodes the fabric hop is usable as-is; at patched
//    nodes the machinery's (version-stamped) answer is what steering uses.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/overlay.hpp"
#include "fault/preconditions.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "routing/next_hop_table.hpp"
#include "routing/route.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

struct Shape {
  Dim n;
  std::uint64_t modulus;
  std::size_t tolerable_faults;  // count check_ftgcr_precondition accepts
};

const Shape kShapes[] = {{8, 2, 3}, {10, 4, 8}, {12, 8, 4}};

FaultSet draw_faults(const GaussianCube& gc, std::size_t count,
                     std::uint64_t seed) {
  // Draw faulty nodes from the ending class with the largest GEEC
  // dimension: shapes like GC(12,8) have mostly 1-dimensional GEECs whose
  // tolerance bound (< |Dim(k)| faults per GEEC) admits no fault at all,
  // so unrestricted draws can never satisfy the precondition.
  NodeId cls = 0;
  for (NodeId k = 1; k < gc.class_count(); ++k) {
    if (gc.high_dim_count(k) > gc.high_dim_count(cls)) cls = k;
  }
  const std::uint64_t members = gc.node_count() >> gc.alpha();
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    FaultSet faults;
    while (faults.node_fault_count() < count) {
      faults.fail_node(
          static_cast<NodeId>((rng.below(members) << gc.alpha()) | cls));
    }
    if (check_ftgcr_precondition(gc, faults)) return faults;
  }
  ADD_FAILURE() << "no tolerable fault pattern found for " << gc.name();
  return {};
}

std::vector<std::pair<NodeId, NodeId>> sample_pairs(const GaussianCube& gc,
                                                    const FaultSet& faults,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < count) {
    const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
    const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
    if (s == d || faults.node_faulty(s) || faults.node_faulty(d)) continue;
    pairs.emplace_back(s, d);
  }
  return pairs;
}

TEST(NextHopFabricTest, FfgcrTableMatchesPlanMachineryByteForByte) {
  for (const Shape shape : kShapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    const FfgcrRouter router(gc);
    const NextHopFabric* fabric = router.fabric();
    ASSERT_NE(fabric, nullptr);
    ASSERT_TRUE(fabric->supported()) << gc.name();
    for (const auto& [s, d] : sample_pairs(gc, FaultSet{}, 400, 11)) {
      // The plan path exercises the full itinerary + build_route machinery;
      // the fabric must reproduce its first hop exactly.
      const RoutingResult plan = router.plan(s, d);
      ASSERT_TRUE(plan.delivered());
      EXPECT_EQ(fabric->fault_free_hop(s, d), plan.route->hops().front())
          << gc.name() << " s=" << s << " d=" << d;
      // And next_hop — the table-driven entry point — agrees with it.
      EXPECT_EQ(router.next_hop(s, d),
                std::optional<Dim>(plan.route->hops().front()));
    }
  }
}

TEST(NextHopFabricTest, FollowingFabricHopsWalksTheFullOptimalRoute) {
  for (const Shape shape : kShapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    const FfgcrRouter router(gc);
    const NextHopFabric& fabric = *router.fabric();
    for (const auto& [s, d] : sample_pairs(gc, FaultSet{}, 150, 23)) {
      const RoutingResult plan = router.plan(s, d);
      ASSERT_TRUE(plan.delivered());
      // Stepwise table iteration must retrace the planned route hop by hop
      // (memoryless re-derivation), so it terminates in exactly
      // optimal_length hops.
      NodeId cur = s;
      for (const Dim planned : plan.route->hops()) {
        ASSERT_NE(cur, d);
        const Dim c = fabric.fault_free_hop(cur, d);
        ASSERT_EQ(c, planned) << gc.name() << " s=" << s << " d=" << d
                              << " at=" << cur;
        ASSERT_TRUE(gc.has_link(cur, c));
        cur = flip_bit(cur, c);
      }
      EXPECT_EQ(cur, d);
      EXPECT_EQ(plan.route->length(), router.optimal_length(s, d));
    }
  }
}

TEST(NextHopFabricTest, FtgcrFaultFreeNextHopIsTheTableAnswer) {
  for (const Shape shape : kShapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    const FaultSet empty;
    const FtgcrRouter router(gc, empty);
    const NextHopFabric& fabric = *router.fabric();
    ASSERT_TRUE(fabric.supported());
    for (const auto& [s, d] : sample_pairs(gc, empty, 300, 37)) {
      // With zero faults the machinery's composite route is the fault-free
      // one, so its first hop must be byte-identical to the table's.
      const RoutingResult plan = router.plan(s, d);
      ASSERT_TRUE(plan.delivered());
      EXPECT_EQ(fabric.fault_free_hop(s, d), plan.route->hops().front());
      EXPECT_EQ(router.next_hop(s, d),
                std::optional<Dim>(fabric.fault_free_hop(s, d)));
    }
    // The fast path must leave the caches untouched.
    EXPECT_EQ(router.cache_stats().hop.lookups(), 0u);
  }
}

TEST(NextHopFabricTest, OverlayAgreesWithFaultSetHashView) {
  for (const Shape shape : kShapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    FaultSet faults = draw_faults(gc, shape.tolerable_faults, 91 + shape.n);
    faults.fail_link(1, 0);  // mix in a marked-link fault
    FaultOverlay overlay;
    overlay.attach(gc);
    overlay.refresh(faults);
    for (NodeId u = 0; u < gc.node_count(); ++u) {
      bool clean = true;
      for (Dim c = 0; c < gc.dims(); ++c) {
        const bool expect = gc.has_link(u, c) && faults.link_usable(u, c);
        ASSERT_EQ(overlay.link_usable(u, c), expect)
            << gc.name() << " u=" << u << " c=" << c;
        if (gc.has_link(u, c) && !faults.link_usable(u, c)) clean = false;
      }
      ASSERT_EQ(overlay.node_clean(u), clean) << gc.name() << " u=" << u;
    }
  }
}

TEST(NextHopFabricTest, IncrementalOverlayRefreshMatchesFreshRebuild) {
  const GaussianCube gc(10, 4);
  FaultSet faults;
  FaultOverlay incremental;
  incremental.attach(gc);
  incremental.refresh(faults);
  Xoshiro256 rng(77);
  for (int step = 0; step < 12; ++step) {
    if (step % 3 == 2) {
      faults.fail_link(static_cast<NodeId>(rng.below(gc.node_count())),
                       static_cast<Dim>(rng.below(gc.alpha() + 1)));
    } else {
      faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
    }
    incremental.refresh(faults);
    FaultOverlay fresh;
    fresh.attach(gc);
    fresh.refresh(faults);
    for (NodeId u = 0; u < gc.node_count(); ++u) {
      ASSERT_EQ(incremental.usable_mask(u), fresh.usable_mask(u))
          << "step=" << step << " u=" << u;
    }
  }
  // clear() + regrow past the old cursor positions must trigger a rebuild,
  // not a bogus incremental suffix application.
  faults.clear();
  for (int i = 0; i < 20; ++i) {
    faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
  }
  incremental.refresh(faults);
  FaultOverlay fresh;
  fresh.attach(gc);
  fresh.refresh(faults);
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    ASSERT_EQ(incremental.usable_mask(u), fresh.usable_mask(u)) << u;
  }
}

TEST(NextHopFabricTest, SteeringCompositeMatchesRoutersUnderFaults) {
  for (const Shape shape : kShapes) {
    const GaussianCube gc(shape.n, shape.modulus);
    const FaultSet faults =
        draw_faults(gc, shape.tolerable_faults, 137 + shape.n);
    const FfgcrRouter ffgcr(gc);
    const FtgcrRouter ftgcr(gc, faults);
    const NextHopFabric& fabric = *ftgcr.fabric();
    FaultOverlay overlay;
    overlay.attach(gc);
    overlay.refresh(faults);
    for (const auto& [s, d] : sample_pairs(gc, faults, 400, 53)) {
      // The table stays byte-identical to fault-blind FFGCR under any
      // fault set (FFGCR never consults faults).
      const std::optional<Dim> blind = ffgcr.plan(s, d).route->hops().front();
      ASSERT_EQ(std::optional<Dim>(fabric.fault_free_hop(s, d)), blind);
      if (overlay.node_clean(s)) {
        // Clean node: the simulator takes the fabric hop unchecked, so it
        // must be an existing, usable link.
        const Dim c = fabric.fault_free_hop(s, d);
        ASSERT_TRUE(gc.has_link(s, c)) << gc.name() << " s=" << s;
        ASSERT_TRUE(faults.link_usable(s, c)) << gc.name() << " s=" << s;
      } else {
        // Patched node: steering defers to the FTGCR machinery, and the
        // hop it returns must itself be traversable.
        const std::optional<Dim> hop = ftgcr.next_hop(s, d);
        ASSERT_TRUE(hop.has_value()) << gc.name() << " s=" << s;
        ASSERT_TRUE(gc.has_link(s, *hop));
        ASSERT_TRUE(faults.link_usable(s, *hop));
      }
    }
  }
}

TEST(NextHopFabricTest, LargeModulusFallsBackUnsupported) {
  // alpha = 4 would need a 2^24-entry tree table; the fabric declines and
  // the routers keep their plan-based stepwise path.
  const GaussianCube gc(12, 16);
  const FfgcrRouter router(gc);
  ASSERT_NE(router.fabric(), nullptr);
  EXPECT_FALSE(router.fabric()->supported());
  for (const auto& [s, d] : sample_pairs(gc, FaultSet{}, 50, 7)) {
    const RoutingResult plan = router.plan(s, d);
    ASSERT_TRUE(plan.delivered());
    EXPECT_EQ(router.next_hop(s, d),
              std::optional<Dim>(plan.route->hops().front()));
  }
}

TEST(NextHopFabricTest, TableFootprintStaysSparse) {
  EXPECT_LE(NextHopFabric(GaussianCube(10, 4)).table_bytes(), 512u);
  // alpha = 3: 8 * 8 * 256 tree entries + 8 class masks = 16 KiB + 32 B.
  EXPECT_LE(NextHopFabric(GaussianCube(12, 8)).table_bytes(), 17u * 1024u);
}

}  // namespace
}  // namespace gcube
