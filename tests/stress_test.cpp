// Cross-module randomized stress tests at moderate scale: larger networks
// than the exhaustive suites, sampled pairs, every invariant at once.
// Deterministic seeds keep failures reproducible.
#include <gtest/gtest.h>

#include "fault/preconditions.hpp"
#include "graph/algorithms.hpp"
#include "routing/collectives.hpp"
#include "routing/deadlock.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

struct Config {
  Dim n;
  std::uint64_t m;
};

const Config kConfigs[] = {{11, 2}, {12, 2}, {11, 4}, {12, 8}, {13, 2}};

TEST(Stress, FfgcrSampledOptimalityOnLargeCubes) {
  // BFS per sampled source is affordable; FFGCR must match it exactly.
  Xoshiro256 rng(201);
  for (const auto& [n, m] : kConfigs) {
    const GaussianCube gc(n, m);
    const FfgcrRouter router(gc);
    for (int trial = 0; trial < 4; ++trial) {
      const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto dist =
          bfs_distances(gc, s, [](NodeId, Dim) { return true; });
      for (int i = 0; i < 200; ++i) {
        const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
        const auto result = router.plan(s, d);
        ASSERT_TRUE(result.delivered());
        ASSERT_EQ(result.route->length(), dist[d])
            << gc.name() << " s=" << s << " d=" << d;
        ASSERT_EQ(result.route->destination(), d);
        ASSERT_TRUE(result.route->is_simple());
      }
    }
  }
}

TEST(Stress, FtgcrUnderMultipleFaultsOnLargeCubes) {
  Xoshiro256 rng(203);
  // Moduli where classes keep enough hypercube dimensions for multi-fault
  // patterns to be tolerable (GC(12,8) has |Dim(k)| == 1 for most classes,
  // so almost no node fault passes the Theorem-5 precondition there).
  const Config ft_configs[] = {{11, 2}, {12, 2}, {11, 4}, {13, 2}};
  for (const auto& [n, m] : ft_configs) {
    const GaussianCube gc(n, m);
    FaultSet faults;
    int guard = 0;
    do {
      faults.clear();
      while (faults.node_fault_count() < 3) {
        faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
      }
      const auto u = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto dims = gc.high_dims(gc.ending_class(u));
      if (!dims.empty()) faults.fail_link(u, dims[rng.below(dims.size())]);
    } while (!check_ftgcr_precondition(gc, faults) && ++guard < 300);
    ASSERT_TRUE(check_ftgcr_precondition(gc, faults))
        << gc.name() << ": sampler should find a tolerable pattern";
    const FtgcrRouter router(gc, faults);
    for (int i = 0; i < 400; ++i) {
      NodeId s, d;
      do {
        s = static_cast<NodeId>(rng.below(gc.node_count()));
      } while (faults.node_faulty(s));
      do {
        d = static_cast<NodeId>(rng.below(gc.node_count()));
      } while (faults.node_faulty(d));
      FtgcrStats stats;
      const auto result = router.plan_with_stats(s, d, stats);
      ASSERT_TRUE(result.delivered()) << gc.name() << " s=" << s
                                      << " d=" << d << ": " << result.failure;
      ASSERT_TRUE(validate_route(gc, faults, *result.route).ok);
      ASSERT_FALSE(stats.used_fallback);
    }
  }
}

TEST(Stress, VirtualChannelBudgetStaysBoundedOnLargeCubes) {
  // The vc budget tracks the modulus, not the dimension (EXPERIMENTS.md):
  // a descent can only happen at tree-walk edges, and an inter-class walk
  // has at most 2*(2^alpha - 1) of them (every tree edge at most twice).
  Xoshiro256 rng(205);
  for (const auto& [n, m] : kConfigs) {
    const GaussianCube gc(n, m);
    const FfgcrRouter router(gc);
    std::uint32_t max_vcs = 0;
    for (int i = 0; i < 2000; ++i) {
      const auto s = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto d = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto planned = router.plan(s, d);
      max_vcs = std::max(max_vcs, virtual_channels_required(*planned.route));
    }
    EXPECT_LE(max_vcs, 2 * gc.modulus() + 2) << gc.name();
  }
}

TEST(Stress, BroadcastFromRandomRootsOnLargeCubes) {
  Xoshiro256 rng(207);
  for (const auto& [n, m] : kConfigs) {
    const GaussianCube gc(n, m);
    for (int i = 0; i < 3; ++i) {
      const auto root = static_cast<NodeId>(rng.below(gc.node_count()));
      const auto tree = build_bfs_spanning_tree(gc, root);
      ASSERT_EQ(tree.reached, gc.node_count());
      const auto rounds = single_port_broadcast_rounds(tree);
      EXPECT_GE(rounds, static_cast<std::uint64_t>(n));
      EXPECT_LE(rounds, static_cast<std::uint64_t>(8) * n)
          << gc.name() << " root=" << root;
    }
  }
}

}  // namespace
}  // namespace gcube
