// Fault-tolerant hypercube routing tests.
//
// Two routers with different knowledge models:
//  * adaptive_subcube_route — the paper's purely local mechanism (preferred
//    dim, else masked spare, no 180° turns). Must deliver whenever faults
//    stay below the cube dimension; its length is exactly H + 2*spares, and
//    with only local knowledge spares can exceed the distinct fault count.
//  * informed_subcube_route — models the paper's fault-status exchange:
//    fault-aware BFS from the destination, walk downhill. Must produce the
//    exact fault-aware shortest path, which is within 2 hops per fault of
//    the fault-free optimum — the guarantee Theorem 3 builds on.
// Checked exhaustively over all link-fault sets of size < n on H_3 and a
// wide random sample on H_4/H_5, plus node faults and non-contiguous
// dimension sets; Wu's safety levels are validated against first principles.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "fault/fault_set.hpp"
#include "graph/algorithms.hpp"
#include "routing/hypercube_ft.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

LinkUsablePredicate usable_of(const FaultSet& faults) {
  return [&faults](NodeId u, Dim c) { return faults.link_usable(u, c); };
}

/// All links of H_n as (node, dim) with node's bit dim == 0.
std::vector<std::pair<NodeId, Dim>> all_links(Dim n) {
  std::vector<std::pair<NodeId, Dim>> links;
  for (NodeId u = 0; u < pow2(n); ++u) {
    for (Dim c = 0; c < n; ++c) {
      if (bit(u, c) == 0) links.emplace_back(u, c);
    }
  }
  return links;
}

/// Fault-aware BFS distances in H_n (ground truth).
std::vector<std::uint32_t> true_distances(Dim n, const FaultSet& faults,
                                          NodeId src) {
  const Hypercube h(n);
  return bfs_distances(
      h, src, [&faults](NodeId u, Dim c) { return faults.link_usable(u, c); });
}

void check_adaptive_all_pairs(Dim n, const FaultSet& faults,
                              bool expect_no_fallback) {
  const NodeId dims_mask = low_mask(n);
  const auto pred = usable_of(faults);
  for (NodeId s = 0; s < pow2(n); ++s) {
    if (faults.node_faulty(s)) continue;
    for (NodeId d = 0; d < pow2(n); ++d) {
      if (faults.node_faulty(d)) continue;
      SubcubeFtStats stats;
      const RoutingResult result =
          adaptive_subcube_route(s, d, dims_mask, pred, &stats);
      ASSERT_TRUE(result.delivered())
          << "n=" << n << " s=" << s << " d=" << d << ": " << result.failure;
      const Route& route = *result.route;
      ASSERT_EQ(route.destination(), d);
      NodeId cur = s;
      for (const Dim c : route.hops()) {
        ASSERT_TRUE(pred(cur, c));
        cur = flip_bit(cur, c);
      }
      if (expect_no_fallback) {
        ASSERT_FALSE(stats.used_fallback)
            << "n=" << n << " s=" << s << " d=" << d;
        // Without the safeguard, every hop is preferred or spare:
        ASSERT_EQ(route.length(), hamming(s, d) + 2 * stats.spare_hops);
      }
    }
  }
}

void check_informed_all_pairs(Dim n, const FaultSet& faults) {
  const NodeId dims_mask = low_mask(n);
  const auto pred = usable_of(faults);
  for (NodeId s = 0; s < pow2(n); ++s) {
    if (faults.node_faulty(s)) continue;
    const auto dist = true_distances(n, faults, s);
    for (NodeId d = 0; d < pow2(n); ++d) {
      if (faults.node_faulty(d)) continue;
      SubcubeFtStats stats;
      const RoutingResult result =
          informed_subcube_route(s, d, dims_mask, pred, &stats);
      ASSERT_TRUE(result.delivered())
          << "n=" << n << " s=" << s << " d=" << d << ": " << result.failure;
      const Route& route = *result.route;
      ASSERT_EQ(route.destination(), d);
      NodeId cur = s;
      for (const Dim c : route.hops()) {
        ASSERT_TRUE(pred(cur, c));
        cur = flip_bit(cur, c);
      }
      // Exactly the fault-aware shortest path.
      ASSERT_EQ(route.length(), dist[d]) << "n=" << n << " s=" << s
                                         << " d=" << d;
      // Theorem-3-grade bound: within 2 hops per fault in the cube.
      ASSERT_LE(route.length(),
                hamming(s, d) + 2 * (faults.link_fault_count() +
                                     faults.node_fault_count()));
    }
  }
}

TEST(AdaptiveSubcube, FaultFreeIsMinimal) {
  check_adaptive_all_pairs(4, FaultSet{}, true);
}

TEST(InformedSubcube, FaultFreeIsMinimal) {
  check_informed_all_pairs(4, FaultSet{});
}

TEST(AdaptiveSubcube, ExhaustiveLinkFaultsBelowDimensionH3) {
  const Dim n = 3;
  const auto links = all_links(n);
  for (std::size_t i = 0; i < links.size(); ++i) {
    FaultSet f1;
    f1.fail_link(links[i].first, links[i].second);
    check_adaptive_all_pairs(n, f1, true);
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      FaultSet f2;
      f2.fail_link(links[i].first, links[i].second);
      f2.fail_link(links[j].first, links[j].second);
      check_adaptive_all_pairs(n, f2, true);
    }
  }
}

TEST(InformedSubcube, ExhaustiveLinkFaultsBelowDimensionH3) {
  const Dim n = 3;
  const auto links = all_links(n);
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      FaultSet f;
      f.fail_link(links[i].first, links[i].second);
      f.fail_link(links[j].first, links[j].second);
      check_informed_all_pairs(n, f);
    }
  }
}

TEST(AdaptiveSubcube, RandomLinkFaultsBelowDimensionH4H5) {
  Xoshiro256 rng(41);
  for (const Dim n : {4u, 5u}) {
    const auto links = all_links(n);
    for (int trial = 0; trial < 120; ++trial) {
      FaultSet f;
      const std::uint64_t count = 1 + rng.below(n - 1);  // < n
      while (f.link_fault_count() < count) {
        const auto& [u, c] = links[rng.below(links.size())];
        f.fail_link(u, c);
      }
      check_adaptive_all_pairs(n, f, true);
    }
  }
}

TEST(InformedSubcube, RandomLinkFaultsBelowDimensionH4H5) {
  Xoshiro256 rng(42);
  for (const Dim n : {4u, 5u}) {
    const auto links = all_links(n);
    for (int trial = 0; trial < 60; ++trial) {
      FaultSet f;
      const std::uint64_t count = 1 + rng.below(n - 1);
      while (f.link_fault_count() < count) {
        const auto& [u, c] = links[rng.below(links.size())];
        f.fail_link(u, c);
      }
      check_informed_all_pairs(n, f);
    }
  }
}

TEST(AdaptiveSubcube, NodeFaultsBelowDimension) {
  Xoshiro256 rng(43);
  for (const Dim n : {3u, 4u}) {
    for (int trial = 0; trial < 80; ++trial) {
      FaultSet f;
      const std::uint64_t count = 1 + rng.below(n - 1);
      while (f.node_fault_count() < count) {
        f.fail_node(static_cast<NodeId>(rng.below(pow2(n))));
      }
      check_adaptive_all_pairs(n, f, false);  // node faults may need repair
    }
  }
}

TEST(InformedSubcube, NodeFaultsBelowDimension) {
  Xoshiro256 rng(44);
  for (const Dim n : {3u, 4u}) {
    for (int trial = 0; trial < 80; ++trial) {
      FaultSet f;
      const std::uint64_t count = 1 + rng.below(n - 1);
      while (f.node_fault_count() < count) {
        f.fail_node(static_cast<NodeId>(rng.below(pow2(n))));
      }
      check_informed_all_pairs(n, f);
    }
  }
}

TEST(InformedSubcube, WorksOnNonContiguousDimensionSets) {
  // A GEEC-like subcube over dims {1, 3, 6} embedded in 8-bit labels.
  const NodeId dims_mask = 0b01001010;
  FaultSet f;
  f.fail_link(0b00000000, 3);
  const auto pred = usable_of(f);
  for (const NodeId base : {NodeId{0}, NodeId{0b10100101u & ~dims_mask}}) {
    for (NodeId a = 0; a < 8; ++a) {
      for (NodeId b = 0; b < 8; ++b) {
        auto spread = [&](NodeId x) {
          return (bit(x, 0) << 1) | (bit(x, 1) << 3) | (bit(x, 2) << 6);
        };
        const NodeId s = base | spread(a);
        const NodeId d = base | spread(b);
        for (const auto& route_fn :
             {&adaptive_subcube_route, &informed_subcube_route}) {
          const auto result = route_fn(s, d, dims_mask, pred, nullptr);
          ASSERT_TRUE(result.delivered());
          ASSERT_EQ(result.route->destination(), d);
          for (const Dim c : result.route->hops()) {
            ASSERT_NE(dims_mask & (NodeId{1} << c), 0u)
                << "route never leaves the subcube";
          }
        }
      }
    }
  }
}

TEST(SubcubeRouters, RejectMismatchedEndpoints) {
  const auto always = [](NodeId, Dim) { return true; };
  EXPECT_THROW((void)adaptive_subcube_route(0b100, 0b001, 0b001, always),
               std::invalid_argument);
  EXPECT_THROW((void)informed_subcube_route(0b100, 0b001, 0b001, always),
               std::invalid_argument);
}

TEST(SubcubeRouters, ReportDisconnection) {
  // Isolate node 0 in H_2 entirely.
  FaultSet f;
  f.fail_link(0, 0);
  f.fail_link(0, 1);
  for (const auto& route_fn :
       {&adaptive_subcube_route, &informed_subcube_route}) {
    const auto result = route_fn(0, 3, 0b11, usable_of(f), nullptr);
    EXPECT_FALSE(result.delivered());
    EXPECT_FALSE(result.failure.empty());
  }
}

TEST(SafetyLevels, FaultFreeAllSafe) {
  const FaultSet none;
  const SafetyLevelRouter router(4, none);
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(router.level(u), 4u);
}

TEST(SafetyLevels, FaultyNodeIsZero) {
  FaultSet f;
  f.fail_node(5);
  const SafetyLevelRouter router(4, f);
  EXPECT_EQ(router.level(5), 0u);
}

TEST(SafetyLevels, TwoFaultyNeighborsLowerTheLevel) {
  // In H_3, a node with two faulty neighbors can only guarantee distance 1.
  FaultSet f;
  f.fail_node(0b001);
  f.fail_node(0b010);
  const SafetyLevelRouter router(3, f);
  EXPECT_EQ(router.level(0b000), 1u);
}

TEST(SafetyLevels, SemanticGuarantee) {
  // Property from Wu's definition: if S(u) >= h, minimal routing to any
  // nonfaulty destination at distance <= h succeeds.
  Xoshiro256 rng(47);
  const Dim n = 4;
  for (int trial = 0; trial < 60; ++trial) {
    FaultSet f;
    const std::uint64_t count = 1 + rng.below(n - 1);
    while (f.node_fault_count() < count) {
      f.fail_node(static_cast<NodeId>(rng.below(pow2(n))));
    }
    const SafetyLevelRouter router(n, f);
    for (NodeId s = 0; s < pow2(n); ++s) {
      if (f.node_faulty(s)) continue;
      for (NodeId d = 0; d < pow2(n); ++d) {
        if (f.node_faulty(d) || d == s) continue;
        if (hamming(s, d) <= router.level(s)) {
          const auto result = router.plan(s, d);
          ASSERT_TRUE(result.delivered())
              << "S(" << s << ")=" << router.level(s) << " d=" << d;
          ASSERT_EQ(result.route->length(), hamming(s, d))
              << "safe sources route minimally";
          ASSERT_EQ(result.route->destination(), d);
        }
      }
    }
  }
}

TEST(SafetyLevels, RejectsLinkFaults) {
  FaultSet f;
  f.fail_link(0, 0);
  EXPECT_THROW(SafetyLevelRouter(3, f), std::invalid_argument);
}

TEST(SafetyLevels, FaultyEndpointsRejectedAtPlanTime) {
  FaultSet f;
  f.fail_node(1);
  const SafetyLevelRouter router(3, f);
  EXPECT_FALSE(router.plan(1, 4).delivered());
  EXPECT_FALSE(router.plan(4, 1).delivered());
}

}  // namespace
}  // namespace gcube
