// Chaos/soak harness for transient-fault recovery: drives fault/repair
// churn through the sharded simulator and asserts the three invariants the
// recovery layer must keep:
//
//  1. packet accounting closes EXACTLY — with warmup 0, every offered
//     packet is delivered, refused at injection, dropped en route, lost
//     with a dead node, given up after retries, or still in flight at the
//     end; nothing leaks through the park/retransmit machinery;
//  2. the any-thread-count determinism contract survives flapping
//     schedules, in both steered (fabric) and planned modes, retries on;
//  3. transient faults with retries recover delivery toward the
//     fault-free baseline, while the same churn made permanent stays
//     degraded — the qualitative curve bench/abl_recovery quantifies.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "sim/checkpoint.hpp"
#include "routing/ftgcr.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {
namespace {

/// Offered load must be fully accounted for. Exact only when warmup is 0
/// (the measurement window then covers every event of the run).
void expect_accounting_closed(const SimMetrics& m, const std::string& label) {
  EXPECT_EQ(m.carryover_delivered, 0u) << label;
  EXPECT_EQ(m.generated,
            m.delivered + m.dropped + m.injections_blocked +
                m.dropped_no_route + m.dropped_hop_limit +
                m.orphaned_by_node_fault + m.gave_up + m.in_flight_at_end)
      << label << ": accounting identity must close exactly";
}

/// Isolation flaps: every incident link of each victim node fails at once
/// and heals `dwell` cycles later, victims staggered `stagger` apart. The
/// victim node itself stays alive (and targeted by traffic), so packets
/// headed for it genuinely strand — the regime retries exist for.
FaultSchedule isolation_flaps(const GaussianCube& gc,
                              const std::vector<NodeId>& victims, Cycle start,
                              Cycle dwell, Cycle stagger) {
  FaultSchedule s;
  Cycle t = start;
  for (const NodeId v : victims) {
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.fail_link_at(t, v, c);
    }
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(v, c)) s.repair_link_at(t + dwell, v, c);
    }
    t += stagger;
  }
  return s;
}

/// Link flaps drawn from the whole cube (renewal churn, no isolation).
FaultSchedule cube_flaps(const GaussianCube& gc, std::size_t flapping,
                         double mttf, double mttr, Cycle horizon,
                         std::uint64_t seed) {
  std::vector<LinkId> candidates;
  for (NodeId u = 0; u < gc.node_count(); ++u) {
    for (Dim c = 0; c < gc.dims(); ++c) {
      if (gc.has_link(u, c) && bit(u, c) == 0) candidates.push_back({u, c});
    }
  }
  return FaultSchedule::random_flapping_links(candidates, flapping, mttf,
                                              mttr, horizon, seed);
}

SimConfig chaos_config() {
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 0;  // exact accounting: the window covers everything
  cfg.measure_cycles = 900;
  cfg.seed = 1234;
  cfg.retry_limit = 8;
  cfg.retry_backoff_base = 2;
  cfg.park_capacity = 32;
  cfg.retry_budget = 3;
  cfg.retransmit_timeout = 48;
  return cfg;
}

SimMetrics run_chaos(const GaussianCube& gc, const FaultSchedule& schedule,
                     const SimConfig& cfg) {
  // The schedule mutates the fault set, so every run gets a fresh one (and
  // a fresh router over it).
  FaultSet live;
  const FtgcrRouter router(gc, live);
  NetworkSim sim(gc, router, live, cfg, schedule);
  return sim.run();
}

TEST(ChaosRecovery, AccountingClosesUnderLinkChurnWithRetries) {
  const GaussianCube gc(8, 2);
  const FaultSchedule flaps = cube_flaps(gc, 24, 150, 60, 900, 99);
  const SimMetrics m = run_chaos(gc, flaps, chaos_config());
  expect_accounting_closed(m, "link churn + retries");
  EXPECT_GT(m.repairs_applied, 0u);
  EXPECT_GT(m.delivered, 0u);
}

TEST(ChaosRecovery, AccountingClosesUnderIsolationFlaps) {
  const GaussianCube gc(8, 2);
  const FaultSchedule flaps =
      isolation_flaps(gc, {3, 77, 130, 201}, 100, 180, 120);
  SimConfig cfg = chaos_config();
  const SimMetrics with_retries = run_chaos(gc, flaps, cfg);
  expect_accounting_closed(with_retries, "isolation + retries");
  // Isolated destinations strand packets, so the recovery machinery must
  // actually have engaged here.
  EXPECT_GT(with_retries.parked_retries, 0u);

  cfg.retry_limit = 0;
  cfg.retry_budget = 0;
  const SimMetrics no_retries = run_chaos(gc, flaps, cfg);
  expect_accounting_closed(no_retries, "isolation, legacy drops");
  EXPECT_GT(no_retries.dropped_no_route, 0u);
  EXPECT_EQ(no_retries.parked_retries, 0u);
  EXPECT_EQ(no_retries.gave_up, 0u);
}

TEST(ChaosRecovery, AccountingClosesUnderNodeDeathAndRebirth) {
  const GaussianCube gc(8, 2);
  FaultSchedule s;
  for (const NodeId v : {11u, 64u, 150u, 222u}) {
    s.fail_node_at(120, v);
    s.repair_node_at(400, v);
    s.fail_node_at(600, v);  // die again: repair state must fully reset
    s.repair_node_at(750, v);
  }
  const SimMetrics m = run_chaos(gc, s, chaos_config());
  expect_accounting_closed(m, "node death and rebirth");
  EXPECT_EQ(m.repairs_applied, 8u);
  EXPECT_EQ(m.fault_events, 16u);
}

TEST(ChaosRecovery, RepairedNodeResumesInjecting) {
  // A node that dies is descheduled from the gap-driven injection wheel;
  // the repair event must re-arm it or offered load silently shrinks.
  const GaussianCube gc(7, 2);
  SimConfig cfg = chaos_config();
  cfg.measure_cycles = 800;
  FaultSchedule transient;
  transient.fail_node_at(50, 5);
  transient.repair_node_at(150, 5);
  const SimMetrics healed = run_chaos(gc, transient, cfg);
  FaultSchedule permanent;
  permanent.fail_node_at(50, 5);
  const SimMetrics dead = run_chaos(gc, permanent, cfg);
  EXPECT_GT(healed.generated, dead.generated)
      << "the repaired node must come back as a traffic source";
  expect_accounting_closed(healed, "transient node");
  expect_accounting_closed(dead, "permanent node");
}

TEST(ChaosRecovery, ThreadCountDeterminismUnderChurnSteeredAndPlanned) {
  const GaussianCube gc(8, 2);
  const FaultSchedule flaps = cube_flaps(gc, 16, 120, 50, 700, 7);
  for (const bool fabric : {true, false}) {
    SimConfig cfg = chaos_config();
    cfg.measure_cycles = 700;
    cfg.fabric = fabric;
    cfg.allow_oversubscribe = true;  // real concurrency on small machines
    cfg.threads = 1;
    const SimMetrics base = run_chaos(gc, flaps, cfg);
    expect_accounting_closed(base, fabric ? "steered t1" : "planned t1");
    for (const std::uint32_t threads : {2u, 4u}) {
      cfg.threads = threads;
      const SimMetrics m = run_chaos(gc, flaps, cfg);
      EXPECT_TRUE(m.deterministic_equals(base))
          << (fabric ? "steered" : "planned") << " mode diverged at threads="
          << threads;
    }
  }
}

TEST(ChaosRecovery, TransientWithRetriesRecoversPermanentStaysDegraded) {
  const GaussianCube gc(8, 2);
  // Churn confined to the first 600 cycles; the run measures 900, so the
  // transient case gets a drain window where every fault has healed.
  const FaultSchedule transient =
      isolation_flaps(gc, {9, 40, 101, 164, 230}, 80, 150, 90);
  const FaultSchedule permanent = transient.without_repairs();
  const SimConfig cfg = chaos_config();

  const SimMetrics fault_free = run_chaos(gc, FaultSchedule{}, cfg);
  const SimMetrics healed = run_chaos(gc, transient, cfg);
  SimConfig no_retry_cfg = cfg;
  no_retry_cfg.retry_limit = 0;
  no_retry_cfg.retry_budget = 0;
  const SimMetrics dropped = run_chaos(gc, transient, no_retry_cfg);
  const SimMetrics broken = run_chaos(gc, permanent, cfg);

  expect_accounting_closed(fault_free, "fault-free");
  expect_accounting_closed(healed, "transient + retries");
  expect_accounting_closed(dropped, "transient, no retries");
  expect_accounting_closed(broken, "permanent + retries");

  // Recovery ordering: retries over healing faults ~ fault-free baseline;
  // no retries loses the stranded packets; permanent isolation cannot be
  // saved by retries at all.
  EXPECT_GT(healed.delivery_ratio(), 0.99 * fault_free.delivery_ratio());
  EXPECT_GT(healed.delivery_ratio(), dropped.delivery_ratio());
  EXPECT_GT(healed.delivery_ratio(), broken.delivery_ratio());
  EXPECT_GT(broken.gave_up + broken.in_flight_at_end +
                broken.dropped_no_route + broken.dropped_hop_limit,
            0u)
      << "permanent isolation must visibly lose packets";
  EXPECT_GT(healed.parked_retries, 0u);
}

TEST(ChaosRecovery, CheckpointRoundTripPreservesRecoveryStateBitForBit) {
  // Interrupt the run in the thick of the churn — parked packets holding
  // backoff counters, armed wake-up fires, end-to-end retransmit timers
  // all live — and resume from the checkpoint with a different thread
  // count. The recovery machinery must come back bit-for-bit: final
  // metrics identical to the uninterrupted run, including the park /
  // retry / retransmit counters themselves.
  const GaussianCube gc(8, 2);
  const FaultSchedule churn =
      isolation_flaps(gc, {9, 40, 101, 164, 230}, 80, 150, 90);
  SimConfig cfg = chaos_config();
  cfg.allow_oversubscribe = true;
  const SimMetrics uninterrupted = run_chaos(gc, churn, cfg);
  expect_accounting_closed(uninterrupted, "uninterrupted");
  ASSERT_GT(uninterrupted.parked_retries, 0u)
      << "the scenario must actually exercise the park machinery";

  const std::string path =
      testing::TempDir() + "gcube_chaos_roundtrip.ckpt";
  std::remove(path.c_str());
  std::remove(checkpoint_previous_generation(path).c_str());
  // Cycle 300: victims 9/40/101 have flapped, 164's isolation is live,
  // parked packets and retransmit timers are pending.
  SimConfig halt_cfg = cfg;
  halt_cfg.threads = 2;
  halt_cfg.checkpoint_path = path;
  halt_cfg.halt_at_cycle = 300;
  const SimMetrics partial = run_chaos(gc, churn, halt_cfg);
  ASSERT_EQ(partial.interrupted_at, 300u);

  // The on-disk image must carry live recovery state, not just queues.
  const SimCheckpoint ck = load_checkpoint(path);
  EXPECT_FALSE(ck.parked.empty())
      << "checkpoint at mid-churn must hold parked packets";
  bool has_backoff_state = false;
  for (const auto& p : ck.parked) {
    if (p.packet.retry_attempts > 0 || p.packet.retransmits_used > 0) {
      has_backoff_state = true;
    }
    EXPECT_GE(p.wake, ck.resume_cycle)
        << "pending wake-ups must still be in the future";
  }
  EXPECT_TRUE(has_backoff_state)
      << "parked entries must carry their backoff/retransmit counters";

  SimConfig resume_cfg = cfg;
  resume_cfg.threads = 4;
  resume_cfg.resume_from = path;
  const SimMetrics resumed = run_chaos(gc, churn, resume_cfg);
  expect_accounting_closed(resumed, "resumed");
  EXPECT_TRUE(resumed.deterministic_equals(uninterrupted))
      << "resume across a checkpoint (threads 2 -> 4) must be bit-for-bit";
  EXPECT_EQ(resumed.parked_retries, uninterrupted.parked_retries);
  EXPECT_EQ(resumed.retransmits, uninterrupted.retransmits);
  EXPECT_EQ(resumed.gave_up, uninterrupted.gave_up);
  std::remove(path.c_str());
  std::remove(checkpoint_previous_generation(path).c_str());
}

TEST(ChaosRecovery, EmptyRepairSchedulesReproduceLegacyBitForBit) {
  // A schedule without repair events, run with recovery knobs at their
  // defaults (off), must be indistinguishable from the pre-recovery
  // simulator: same fields, zero new counters.
  const GaussianCube gc(7, 2);
  FaultSchedule s;
  s.fail_node_at(100, 3);
  s.fail_link_at(200, 8, 1);
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 600;
  const SimMetrics a = run_chaos(gc, s, cfg);
  const SimMetrics b = run_chaos(gc, s, cfg);
  EXPECT_TRUE(a.deterministic_equals(b));
  EXPECT_EQ(a.repairs_applied, 0u);
  EXPECT_EQ(a.parked_retries, 0u);
  EXPECT_EQ(a.retransmits, 0u);
  EXPECT_EQ(a.gave_up, 0u);
}

}  // namespace
}  // namespace gcube
