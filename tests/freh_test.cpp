// FREH tests (paper Algorithm 4 / Theorem 4): delivery for every nonfaulty
// pair whenever F_s + F_0 < s and F_t + F_0 < t, route validity under the
// fault set, and the hop bound H(r, d) + 2(F_s + F_t) + 2.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fault/fault_set.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "routing/freh.hpp"
#include "util/rng.hpp"

namespace gcube {
namespace {

struct PairStats {
  std::size_t pairs = 0;
  std::size_t dead_ends = 0;  // dance dead-ends repaired by informed routing
  std::size_t total_excess = 0;  // hops above the fault-aware optimum
};

// Checks every nonfaulty pair under `faults`. The step-by-step dance as
// literally specified (ideal crossing first, Hamming-1 alternatives, masked
// spares) can dead-end in rare configurations even under the Theorem-4
// precondition — its candidate rule may exhaust the cross positions around
// the ideal while a route through a farther cube exists (a reproduction
// finding; see EXPERIMENTS.md). Such dead-ends must be rare and must never
// correspond to a genuine disconnection, which we prove by requiring the
// informed router to succeed there.
// Note on Theorem 4's hop bound: as stated — H + 2(F_s + F_t) + 2 — it does
// not hold even for the fault-aware *optimal* route. A single dead cross
// link forces a displace / cross / fix / cross-back / repair detour worth up
// to 6 extra hops (EH(2,2), r = (0,0,0), d = (0,0,1), cross link (0,0)
// dead: the true optimum is 7 hops versus H = 1). We therefore assert what
// the mechanism actually guarantees: termination within its livelock budget
// (H_max + 2(s+t) + 4), hop-by-hop validity, and near-optimality in
// aggregate. EXPERIMENTS.md discusses the discrepancy.
void check_all_pairs(const ExchangedHypercube& eh, const FaultSet& faults,
                     PairStats& tally) {
  const EhFaultOracle oracle = make_eh_oracle(faults);
  const auto link_ok = [&faults](NodeId u, Dim c) {
    return faults.link_usable(u, c);
  };
  const std::size_t budget =
      (eh.s() + eh.t() + 2) + 2 * (eh.s() + eh.t()) + 4;
  for (NodeId r = 0; r < eh.node_count(); ++r) {
    if (faults.node_faulty(r)) continue;
    const auto dist_f = bfs_distances(eh, r, link_ok);  // fault-aware optimum
    for (NodeId d = 0; d < eh.node_count(); ++d) {
      if (faults.node_faulty(d)) continue;
      ++tally.pairs;
      FrehStats stats;
      const RoutingResult result = freh_route(eh, oracle, r, d, &stats);
      if (!result.delivered()) {
        ++tally.dead_ends;
        ASSERT_TRUE(informed_eh_route(eh, oracle, r, d).delivered())
            << "dance dead-end must not be a real disconnect: " << eh.name()
            << " r=" << r << " d=" << d;
        continue;
      }
      const Route& route = *result.route;
      ASSERT_EQ(route.source(), r);
      ASSERT_EQ(route.destination(), d);
      ASSERT_TRUE(validate_route(eh, faults, route).ok)
          << validate_route(eh, faults, route).reason;
      ASSERT_LE(route.length(), budget + 1)
          << "livelock-freedom budget " << eh.name() << " r=" << r
          << " d=" << d;
      ASSERT_GE(route.length(), dist_f[d]);
      tally.total_excess += route.length() - dist_f[d];
    }
  }
}

TEST(Freh, FaultFreeIsNearOptimal) {
  const ExchangedHypercube eh(3, 2);
  const FaultSet none;
  const EhFaultOracle oracle = make_eh_oracle(none);
  const Graph g(eh);
  for (NodeId r = 0; r < eh.node_count(); ++r) {
    const auto dist = bfs_distances(g, r);
    for (NodeId d = 0; d < eh.node_count(); ++d) {
      const auto result = freh_route(eh, oracle, r, d);
      ASSERT_TRUE(result.delivered());
      ASSERT_EQ(result.route->destination(), d);
      // Without faults the driver takes the paper's canonical path, which
      // is within 2 hops of optimal (cases III/IV may cross via the
      // destination position rather than the nearest one).
      ASSERT_LE(result.route->length(), dist[d] + 2);
      ASSERT_GE(result.route->length(), dist[d]);
    }
  }
}

class FrehFaultTest : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {};

TEST_P(FrehFaultTest, ExhaustiveSingleFaults) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  PairStats tally;
  // Every single link fault satisfying Theorem 4.
  for (NodeId u = 0; u < eh.node_count(); ++u) {
    for (Dim c = 0; c < eh.dims(); ++c) {
      if (!eh.has_link(u, c) || bit(u, c) != 0) continue;
      FaultSet f;
      f.fail_link(u, c);
      if (!theorem4_holds(eh, f)) continue;
      check_all_pairs(eh, f, tally);
    }
  }
  // Every single node fault satisfying Theorem 4.
  for (NodeId u = 0; u < eh.node_count(); ++u) {
    FaultSet f;
    f.fail_node(u);
    if (!theorem4_holds(eh, f)) continue;
    check_all_pairs(eh, f, tally);
  }
  // Single faults never dead-end the dance, and the detour cost stays small
  // on average (well under one extra hop per pair).
  EXPECT_EQ(tally.dead_ends, 0u);
  ASSERT_GT(tally.pairs, 0u);
  EXPECT_LT(static_cast<double>(tally.total_excess),
            0.5 * static_cast<double>(tally.pairs));
}

TEST_P(FrehFaultTest, RandomMultiFaultSets) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  Xoshiro256 rng(61 + s * 8 + t);
  PairStats tally;
  int accepted = 0;
  for (int trial = 0; trial < 400 && accepted < 40; ++trial) {
    FaultSet f;
    const std::uint64_t budget = 1 + rng.below(s + t - 1);
    for (std::uint64_t i = 0; i < budget; ++i) {
      if (rng.chance(0.5)) {
        f.fail_node(static_cast<NodeId>(rng.below(eh.node_count())));
      } else {
        const auto u = static_cast<NodeId>(rng.below(eh.node_count()));
        const auto c = static_cast<Dim>(rng.below(eh.dims()));
        if (eh.has_link(u, c)) f.fail_link(u, c);
      }
    }
    if (!theorem4_holds(eh, f)) continue;
    ++accepted;
    check_all_pairs(eh, f, tally);
  }
  EXPECT_GT(accepted, 5) << "sampler should find tolerable fault sets";
  // Multi-fault dead-ends of the literal dance are possible but must stay
  // rare (well under 1% of pairs), and the aggregate detour cost small.
  ASSERT_GT(tally.pairs, 0u);
  EXPECT_LT(static_cast<double>(tally.dead_ends),
            0.01 * static_cast<double>(tally.pairs));
  EXPECT_LT(static_cast<double>(tally.total_excess),
            0.75 * static_cast<double>(tally.pairs));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FrehFaultTest,
    ::testing::Combine(::testing::Values<Dim>(2, 3), ::testing::Values<Dim>(2, 3)));

class InformedEhTest : public ::testing::TestWithParam<std::tuple<Dim, Dim>> {
};

TEST_P(InformedEhTest, ExactlyFaultAwareOptimal) {
  const auto [s, t] = GetParam();
  const ExchangedHypercube eh(s, t);
  Xoshiro256 rng(77 + s * 16 + t);
  int accepted = 0;
  for (int trial = 0; trial < 200 && accepted < 25; ++trial) {
    FaultSet f;
    const std::uint64_t budget = 1 + rng.below(s + t - 1);
    for (std::uint64_t i = 0; i < budget; ++i) {
      if (rng.chance(0.5)) {
        f.fail_node(static_cast<NodeId>(rng.below(eh.node_count())));
      } else {
        const auto u = static_cast<NodeId>(rng.below(eh.node_count()));
        const auto c = static_cast<Dim>(rng.below(eh.dims()));
        if (eh.has_link(u, c)) f.fail_link(u, c);
      }
    }
    if (!theorem4_holds(eh, f)) continue;
    ++accepted;
    const EhFaultOracle oracle = make_eh_oracle(f);
    for (NodeId r = 0; r < eh.node_count(); ++r) {
      if (f.node_faulty(r)) continue;
      const auto dist = bfs_distances(
          eh, r, [&f](NodeId u, Dim c) { return f.link_usable(u, c); });
      for (NodeId d = 0; d < eh.node_count(); ++d) {
        if (f.node_faulty(d)) continue;
        const auto result = informed_eh_route(eh, oracle, r, d);
        ASSERT_TRUE(result.delivered())
            << eh.name() << " r=" << r << " d=" << d;
        ASSERT_EQ(result.route->destination(), d);
        ASSERT_TRUE(validate_route(eh, f, *result.route).ok);
        ASSERT_EQ(result.route->length(), dist[d])
            << "informed routing is exactly the fault-aware optimum";
      }
    }
  }
  EXPECT_GT(accepted, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InformedEhTest,
    ::testing::Combine(::testing::Values<Dim>(2, 3),
                       ::testing::Values<Dim>(2, 3)));

TEST(InformedEh, ReportsDisconnectionAndFaultyEndpoints) {
  const ExchangedHypercube eh(2, 2);
  FaultSet f;
  f.fail_node(0b00010);
  const auto oracle = make_eh_oracle(f);
  EXPECT_FALSE(informed_eh_route(eh, oracle, 0b00010, 0).delivered());
  EXPECT_FALSE(informed_eh_route(eh, oracle, 0, 0b00010).delivered());
}

TEST(Freh, FaultySourceOrDestinationRejected) {
  const ExchangedHypercube eh(2, 2);
  FaultSet f;
  f.fail_node(0);
  const auto oracle = make_eh_oracle(f);
  EXPECT_FALSE(freh_route(eh, oracle, 0, 5).delivered());
  EXPECT_FALSE(freh_route(eh, oracle, 5, 0).delivered());
}

TEST(Freh, CountsMatchDefinition) {
  const ExchangedHypercube eh(2, 3);  // dims: 0 cross, 1-3 b, 4-5 a
  FaultSet f;
  f.fail_node(0b000000);  // c=0 side
  f.fail_node(0b000001);  // c=1 side
  f.fail_link(0b000010, 0);   // cross link, endpoints nonfaulty
  f.fail_link(0b000000, 0);   // cross link with faulty endpoint: excluded
  f.fail_link(0b000100, 4);   // a-dim link (c=0 side)
  f.fail_link(0b000011, 1);   // b-dim link (c=1 side)
  const EhFaultCounts counts = count_eh_faults(eh, f);
  EXPECT_EQ(counts.f_s, 2u);  // node 0 + a-link
  EXPECT_EQ(counts.f_t, 2u);  // node 1 + b-link
  EXPECT_EQ(counts.f_0, 1u);
}

TEST(Freh, Theorem4BoundaryReading) {
  const ExchangedHypercube eh(2, 2);
  FaultSet f;
  EXPECT_TRUE(theorem4_holds(eh, f));  // no faults: vacuously fine
  f.fail_link(0b00100, 3);             // one a-dim fault: f_s = 1 < s = 2
  EXPECT_TRUE(theorem4_holds(eh, f));
  f.fail_link(0b00000, 4);             // second side-s fault: 2 >= 2
  EXPECT_FALSE(theorem4_holds(eh, f));
}

}  // namespace
}  // namespace gcube
