// Unit tests for util/: bit helpers, deterministic RNG, table rendering.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace gcube {
namespace {

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(26), 67108864u);
}

TEST(Bits, BitAccess) {
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 3), 1u);
  EXPECT_EQ(bit(0b1010, 4), 0u);
}

TEST(Bits, FlipBit) {
  EXPECT_EQ(flip_bit(0b0000, 2), 0b0100u);
  EXPECT_EQ(flip_bit(0b0100, 2), 0b0000u);
  EXPECT_EQ(flip_bit(flip_bit(12345, 7), 7), 12345u);
}

TEST(Bits, SetBit) {
  EXPECT_EQ(set_bit(0b0000, 1, 1), 0b0010u);
  EXPECT_EQ(set_bit(0b1111, 1, 0), 0b1101u);
  EXPECT_EQ(set_bit(0b1111, 1, 1), 0b1111u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0b1111u);
  EXPECT_EQ(low_mask(32), ~NodeId{0});
}

TEST(Bits, LowBits) {
  EXPECT_EQ(low_bits(0b110101, 3), 0b101u);
  EXPECT_EQ(low_bits(0b110101, 0), 0u);
}

TEST(Bits, HammingAndPopcount) {
  EXPECT_EQ(popcount(0), 0u);
  EXPECT_EQ(popcount(0b1011), 3u);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4u);
  EXPECT_EQ(hamming(7, 7), 0u);
}

TEST(Bits, MsbLsb) {
  EXPECT_EQ(msb_index(1), 0u);
  EXPECT_EQ(msb_index(0b100100), 5u);
  EXPECT_EQ(lsb_index(0b100100), 2u);
  EXPECT_EQ(lsb_index(1u << 31), 31u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(8), 3u);
  EXPECT_EQ(log2_exact(1u << 20), 20u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += (a() != b());
  EXPECT_GT(differing, 5);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitGivesIndependentStream) {
  Xoshiro256 a(9);
  Xoshiro256 c = a.split();
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += (a() != c());
  EXPECT_GT(differing, 5);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"n", "value"});
  t.add_row({"1", "10"});
  t.add_row({"12", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 3), "2.000");
}

TEST(Require, ThrowsWithLocation) {
  try {
    GCUBE_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("numbers disagree"), std::string::npos);
    EXPECT_NE(msg.find("util_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace gcube
