file(REMOVE_RECURSE
  "CMakeFiles/abl_traffic_patterns.dir/abl_traffic_patterns.cpp.o"
  "CMakeFiles/abl_traffic_patterns.dir/abl_traffic_patterns.cpp.o.d"
  "abl_traffic_patterns"
  "abl_traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
