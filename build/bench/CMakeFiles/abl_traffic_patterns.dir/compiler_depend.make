# Empty compiler generated dependencies file for abl_traffic_patterns.
# This may be replaced when dependencies are built.
