file(REMOVE_RECURSE
  "CMakeFiles/fig2_tree_diameter.dir/fig2_tree_diameter.cpp.o"
  "CMakeFiles/fig2_tree_diameter.dir/fig2_tree_diameter.cpp.o.d"
  "fig2_tree_diameter"
  "fig2_tree_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tree_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
