# Empty dependencies file for fig5_latency_vs_dim.
# This may be replaced when dependencies are built.
