file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency_vs_dim.dir/fig5_latency_vs_dim.cpp.o"
  "CMakeFiles/fig5_latency_vs_dim.dir/fig5_latency_vs_dim.cpp.o.d"
  "fig5_latency_vs_dim"
  "fig5_latency_vs_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_vs_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
