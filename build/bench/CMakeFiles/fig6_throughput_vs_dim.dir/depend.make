# Empty dependencies file for fig6_throughput_vs_dim.
# This may be replaced when dependencies are built.
