file(REMOVE_RECURSE
  "CMakeFiles/fig6_throughput_vs_dim.dir/fig6_throughput_vs_dim.cpp.o"
  "CMakeFiles/fig6_throughput_vs_dim.dir/fig6_throughput_vs_dim.cpp.o.d"
  "fig6_throughput_vs_dim"
  "fig6_throughput_vs_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_throughput_vs_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
