file(REMOVE_RECURSE
  "CMakeFiles/abl_finite_buffers.dir/abl_finite_buffers.cpp.o"
  "CMakeFiles/abl_finite_buffers.dir/abl_finite_buffers.cpp.o.d"
  "abl_finite_buffers"
  "abl_finite_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_finite_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
