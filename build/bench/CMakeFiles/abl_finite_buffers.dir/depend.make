# Empty dependencies file for abl_finite_buffers.
# This may be replaced when dependencies are built.
