file(REMOVE_RECURSE
  "CMakeFiles/abl_fault_categories.dir/abl_fault_categories.cpp.o"
  "CMakeFiles/abl_fault_categories.dir/abl_fault_categories.cpp.o.d"
  "abl_fault_categories"
  "abl_fault_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fault_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
