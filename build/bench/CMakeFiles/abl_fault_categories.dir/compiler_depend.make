# Empty compiler generated dependencies file for abl_fault_categories.
# This may be replaced when dependencies are built.
