file(REMOVE_RECURSE
  "CMakeFiles/abl_virtual_channels.dir/abl_virtual_channels.cpp.o"
  "CMakeFiles/abl_virtual_channels.dir/abl_virtual_channels.cpp.o.d"
  "abl_virtual_channels"
  "abl_virtual_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_virtual_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
