file(REMOVE_RECURSE
  "CMakeFiles/abl_ft_hypercube.dir/abl_ft_hypercube.cpp.o"
  "CMakeFiles/abl_ft_hypercube.dir/abl_ft_hypercube.cpp.o.d"
  "abl_ft_hypercube"
  "abl_ft_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ft_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
