# Empty compiler generated dependencies file for abl_ft_hypercube.
# This may be replaced when dependencies are built.
