file(REMOVE_RECURSE
  "CMakeFiles/abl_saturation.dir/abl_saturation.cpp.o"
  "CMakeFiles/abl_saturation.dir/abl_saturation.cpp.o.d"
  "abl_saturation"
  "abl_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
