# Empty dependencies file for abl_saturation.
# This may be replaced when dependencies are built.
