file(REMOVE_RECURSE
  "CMakeFiles/abl_route_overhead.dir/abl_route_overhead.cpp.o"
  "CMakeFiles/abl_route_overhead.dir/abl_route_overhead.cpp.o.d"
  "abl_route_overhead"
  "abl_route_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_route_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
