# Empty compiler generated dependencies file for tbl_topology_properties.
# This may be replaced when dependencies are built.
