file(REMOVE_RECURSE
  "CMakeFiles/tbl_topology_properties.dir/tbl_topology_properties.cpp.o"
  "CMakeFiles/tbl_topology_properties.dir/tbl_topology_properties.cpp.o.d"
  "tbl_topology_properties"
  "tbl_topology_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_topology_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
