# Empty dependencies file for fig7_fault_latency.
# This may be replaced when dependencies are built.
