# Empty compiler generated dependencies file for gcube.
# This may be replaced when dependencies are built.
