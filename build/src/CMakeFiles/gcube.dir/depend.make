# Empty dependencies file for gcube.
# This may be replaced when dependencies are built.
