file(REMOVE_RECURSE
  "libgcube.a"
)
