
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/categorize.cpp" "src/CMakeFiles/gcube.dir/fault/categorize.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/fault/categorize.cpp.o.d"
  "/root/repo/src/fault/fault_set.cpp" "src/CMakeFiles/gcube.dir/fault/fault_set.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/fault/fault_set.cpp.o.d"
  "/root/repo/src/fault/preconditions.cpp" "src/CMakeFiles/gcube.dir/fault/preconditions.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/fault/preconditions.cpp.o.d"
  "/root/repo/src/fault/status_exchange.cpp" "src/CMakeFiles/gcube.dir/fault/status_exchange.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/fault/status_exchange.cpp.o.d"
  "/root/repo/src/fault/tolerance_bound.cpp" "src/CMakeFiles/gcube.dir/fault/tolerance_bound.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/fault/tolerance_bound.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/gcube.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot_export.cpp" "src/CMakeFiles/gcube.dir/graph/dot_export.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/graph/dot_export.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/gcube.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/graph/graph.cpp.o.d"
  "/root/repo/src/routing/collectives.cpp" "src/CMakeFiles/gcube.dir/routing/collectives.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/collectives.cpp.o.d"
  "/root/repo/src/routing/deadlock.cpp" "src/CMakeFiles/gcube.dir/routing/deadlock.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/deadlock.cpp.o.d"
  "/root/repo/src/routing/ecube.cpp" "src/CMakeFiles/gcube.dir/routing/ecube.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/ecube.cpp.o.d"
  "/root/repo/src/routing/eh_embedding.cpp" "src/CMakeFiles/gcube.dir/routing/eh_embedding.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/eh_embedding.cpp.o.d"
  "/root/repo/src/routing/ffgcr.cpp" "src/CMakeFiles/gcube.dir/routing/ffgcr.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/ffgcr.cpp.o.d"
  "/root/repo/src/routing/freh.cpp" "src/CMakeFiles/gcube.dir/routing/freh.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/freh.cpp.o.d"
  "/root/repo/src/routing/ftgcr.cpp" "src/CMakeFiles/gcube.dir/routing/ftgcr.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/ftgcr.cpp.o.d"
  "/root/repo/src/routing/hypercube_ft.cpp" "src/CMakeFiles/gcube.dir/routing/hypercube_ft.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/hypercube_ft.cpp.o.d"
  "/root/repo/src/routing/route.cpp" "src/CMakeFiles/gcube.dir/routing/route.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/route.cpp.o.d"
  "/root/repo/src/routing/tree_routing.cpp" "src/CMakeFiles/gcube.dir/routing/tree_routing.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/routing/tree_routing.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/gcube.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/gcube.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/gcube.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/gcube.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/CMakeFiles/gcube.dir/sim/traffic.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/sim/traffic.cpp.o.d"
  "/root/repo/src/topology/exchanged_hypercube.cpp" "src/CMakeFiles/gcube.dir/topology/exchanged_hypercube.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/topology/exchanged_hypercube.cpp.o.d"
  "/root/repo/src/topology/gaussian_cube.cpp" "src/CMakeFiles/gcube.dir/topology/gaussian_cube.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/topology/gaussian_cube.cpp.o.d"
  "/root/repo/src/topology/gaussian_graph.cpp" "src/CMakeFiles/gcube.dir/topology/gaussian_graph.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/topology/gaussian_graph.cpp.o.d"
  "/root/repo/src/topology/gaussian_tree.cpp" "src/CMakeFiles/gcube.dir/topology/gaussian_tree.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/topology/gaussian_tree.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/gcube.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/topology/hypercube.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/gcube.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/gcube.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/gcube.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
