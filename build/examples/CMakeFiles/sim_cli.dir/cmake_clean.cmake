file(REMOVE_RECURSE
  "CMakeFiles/sim_cli.dir/sim_cli.cpp.o"
  "CMakeFiles/sim_cli.dir/sim_cli.cpp.o.d"
  "sim_cli"
  "sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
