# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/gaussian_tree_test[1]_include.cmake")
include("/root/repo/build/tests/exchanged_hypercube_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/fault_model_test[1]_include.cmake")
include("/root/repo/build/tests/preconditions_test[1]_include.cmake")
include("/root/repo/build/tests/tree_routing_test[1]_include.cmake")
include("/root/repo/build/tests/ffgcr_test[1]_include.cmake")
include("/root/repo/build/tests/hypercube_ft_test[1]_include.cmake")
include("/root/repo/build/tests/freh_test[1]_include.cmake")
include("/root/repo/build/tests/eh_embedding_test[1]_include.cmake")
include("/root/repo/build/tests/ftgcr_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/status_exchange_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/dot_export_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
