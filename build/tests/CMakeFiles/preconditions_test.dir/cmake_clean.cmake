file(REMOVE_RECURSE
  "CMakeFiles/preconditions_test.dir/preconditions_test.cpp.o"
  "CMakeFiles/preconditions_test.dir/preconditions_test.cpp.o.d"
  "preconditions_test"
  "preconditions_test.pdb"
  "preconditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preconditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
