file(REMOVE_RECURSE
  "CMakeFiles/freh_test.dir/freh_test.cpp.o"
  "CMakeFiles/freh_test.dir/freh_test.cpp.o.d"
  "freh_test"
  "freh_test.pdb"
  "freh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
