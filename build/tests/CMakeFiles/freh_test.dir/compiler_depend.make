# Empty compiler generated dependencies file for freh_test.
# This may be replaced when dependencies are built.
