file(REMOVE_RECURSE
  "CMakeFiles/tree_routing_test.dir/tree_routing_test.cpp.o"
  "CMakeFiles/tree_routing_test.dir/tree_routing_test.cpp.o.d"
  "tree_routing_test"
  "tree_routing_test.pdb"
  "tree_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
