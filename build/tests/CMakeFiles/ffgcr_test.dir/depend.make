# Empty dependencies file for ffgcr_test.
# This may be replaced when dependencies are built.
