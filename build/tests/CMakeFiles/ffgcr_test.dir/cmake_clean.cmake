file(REMOVE_RECURSE
  "CMakeFiles/ffgcr_test.dir/ffgcr_test.cpp.o"
  "CMakeFiles/ffgcr_test.dir/ffgcr_test.cpp.o.d"
  "ffgcr_test"
  "ffgcr_test.pdb"
  "ffgcr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffgcr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
