# Empty compiler generated dependencies file for gaussian_tree_test.
# This may be replaced when dependencies are built.
