file(REMOVE_RECURSE
  "CMakeFiles/gaussian_tree_test.dir/gaussian_tree_test.cpp.o"
  "CMakeFiles/gaussian_tree_test.dir/gaussian_tree_test.cpp.o.d"
  "gaussian_tree_test"
  "gaussian_tree_test.pdb"
  "gaussian_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaussian_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
