# Empty dependencies file for hypercube_ft_test.
# This may be replaced when dependencies are built.
