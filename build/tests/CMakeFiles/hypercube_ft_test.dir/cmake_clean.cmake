file(REMOVE_RECURSE
  "CMakeFiles/hypercube_ft_test.dir/hypercube_ft_test.cpp.o"
  "CMakeFiles/hypercube_ft_test.dir/hypercube_ft_test.cpp.o.d"
  "hypercube_ft_test"
  "hypercube_ft_test.pdb"
  "hypercube_ft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_ft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
