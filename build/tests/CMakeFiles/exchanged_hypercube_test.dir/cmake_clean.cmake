file(REMOVE_RECURSE
  "CMakeFiles/exchanged_hypercube_test.dir/exchanged_hypercube_test.cpp.o"
  "CMakeFiles/exchanged_hypercube_test.dir/exchanged_hypercube_test.cpp.o.d"
  "exchanged_hypercube_test"
  "exchanged_hypercube_test.pdb"
  "exchanged_hypercube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchanged_hypercube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
