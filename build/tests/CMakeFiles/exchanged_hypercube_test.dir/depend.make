# Empty dependencies file for exchanged_hypercube_test.
# This may be replaced when dependencies are built.
