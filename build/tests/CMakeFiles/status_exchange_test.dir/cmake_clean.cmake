file(REMOVE_RECURSE
  "CMakeFiles/status_exchange_test.dir/status_exchange_test.cpp.o"
  "CMakeFiles/status_exchange_test.dir/status_exchange_test.cpp.o.d"
  "status_exchange_test"
  "status_exchange_test.pdb"
  "status_exchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
