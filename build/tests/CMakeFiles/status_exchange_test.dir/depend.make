# Empty dependencies file for status_exchange_test.
# This may be replaced when dependencies are built.
