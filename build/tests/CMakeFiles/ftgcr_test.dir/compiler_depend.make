# Empty compiler generated dependencies file for ftgcr_test.
# This may be replaced when dependencies are built.
