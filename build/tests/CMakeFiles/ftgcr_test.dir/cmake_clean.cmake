file(REMOVE_RECURSE
  "CMakeFiles/ftgcr_test.dir/ftgcr_test.cpp.o"
  "CMakeFiles/ftgcr_test.dir/ftgcr_test.cpp.o.d"
  "ftgcr_test"
  "ftgcr_test.pdb"
  "ftgcr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftgcr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
