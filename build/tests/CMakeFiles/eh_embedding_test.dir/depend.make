# Empty dependencies file for eh_embedding_test.
# This may be replaced when dependencies are built.
