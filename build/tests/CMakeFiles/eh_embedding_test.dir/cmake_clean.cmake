file(REMOVE_RECURSE
  "CMakeFiles/eh_embedding_test.dir/eh_embedding_test.cpp.o"
  "CMakeFiles/eh_embedding_test.dir/eh_embedding_test.cpp.o.d"
  "eh_embedding_test"
  "eh_embedding_test.pdb"
  "eh_embedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eh_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
