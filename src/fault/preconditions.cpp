#include "fault/preconditions.hpp"

#include <array>
#include <map>
#include <sstream>

#include "fault/categorize.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/error.hpp"

namespace gcube {

namespace {

/// Identifies one GEEC hypercube: (ending class, fixed-bits key).
using GeecId = std::uint64_t;

[[nodiscard]] GeecId geec_id(const GaussianCube& gc, NodeId u) {
  return (static_cast<std::uint64_t>(gc.ending_class(u)) << 32) |
         gc.geec_key(u);
}

std::string describe_geec(const GaussianCube& gc, GeecId id,
                          std::size_t count, Dim limit) {
  std::ostringstream ss;
  ss << "GEEC(class=" << (id >> 32) << ", key=" << (id & 0xffffffffu)
     << ") holds " << count << " fault(s), limit N(k)=" << limit << " in "
     << gc.name();
  return ss.str();
}

/// Per-GEEC fault counting shared by Theorem 3 and the combined check.
/// When `count_nodes` is set, faulty nodes inside a GEEC count as faulty
/// components of that GEEC (Theorem 3 proper has link faults only).
PreconditionReport check_per_geec(const GaussianCube& gc,
                                  const FaultSet& faults, bool count_nodes) {
  PreconditionReport report;
  std::map<GeecId, std::size_t> per_geec;
  for (const LinkId& l : faults.faulty_links()) {
    if (l.dim < gc.alpha()) continue;  // tree-dimension faults handled by Thm 5
    // Both endpoints share class and key because l.dim is in Dim(class).
    ++per_geec[geec_id(gc, l.lo)];
  }
  if (count_nodes) {
    for (const NodeId u : faults.faulty_nodes()) {
      if (gc.high_dim_count(gc.ending_class(u)) == 0) continue;  // pure B fault
      ++per_geec[geec_id(gc, u)];
    }
  }
  for (const auto& [id, count] : per_geec) {
    const auto k = static_cast<NodeId>(id >> 32);
    const Dim limit = gc.high_dim_count(k);
    if (count >= limit) {
      report.holds = false;
      report.violations.push_back({describe_geec(gc, id, count, limit)});
    }
  }
  return report;
}

/// Identifies one crossing structure G(p, q, k): tree-edge classes p < q
/// plus the fixed-bits value k.
using CrossingId = std::array<NodeId, 3>;

struct CrossingCounts {
  std::size_t side_p = 0;  // faulty components among class-p side nodes/links
  std::size_t side_q = 0;
  std::size_t cross = 0;  // faulty cross links with nonfaulty endpoints
};

/// The fixed-bits value identifying which G(p, q, k) a node of class p or q
/// belongs to: all bits outside [0, alpha) ∪ Dim(p) ∪ Dim(q).
[[nodiscard]] NodeId crossing_key(const GaussianCube& gc, NodeId u, NodeId p,
                                  NodeId q) {
  const NodeId free =
      low_mask(gc.alpha()) | gc.high_dims_mask(p) | gc.high_dims_mask(q);
  return u & low_bits(~free, gc.dims());
}

}  // namespace

PreconditionReport check_theorem3(const GaussianCube& gc,
                                  const FaultSet& faults) {
  PreconditionReport report;
  const CategoryCounts cats = categorize_all(gc, faults);
  if (!cats.only_a()) {
    report.holds = false;
    report.violations.push_back(
        {"Theorem 3 covers A-category (high-dimension link) faults only; "
         "found " +
         std::to_string(cats.b) + " B and " + std::to_string(cats.c) +
         " C fault(s)"});
    return report;
  }
  return check_per_geec(gc, faults, /*count_nodes=*/false);
}

PreconditionReport check_theorem5(const GaussianCube& gc,
                                  const FaultSet& faults) {
  PreconditionReport report;
  std::map<CrossingId, CrossingCounts> per_crossing;
  const Dim alpha = gc.alpha();
  const GaussianTree tree(alpha);  // class-level quotient tree T_alpha

  // Attribute each fault to every crossing structure it belongs to.
  for (const NodeId u : faults.faulty_nodes()) {
    const NodeId p = gc.ending_class(u);
    for (const NodeId q : tree.neighbors(p)) {
      const NodeId k = crossing_key(gc, u, p, q);
      auto& counts = per_crossing[{p < q ? p : q, p < q ? q : p, k}];
      (p < q ? counts.side_p : counts.side_q) += 1;
    }
  }
  for (const LinkId& l : faults.faulty_links()) {
    if (l.dim >= alpha) {
      // An intra-class link: lies on the class-p side of every crossing
      // structure at p.
      const NodeId p = gc.ending_class(l.lo);
      for (const NodeId q : tree.neighbors(p)) {
        const NodeId k = crossing_key(gc, l.lo, p, q);
        auto& counts = per_crossing[{p < q ? p : q, p < q ? q : p, k}];
        (p < q ? counts.side_p : counts.side_q) += 1;
      }
    } else {
      // A tree-dimension (cross) link; counted only when both endpoints are
      // nonfaulty (Theorem 4's F_0 definition excludes links already dead
      // via a node fault).
      if (faults.node_faulty(l.lo) || faults.node_faulty(l.hi())) continue;
      const NodeId p = gc.ending_class(l.lo);
      const NodeId q = gc.ending_class(l.hi());
      const NodeId k = crossing_key(gc, l.lo, p, q);
      per_crossing[{p < q ? p : q, p < q ? q : p, k}].cross += 1;
    }
  }

  for (const auto& [id, counts] : per_crossing) {
    const auto [p, q, k] = id;
    const Dim dim_p = gc.high_dim_count(p);
    const Dim dim_q = gc.high_dim_count(q);
    auto violated = [](std::size_t faults_seen, Dim limit) {
      return faults_seen > 0 && faults_seen >= limit;
    };
    if (violated(counts.side_p + counts.cross, dim_p) ||
        violated(counts.side_q + counts.cross, dim_q)) {
      std::ostringstream ss;
      ss << "crossing G(p=" << p << ", q=" << q << ", k=" << k << ") has "
         << counts.side_p << "+" << counts.cross << " faults vs |Dim(p)|="
         << dim_p << " and " << counts.side_q << "+" << counts.cross
         << " vs |Dim(q)|=" << dim_q << " in " << gc.name();
      report.holds = false;
      report.violations.push_back({ss.str()});
    }
  }
  return report;
}

PreconditionReport check_ftgcr_precondition(const GaussianCube& gc,
                                            const FaultSet& faults) {
  PreconditionReport report = check_per_geec(gc, faults, /*count_nodes=*/true);
  PreconditionReport crossing = check_theorem5(gc, faults);
  if (!crossing.holds) {
    report.holds = false;
    for (auto& v : crossing.violations) {
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

}  // namespace gcube
