#include "fault/fault_set.hpp"

namespace gcube {

void FaultSet::fail_node(NodeId u) {
  if (faulty_nodes_set_.insert(u).second) {
    faulty_nodes_.push_back(u);
    ++version_;
  }
}

void FaultSet::fail_link(NodeId u, Dim c) {
  const LinkId l = LinkId::of(u, c);
  if (faulty_links_set_.insert(key(l)).second) {
    faulty_links_.push_back(l);
    ++version_;
  }
}

bool FaultSet::repair_node(NodeId u) {
  if (faulty_nodes_set_.erase(u) == 0) return false;
  std::erase(faulty_nodes_, u);
  ++version_;
  ++generation_;  // entry removed: incremental cursors are invalid
  return true;
}

bool FaultSet::repair_link(NodeId u, Dim c) {
  const LinkId l = LinkId::of(u, c);
  if (faulty_links_set_.erase(key(l)) == 0) return false;
  std::erase(faulty_links_, l);
  ++version_;
  ++generation_;  // entry removed: incremental cursors are invalid
  return true;
}

void FaultSet::clear() {
  if (!empty()) {
    ++version_;
    ++generation_;
  }
  faulty_nodes_.clear();
  faulty_links_.clear();
  faulty_nodes_set_.clear();
  faulty_links_set_.clear();
}

}  // namespace gcube
