#include "fault/fault_set.hpp"

namespace gcube {

void FaultSet::fail_node(NodeId u) {
  if (faulty_nodes_set_.insert(u).second) {
    faulty_nodes_.push_back(u);
    ++version_;
  }
}

void FaultSet::fail_link(NodeId u, Dim c) {
  const LinkId l = LinkId::of(u, c);
  if (faulty_links_set_.insert(key(l)).second) {
    faulty_links_.push_back(l);
    ++version_;
  }
}

void FaultSet::clear() {
  if (!empty()) {
    ++version_;
    ++generation_;
  }
  faulty_nodes_.clear();
  faulty_links_.clear();
  faulty_nodes_set_.clear();
  faulty_links_set_.clear();
}

}  // namespace gcube
