#include "fault/overlay.hpp"

#include "util/error.hpp"

namespace gcube {

void FaultOverlay::attach(const Topology& topo) {
  topo_ = &topo;
  const std::uint64_t nodes = topo.node_count();
  const Dim n = topo.dims();
  full_.assign(nodes, 0);
  for (NodeId u = 0; u < nodes; ++u) {
    std::uint32_t mask = 0;
    for (Dim c = 0; c < n; ++c) {
      if (topo.has_link(u, c)) mask |= std::uint32_t{1} << c;
    }
    full_[u] = mask;
  }
  usable_ = full_;
  clean_.reset(nodes);
  for (NodeId u = 0; u < nodes; ++u) clean_.set(u);
  nodes_seen_ = 0;
  links_seen_ = 0;
  version_seen_ = ~std::uint64_t{0};
  generation_seen_ = 0;
}

void FaultOverlay::apply_node(NodeId v) {
  if (v >= usable_.size()) return;  // foreign fault entry: not our topology
  // A faulty node kills all of its incident links, in both directions.
  std::uint32_t links = full_[v];
  usable_[v] = 0;
  clean_.assign(v, full_[v] == 0);
  while (links != 0) {
    const Dim c = lsb_index(links);
    links &= links - 1;
    const NodeId w = flip_bit(v, c);
    usable_[w] &= ~(std::uint32_t{1} << c);
    reclean(w);
  }
}

void FaultOverlay::apply_link(LinkId l) {
  if (l.lo >= usable_.size() || l.hi() >= usable_.size()) return;
  const std::uint32_t bit = std::uint32_t{1} << l.dim;
  usable_[l.lo] &= ~bit;
  usable_[l.hi()] &= ~bit;
  reclean(l.lo);
  reclean(l.hi());
}

void FaultOverlay::rebuild(const FaultSet& faults) {
  usable_ = full_;
  for (NodeId u = 0; u < usable_.size(); ++u) clean_.set(u);
  nodes_seen_ = 0;
  links_seen_ = 0;
  for (const NodeId v : faults.faulty_nodes()) apply_node(v);
  for (const LinkId l : faults.faulty_links()) apply_link(l);
  nodes_seen_ = faults.faulty_nodes().size();
  links_seen_ = faults.faulty_links().size();
}

void FaultOverlay::refresh(const FaultSet& faults) {
  GCUBE_REQUIRE(topo_ != nullptr, "overlay refreshed before attach");
  if (version_seen_ == faults.version()) return;
  const std::vector<NodeId>& nodes = faults.faulty_nodes();
  const std::vector<LinkId>& links = faults.faulty_links();
  if (generation_seen_ != faults.generation()) {
    // Entries were discarded (clear() or a repair) since the last refresh:
    // the cursors no longer describe a prefix of the vectors, even if they
    // regrew past them, and removals cannot be replayed incrementally.
    rebuild(faults);
    generation_seen_ = faults.generation();
  } else {
    for (; nodes_seen_ < nodes.size(); ++nodes_seen_) {
      apply_node(nodes[nodes_seen_]);
    }
    for (; links_seen_ < links.size(); ++links_seen_) {
      apply_link(links[links_seen_]);
    }
  }
  version_seen_ = faults.version();
}

}  // namespace gcube
