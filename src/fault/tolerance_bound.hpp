// Fault-tolerance bounds: N(k), t_k, and T(GC) (paper Theorem 3 and Fig. 4).
//
// N(k) = t_k = |Dim(k)| is the dimension of every GEEC hypercube of ending
// class k; each such hypercube tolerates at most t_k - 1 A-category faults,
// and class k contains 2^(n - alpha - t_k) disjoint GEECs, so the maximum
// number of tolerable A-category link faults across the whole cube is
//
//   T(GC(n, 2^alpha)) = sum over classes k of max(t_k - 1, 0) * 2^(n-alpha-t_k).
//
// The closed form of t_k — floor((n-1-k)/2^alpha) + 1 - [k < alpha] — is the
// paper's formula (OCR-damaged in the source text; reconstructed and
// verified against direct enumeration of Dim(k) in the tests).
#pragma once

#include <cstdint>

#include "topology/gaussian_cube.hpp"
#include "util/bits.hpp"

namespace gcube {

/// Closed-form t_k = |Dim(k)| for GC(n, 2^alpha). Preconditions:
/// alpha <= n, k < 2^alpha.
[[nodiscard]] Dim t_k_closed_form(Dim n, Dim alpha, NodeId k) noexcept;

/// Maximum number of A-category link faults tolerable under Theorem 3.
[[nodiscard]] std::uint64_t max_tolerable_faults(const GaussianCube& gc);

/// Convenience overload computing the bound without building the topology.
[[nodiscard]] std::uint64_t max_tolerable_faults(Dim n, Dim alpha);

/// log2 of the bound, as plotted in the paper's Figure 4 (returns -inf-like
/// negative value, namely -1.0, when the bound is 0).
[[nodiscard]] double log2_max_tolerable_faults(Dim n, Dim alpha);

}  // namespace gcube
