// Fault categorization (paper Definitions 3-5).
//
// The categories classify faults by which level of the two-level routing
// decomposition they break in GC(n, 2^alpha):
//   A — a link fault in a dimension >= alpha: breaks one hypercube-level
//       move inside a single GEEC; handled by FT hypercube routing (Thm 3).
//   B — a fault whose broken links are all in dimensions < alpha: a link
//       fault in a tree dimension, or a node fault at a node with no
//       hypercube-level links (|Dim(class)| == 0); breaks tree crossings.
//   C — a node fault breaking links at both levels.
// Together with the Exchanged-Hypercube machinery (Thm 5), B and C faults
// are routed around when crossing tree edges.
#pragma once

#include <string_view>

#include "fault/fault_set.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {

enum class FaultCategory { A, B, C };

[[nodiscard]] std::string_view to_string(FaultCategory c) noexcept;

/// Category of a link fault in dimension c of `gc` (Definitions 3/4):
/// A when c >= alpha, B otherwise.
[[nodiscard]] FaultCategory categorize_link_fault(const GaussianCube& gc,
                                                  Dim c) noexcept;

/// Category of a node fault at u (Definitions 4/5): B when the node has no
/// link in any dimension >= alpha, C otherwise. (With alpha == 0 there are
/// no tree dimensions at all; such node faults are reported as C — they are
/// handled entirely at the hypercube level.)
[[nodiscard]] FaultCategory categorize_node_fault(const GaussianCube& gc,
                                                  NodeId u) noexcept;

/// Counts of faults in `faults` by category, relative to `gc`.
struct CategoryCounts {
  std::size_t a = 0;
  std::size_t b = 0;
  std::size_t c = 0;

  [[nodiscard]] std::size_t total() const noexcept { return a + b + c; }
  /// True iff every fault is an A-category link fault (the Theorem 3 regime).
  [[nodiscard]] bool only_a() const noexcept { return b == 0 && c == 0; }
};

[[nodiscard]] CategoryCounts categorize_all(const GaussianCube& gc,
                                            const FaultSet& faults);

}  // namespace gcube
