#include "fault/categorize.hpp"

namespace gcube {

std::string_view to_string(FaultCategory c) noexcept {
  switch (c) {
    case FaultCategory::A:
      return "A";
    case FaultCategory::B:
      return "B";
    case FaultCategory::C:
      return "C";
  }
  return "?";
}

FaultCategory categorize_link_fault(const GaussianCube& gc, Dim c) noexcept {
  return c >= gc.alpha() ? FaultCategory::A : FaultCategory::B;
}

FaultCategory categorize_node_fault(const GaussianCube& gc,
                                    NodeId u) noexcept {
  return gc.high_dim_count(gc.ending_class(u)) == 0 ? FaultCategory::B
                                                    : FaultCategory::C;
}

CategoryCounts categorize_all(const GaussianCube& gc, const FaultSet& faults) {
  CategoryCounts counts;
  for (const LinkId& l : faults.faulty_links()) {
    if (categorize_link_fault(gc, l.dim) == FaultCategory::A) {
      ++counts.a;
    } else {
      ++counts.b;
    }
  }
  for (const NodeId u : faults.faulty_nodes()) {
    if (categorize_node_fault(gc, u) == FaultCategory::B) {
      ++counts.b;
    } else {
      ++counts.c;
    }
  }
  return counts;
}

}  // namespace gcube
