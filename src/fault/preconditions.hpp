// Machine-checkable preconditions of the paper's Theorems 3 and 5.
//
// Theorem 3 (A-category faults only): routing succeeds for every nonfaulty
// source/destination pair if every GEEC(k, t) hypercube contains fewer than
// N(k) = |Dim(k)| faulty components.
//
// Theorem 5 (B/C-category faults): for every Gaussian-Tree edge (p, q) and
// every fixed-bits value k, the crossing structure G(p, q, k) ≅
// EH(|Dim(p)|, |Dim(q)|) must satisfy e_s + e_0 < |Dim(p)| and
// e_t + e_0 < |Dim(q)|, where e_s / e_t count faulty components on the two
// sides and e_0 counts faulty cross links between nonfaulty endpoints.
//
// Boundary reading: the paper states strict inequalities, which with zero
// faults in a structure of |Dim| == 0 would read "0 < 0" and never hold; we
// apply each inequality only to structures that actually contain faults
// (a fault-free structure needs no rerouting). This is the only sensible
// reading and is what the routing algorithm actually requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {

/// One violated constraint, for diagnostics.
struct PreconditionViolation {
  std::string what;  // human-readable description of the violated bound
};

struct PreconditionReport {
  bool holds = true;
  std::vector<PreconditionViolation> violations;

  explicit operator bool() const noexcept { return holds; }
};

/// Theorem 3 precondition: all faults are A-category link faults, and each
/// GEEC hypercube holds fewer than |Dim(k)| of them.
[[nodiscard]] PreconditionReport check_theorem3(const GaussianCube& gc,
                                                const FaultSet& faults);

/// Theorem 5 precondition over every crossing structure G(p, q, k).
[[nodiscard]] PreconditionReport check_theorem5(const GaussianCube& gc,
                                                const FaultSet& faults);

/// The precondition the full FTGCR strategy needs: the Theorem-3-style bound
/// per GEEC, counting faulty nodes as well as marked links, plus the
/// Theorem-5 crossing bounds. This is what the routing tests and the fault
/// injection campaign check before asserting guaranteed delivery.
[[nodiscard]] PreconditionReport check_ftgcr_precondition(
    const GaussianCube& gc, const FaultSet& faults);

}  // namespace gcube
