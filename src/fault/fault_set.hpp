// Fault sets: which nodes and links of a network are broken.
//
// Simulation assumption (3) of the paper: a faulty node makes all of its
// incident links faulty. FaultSet therefore distinguishes a link being
// *marked* faulty (an A/B-category link error) from a link being *unusable*
// (marked faulty, or either endpoint node faulty) — routing cares about the
// latter, categorization (fault/categorize.hpp) about the former.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/bits.hpp"

namespace gcube {

/// Identifies one undirected link by its lower endpoint (bit c cleared) and
/// dimension.
struct LinkId {
  NodeId lo;  // endpoint with bit `dim` == 0
  Dim dim;

  /// Canonical id of the link in dimension c incident to u.
  [[nodiscard]] static LinkId of(NodeId u, Dim c) noexcept {
    return {u & ~(NodeId{1} << c), c};
  }
  [[nodiscard]] NodeId hi() const noexcept { return flip_bit(lo, dim); }
  friend bool operator==(const LinkId&, const LinkId&) = default;
};

class FaultSet {
 public:
  /// Marks node u faulty. Idempotent.
  void fail_node(NodeId u);

  /// Marks the link in dimension c at node u faulty (either endpoint may be
  /// given). Idempotent.
  void fail_link(NodeId u, Dim c);

  /// Clears node u's fault mark (a transient fault healed — the node
  /// rebooted). Returns true iff u was faulty. Any link fault marks that
  /// were recorded independently of the node remain in place.
  bool repair_node(NodeId u);

  /// Clears the fault mark of the link in dimension c at node u (either
  /// endpoint may be given). Returns true iff the link was marked. The link
  /// stays unusable while either endpoint node is still faulty.
  bool repair_link(NodeId u, Dim c);

  [[nodiscard]] bool node_faulty(NodeId u) const {
    return faulty_nodes_set_.contains(u);
  }

  /// True iff the link itself carries a fault mark (independent of endpoint
  /// node status).
  [[nodiscard]] bool link_marked(NodeId u, Dim c) const {
    return faulty_links_set_.contains(key(LinkId::of(u, c)));
  }

  /// True iff a packet may traverse the link in dimension c from node u:
  /// the link is not marked faulty and neither endpoint node is faulty.
  [[nodiscard]] bool link_usable(NodeId u, Dim c) const {
    return !link_marked(u, c) && !node_faulty(u) &&
           !node_faulty(flip_bit(u, c));
  }

  /// Mutation counter: bumped whenever the fault set actually changes —
  /// failures AND repairs. Consumers that cache fault-dependent plans (the
  /// routers' per-hop memoization) compare versions instead of subscribing
  /// to callbacks; entries stamped before a repair go stale exactly like
  /// entries stamped before a failure.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Number of mutations that *discarded* entries: clear() calls and
  /// successful repairs. Incremental consumers of the insertion-order
  /// vectors (fault/overlay.hpp) use this to tell "entries appended" from
  /// "entries removed", which a version move alone cannot distinguish —
  /// after a removal the vectors are no longer a superset of what the
  /// consumer already applied, so it must rebuild.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  [[nodiscard]] std::size_t node_fault_count() const {
    return faulty_nodes_.size();
  }
  [[nodiscard]] std::size_t link_fault_count() const {
    return faulty_links_.size();
  }
  [[nodiscard]] bool empty() const {
    return faulty_nodes_.empty() && faulty_links_.empty();
  }

  /// Faulty nodes / marked links in insertion order (deterministic).
  [[nodiscard]] const std::vector<NodeId>& faulty_nodes() const {
    return faulty_nodes_;
  }
  [[nodiscard]] const std::vector<LinkId>& faulty_links() const {
    return faulty_links_;
  }

  void clear();

 private:
  [[nodiscard]] static std::uint64_t key(LinkId l) noexcept {
    return (static_cast<std::uint64_t>(l.lo) << 6) | l.dim;
  }

  std::vector<NodeId> faulty_nodes_;
  std::vector<LinkId> faulty_links_;
  std::unordered_set<NodeId> faulty_nodes_set_;
  std::unordered_set<std::uint64_t> faulty_links_set_;
  std::uint64_t version_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace gcube
