#include "fault/tolerance_bound.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gcube {

Dim t_k_closed_form(Dim n, Dim alpha, NodeId k) noexcept {
  // Dimensions congruent to k mod 2^alpha in [0, n-1] are k, k + 2^alpha,
  // k + 2*2^alpha, ...; the only candidate below alpha is k itself.
  if (k > n - 1) return 0;
  const Dim count_all = (n - 1 - k) / static_cast<Dim>(pow2(alpha)) + 1;
  return count_all - (k < alpha ? 1u : 0u);
}

std::uint64_t max_tolerable_faults(const GaussianCube& gc) {
  return max_tolerable_faults(gc.dims(), gc.alpha());
}

std::uint64_t max_tolerable_faults(Dim n, Dim alpha) {
  GCUBE_REQUIRE(alpha <= n && n <= kMaxDimension,
                "invalid GC parameters for tolerance bound");
  std::uint64_t total = 0;
  const std::uint64_t classes = pow2(alpha);
  for (std::uint64_t k = 0; k < classes; ++k) {
    const Dim tk = t_k_closed_form(n, alpha, static_cast<NodeId>(k));
    if (tk >= 1) {
      total += static_cast<std::uint64_t>(tk - 1) << (n - alpha - tk);
    }
  }
  return total;
}

double log2_max_tolerable_faults(Dim n, Dim alpha) {
  const std::uint64_t t = max_tolerable_faults(n, alpha);
  return t == 0 ? -1.0 : std::log2(static_cast<double>(t));
}

}  // namespace gcube
