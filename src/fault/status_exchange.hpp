// Distributed fault-status exchange (paper §1 claims 4-5, assumption 4 of
// §6).
//
// The strategy's fault handling assumes each node knows (a) the status of
// its own incident links and (b) the B/C-category faults related to nodes
// sharing its low alpha bits (its ending class). This module simulates how
// that knowledge spreads: per round, every node exchanges its fault table
// with its *same-class* neighbors (the GEEC links, plus nothing else — tree
// links cross classes and carry no class-local gossip). It measures
//
//  * rounds_to_convergence — how many rounds until every nonfaulty node of
//    each class knows every fault related to its class (claim 4 bounds
//    this by a small function of the class structure);
//  * max_table_entries — the largest per-node table, in entries; each entry
//    is one n-bit node address (claim 5: at most F addresses, where F
//    counts the faults related to same-class nodes).
//
// "Related to class k" covers faulty nodes of class k and faulty links with
// an endpoint of class k.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/gaussian_cube.hpp"

namespace gcube {

struct StatusExchangeResult {
  /// Rounds until no table changed (0 when there is nothing to learn).
  std::uint32_t rounds_to_convergence = 0;
  /// Largest per-node table across all nonfaulty nodes.
  std::size_t max_table_entries = 0;
  /// Faults related to the busiest class (claim 5's F).
  std::size_t max_class_faults = 0;
  /// True iff after convergence every nonfaulty node knows every fault
  /// related to its own class that is reachable through its GEEC. Faults
  /// in other GEEC instances of the same class cannot travel through
  /// class-local links; the paper's assumption implicitly covers exactly
  /// the reachable ones, which is also all the routing ever needs.
  bool converged_complete = true;
};

/// Simulates synchronous rounds of same-class fault gossip on `gc` under
/// `faults` and reports convergence behavior. Cost: O(rounds * nodes *
/// degree * table); intended for analysis, not the routing hot path.
[[nodiscard]] StatusExchangeResult simulate_status_exchange(
    const GaussianCube& gc, const FaultSet& faults);

}  // namespace gcube
