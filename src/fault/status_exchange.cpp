#include "fault/status_exchange.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace gcube {

namespace {

/// Compact fault-item table: one bit per tracked fault.
class BitTable {
 public:
  explicit BitTable(std::size_t bits) : blocks_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { blocks_[i / 64] |= std::uint64_t{1} << (i % 64); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (blocks_[i / 64] >> (i % 64)) & 1u;
  }
  /// Returns true iff this table changed.
  bool merge(const BitTable& other) {
    bool changed = false;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const std::uint64_t merged = blocks_[b] | other.blocks_[b];
      changed = changed || merged != blocks_[b];
      blocks_[b] = merged;
    }
    return changed;
  }
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (const auto b : blocks_) {
      total += static_cast<std::size_t>(std::popcount(b));
    }
    return total;
  }
  [[nodiscard]] bool covers(const BitTable& other) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if ((other.blocks_[b] & ~blocks_[b]) != 0) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> blocks_;
};

}  // namespace

StatusExchangeResult simulate_status_exchange(const GaussianCube& gc,
                                              const FaultSet& faults) {
  StatusExchangeResult result;
  const auto nodes = static_cast<std::size_t>(gc.node_count());

  // Enumerate fault items and the classes they are related to.
  struct Item {
    bool is_node;
    NodeId node;  // faulty node, or the link's lo endpoint
    Dim dim;      // link dimension (links only)
  };
  std::vector<Item> items;
  for (const NodeId u : faults.faulty_nodes()) {
    items.push_back({true, u, 0});
  }
  for (const LinkId& l : faults.faulty_links()) {
    items.push_back({false, l.lo, l.dim});
  }
  std::map<NodeId, std::size_t> class_fault_count;
  auto relates_to = [&](const Item& item, NodeId cls) {
    if (item.is_node) return gc.ending_class(item.node) == cls;
    return gc.ending_class(item.node) == cls ||
           gc.ending_class(flip_bit(item.node, item.dim)) == cls;
  };
  for (NodeId k = 0; k < gc.class_count(); ++k) {
    std::size_t count = 0;
    for (const Item& item : items) count += relates_to(item, k);
    class_fault_count[k] = count;
    result.max_class_faults = std::max(result.max_class_faults, count);
  }

  // Seed: every nonfaulty node observes the faults incident to it that are
  // related to its own class (dead links reveal both link and neighbor-node
  // faults).
  std::vector<BitTable> table(nodes, BitTable(items.size()));
  for (std::size_t u64 = 0; u64 < nodes; ++u64) {
    const auto u = static_cast<NodeId>(u64);
    if (faults.node_faulty(u)) continue;
    const NodeId cls = gc.ending_class(u);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!relates_to(items[i], cls)) continue;
      const bool incident =
          items[i].is_node
              ? hamming(items[i].node, u) == 1 &&
                    gc.has_link(u, lsb_index(items[i].node ^ u))
              : items[i].node == u || flip_bit(items[i].node, items[i].dim) == u;
      if (incident) table[u64].set(i);
    }
  }

  // Synchronous gossip over usable same-class (GEEC) links to a fixpoint.
  bool changed = !items.empty();
  while (changed) {
    changed = false;
    std::vector<BitTable> next = table;
    for (std::size_t u64 = 0; u64 < nodes; ++u64) {
      const auto u = static_cast<NodeId>(u64);
      if (faults.node_faulty(u)) continue;
      for (NodeId m = gc.high_dims_mask(gc.ending_class(u)); m != 0;
           m &= m - 1) {
        const Dim c = lsb_index(m);
        if (!faults.link_usable(u, c)) continue;
        changed = next[u64].merge(table[flip_bit(u, c)]) || changed;
      }
    }
    table.swap(next);
    if (changed) ++result.rounds_to_convergence;
  }

  for (std::size_t u64 = 0; u64 < nodes; ++u64) {
    if (faults.node_faulty(static_cast<NodeId>(u64))) continue;
    result.max_table_entries =
        std::max(result.max_table_entries, table[u64].count());
  }

  // Completeness: within every connected same-class component (over usable
  // GEEC links), every node's table must cover the union of the component's
  // seeds — which at a fixpoint means covering any member's table.
  std::vector<bool> seen(nodes, false);
  for (std::size_t start = 0; start < nodes; ++start) {
    const auto s = static_cast<NodeId>(start);
    if (seen[start] || faults.node_faulty(s)) continue;
    std::vector<NodeId> component;
    std::deque<NodeId> queue{s};
    seen[start] = true;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      component.push_back(u);
      for (NodeId m = gc.high_dims_mask(gc.ending_class(u)); m != 0;
           m &= m - 1) {
        const Dim c = lsb_index(m);
        if (!faults.link_usable(u, c)) continue;
        const NodeId v = flip_bit(u, c);
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back(v);
        }
      }
    }
    for (const NodeId u : component) {
      if (!table[u].covers(table[component.front()]) ||
          !table[component.front()].covers(table[u])) {
        result.converged_complete = false;
      }
    }
  }
  return result;
}

}  // namespace gcube
