// Fault overlay: dense per-node link-usability masks over a FaultSet.
//
// The FaultSet answers link_usable(u, c) with up to three hash probes; the
// simulator asks that question once per packet-hop. The overlay flattens
// the answer into one 32-bit mask per node — bit c set iff the dimension-c
// link exists at u AND is usable — refreshed incrementally from the
// FaultSet's insertion-ordered fault vectors whenever its version moves.
// It also answers the sparse-patch question the next-hop fabric needs:
// node_clean(u) is true iff u is farther than distance 1 from every faulty
// node and has no incident marked link, i.e. every existing link of u is
// usable, so a precomputed fault-free hop can be taken with no per-link
// check at all.
//
// Concurrency contract: refresh() runs only at the simulator's serial
// points (run start and after fault-schedule application); worker threads
// read the masks between those points without synchronization.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/topology.hpp"
#include "util/bitmap.hpp"

namespace gcube {

class FaultOverlay {
 public:
  /// Builds the full-link masks for `topo` (one has_link sweep) and resets
  /// to the fault-free state. The topology must outlive the overlay.
  void attach(const Topology& topo);

  /// Brings the masks up to date with `faults`. Incremental: only fault
  /// entries appended since the last refresh are applied (a generation()
  /// move — FaultSet::clear() or a repair — forces a full rebuild, since
  /// removals cannot be replayed through append cursors). No-op when the
  /// version is unchanged.
  void refresh(const FaultSet& faults);

  /// Bit c set iff the dimension-c link exists at u and is usable.
  [[nodiscard]] std::uint32_t usable_mask(NodeId u) const noexcept {
    return usable_[u];
  }
  /// Every existing link of u present in the topology (fault-independent).
  [[nodiscard]] std::uint32_t full_mask(NodeId u) const noexcept {
    return full_[u];
  }
  [[nodiscard]] bool link_usable(NodeId u, Dim c) const noexcept {
    return (usable_[u] >> c) & 1u;
  }
  /// True iff no fault touches u or any neighbor of u: all its links are
  /// usable, so fault-oblivious next hops from u are safe. Served from a
  /// dense bitmap — one load + shift on the steering hot path, instead of
  /// two mask loads and a compare.
  [[nodiscard]] bool node_clean(NodeId u) const noexcept {
    return clean_.test(u);
  }
  /// 64 nodes' clean bits at once (bit i = node 64 * w + i), for
  /// word-parallel scans over node ranges.
  [[nodiscard]] std::uint64_t clean_word(std::size_t w) const noexcept {
    return clean_.word(w);
  }
  /// 64 nodes' clean bits starting at an arbitrary base node (bit i = node
  /// base + i), for shards whose node range is not word-aligned.
  [[nodiscard]] std::uint64_t clean_window(NodeId base) const noexcept {
    return clean_.window(base);
  }

 private:
  void apply_node(NodeId v);
  void apply_link(LinkId l);
  void rebuild(const FaultSet& faults);
  void reclean(NodeId u) noexcept {
    clean_.assign(u, usable_[u] == full_[u]);
  }

  const Topology* topo_ = nullptr;
  std::vector<std::uint32_t> full_;
  std::vector<std::uint32_t> usable_;
  NodeBitmap clean_;  // bit u == (usable_[u] == full_[u]), kept in lockstep
  // Cursors into FaultSet::faulty_nodes() / faulty_links(); entries before
  // them are already reflected in usable_.
  std::size_t nodes_seen_ = 0;
  std::size_t links_seen_ = 0;
  std::uint64_t version_seen_ = ~std::uint64_t{0};
  std::uint64_t generation_seen_ = 0;
};

}  // namespace gcube
