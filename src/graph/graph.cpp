#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gcube {

Graph::Graph(std::uint64_t nodes) : adjacency_(nodes) {}

Graph::Graph(const Topology& topo) : adjacency_(topo.node_count()) {
  const Dim n = topo.dims();
  for (std::uint64_t u64 = 0; u64 < adjacency_.size(); ++u64) {
    const auto u = static_cast<NodeId>(u64);
    for (Dim c = 0; c < n; ++c) {
      const NodeId v = Topology::neighbor(u, c);
      if (u < v && topo.has_link(u, c)) add_edge(u, v);
    }
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  GCUBE_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
                "edge endpoint out of range");
  GCUBE_REQUIRE(u != v, "self-loops are not allowed");
  GCUBE_REQUIRE(!has_edge(u, v), "duplicate edge");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& adj = adjacency_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

}  // namespace gcube
