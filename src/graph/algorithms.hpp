// Generic graph algorithms used for verification and analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace gcube {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `src` over a materialized graph.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId src);

/// BFS distances from `src` over a topology, traversing only links for which
/// `link_ok(u, c)` holds (pass an always-true predicate for the fault-free
/// network). Used to compute fault-aware shortest paths as ground truth.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const Topology& topo, NodeId src,
    const std::function<bool(NodeId, Dim)>& link_ok);

/// Shortest-path length between two nodes in a fault-free topology, or
/// kUnreachable.
[[nodiscard]] std::uint32_t shortest_path_length(const Topology& topo,
                                                 NodeId s, NodeId d);

/// Number of connected components.
[[nodiscard]] std::uint64_t component_count(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// True iff g is a tree (connected with exactly n-1 edges).
[[nodiscard]] bool is_tree(const Graph& g);

/// Exact diameter via all-pairs BFS. Requires a connected graph; intended
/// for small verification graphs. Returns 0 for a single-node graph.
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// degree -> number of nodes with that degree.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Graph& g);

}  // namespace gcube
