// Materialized undirected graph.
//
// Topologies are O(1) predicates and never stored; tests and verification
// code, however, want explicit adjacency to run generic graph algorithms
// against. Graph materializes a Topology (or is built edge-by-edge) for
// node counts small enough to enumerate.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

class Graph {
 public:
  /// An empty graph on `nodes` vertices.
  explicit Graph(std::uint64_t nodes);

  /// Materializes every link of a topology.
  explicit Graph(const Topology& topo);

  /// Adds an undirected edge. Self-loops and duplicates are rejected.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId u) const {
    return adjacency_[u];
  }
  [[nodiscard]] Dim degree(NodeId u) const {
    return static_cast<Dim>(adjacency_[u].size());
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::uint64_t edges_ = 0;
};

}  // namespace gcube
