// GraphViz DOT export for topologies, fault sets, and routes — the "let me
// actually look at this network" tool an adopter reaches for first.
#pragma once

#include <iosfwd>

#include "fault/fault_set.hpp"
#include "routing/route.hpp"
#include "topology/topology.hpp"

namespace gcube {

struct DotOptions {
  /// Render node labels in binary (default) or decimal.
  bool binary_labels = true;
  /// Color faulty nodes/links red; requires a fault set.
  const FaultSet* faults = nullptr;
  /// Highlight one route in bold blue.
  const Route* route = nullptr;
};

/// Writes an undirected DOT graph of `topo` (intended for small networks;
/// guarded to <= 2^12 nodes).
void write_dot(std::ostream& os, const Topology& topo,
               const DotOptions& options = {});

}  // namespace gcube
