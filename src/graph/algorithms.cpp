#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace gcube {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  GCUBE_REQUIRE(src < g.node_count(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs_distances(
    const Topology& topo, NodeId src,
    const std::function<bool(NodeId, Dim)>& link_ok) {
  GCUBE_REQUIRE(src < topo.node_count(), "BFS source out of range");
  std::vector<std::uint32_t> dist(topo.node_count(), kUnreachable);
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  const Dim n = topo.dims();
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (Dim c = 0; c < n; ++c) {
      if (!topo.has_link(u, c) || !link_ok(u, c)) continue;
      const NodeId v = Topology::neighbor(u, c);
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t shortest_path_length(const Topology& topo, NodeId s, NodeId d) {
  const auto dist =
      bfs_distances(topo, s, [](NodeId, Dim) { return true; });
  return dist[d];
}

std::uint64_t component_count(const Graph& g) {
  std::vector<bool> seen(g.node_count(), false);
  std::uint64_t components = 0;
  for (std::uint64_t start = 0; start < g.node_count(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<NodeId> queue{static_cast<NodeId>(start)};
    seen[start] = true;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return components;
}

bool is_connected(const Graph& g) { return component_count(g) == 1; }

bool is_tree(const Graph& g) {
  // Lemma 1 in the paper: connected with exactly n - 1 edges.
  return is_connected(g) && g.edge_count() == g.node_count() - 1;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint64_t u = 0; u < g.node_count(); ++u) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(u));
    for (const std::uint32_t dv : dist) {
      GCUBE_REQUIRE(dv != kUnreachable, "diameter requires a connected graph");
      best = std::max(best, dv);
    }
  }
  return best;
}

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  Dim max_deg = 0;
  for (std::uint64_t u = 0; u < g.node_count(); ++u) {
    max_deg = std::max(max_deg, g.degree(static_cast<NodeId>(u)));
  }
  std::vector<std::uint64_t> hist(max_deg + 1, 0);
  for (std::uint64_t u = 0; u < g.node_count(); ++u) {
    ++hist[g.degree(static_cast<NodeId>(u))];
  }
  return hist;
}

}  // namespace gcube
