#include "graph/dot_export.hpp"

#include <ostream>
#include <set>
#include <string>

#include "util/error.hpp"

namespace gcube {

namespace {

std::string label_of(NodeId u, Dim n, bool binary) {
  if (!binary) return std::to_string(u);
  std::string out(n, '0');
  for (Dim i = 0; i < n; ++i) {
    if (bit(u, n - 1 - i)) out[i] = '1';
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const Topology& topo,
               const DotOptions& options) {
  GCUBE_REQUIRE(topo.node_count() <= pow2(12),
                "DOT export is meant for small networks");
  const Dim n = topo.dims();

  // Collect the highlighted route's links and nodes.
  std::set<std::pair<NodeId, NodeId>> route_links;
  std::set<NodeId> route_nodes;
  if (options.route != nullptr) {
    const auto nodes = options.route->nodes();
    route_nodes.insert(nodes.begin(), nodes.end());
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      route_links.insert({std::min(nodes[i], nodes[i + 1]),
                          std::max(nodes[i], nodes[i + 1])});
    }
  }

  os << "graph \"" << topo.name() << "\" {\n"
     << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  for (std::uint64_t u64 = 0; u64 < topo.node_count(); ++u64) {
    const auto u = static_cast<NodeId>(u64);
    os << "  n" << u << " [label=\"" << label_of(u, n, options.binary_labels)
       << "\"";
    if (options.faults != nullptr && options.faults->node_faulty(u)) {
      os << ", color=red, fontcolor=red";
    } else if (route_nodes.contains(u)) {
      os << ", color=blue, penwidth=2";
    }
    os << "];\n";
  }
  for (std::uint64_t u64 = 0; u64 < topo.node_count(); ++u64) {
    const auto u = static_cast<NodeId>(u64);
    for (Dim c = 0; c < n; ++c) {
      const NodeId v = Topology::neighbor(u, c);
      if (v < u || !topo.has_link(u, c)) continue;
      os << "  n" << u << " -- n" << v;
      const bool faulty_link =
          options.faults != nullptr && !options.faults->link_usable(u, c);
      const bool on_route = route_links.contains({u, v});
      if (faulty_link) {
        os << " [color=red, style=dashed]";
      } else if (on_route) {
        os << " [color=blue, penwidth=2]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace gcube
