// Precondition checking.
//
// Library entry points validate their arguments with GCUBE_REQUIRE, which
// throws std::invalid_argument with a location-tagged message: callers of a
// routing library get diagnosable errors, not UB. Internal invariants that
// cannot be violated by any caller use assert().
#pragma once

#include <stdexcept>
#include <string>

namespace gcube::detail {

[[noreturn]] inline void fail_requirement(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed: " + expr +
                              (msg.empty() ? "" : " — " + msg));
}

}  // namespace gcube::detail

#define GCUBE_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::gcube::detail::fail_requirement(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)
