// Dense bitset over a contiguous index range with an ascending-order scan.
//
// Backs the simulator's active-set worklist: each shard keeps one bitmap
// over its own node range (bit i = node begin + i), so membership updates
// are single-word OR/AND-NOT and the per-cycle scan costs one countr_zero
// per live bit plus one load per 64-bit word — O(active) instead of
// O(nodes). Shards never share a bitmap, so no word is written by two
// threads.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace gcube {

class NodeBitmap {
 public:
  /// Sizes the bitmap for indices [0, bits) and clears every bit.
  void reset(std::uint64_t bits) { words_.assign((bits + 63) / 64, 0); }

  void set(std::uint64_t i) noexcept {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear(std::uint64_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::uint64_t i, bool value) noexcept {
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= bit;
    } else {
      words_[i >> 6] &= ~bit;
    }
  }
  [[nodiscard]] bool test(std::uint64_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Word-granular access (64 indices per word, raikv CubeRoute style):
  /// lets callers combine bitmaps with single AND/OR ops and scan masks 64
  /// entries at a time instead of one test() per index.
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept {
    return words_[w];
  }

  /// 64 bits starting at an ARBITRARY base index (bit i of the result =
  /// test(base + i)), stitched from up to two adjacent words. Lets a
  /// caller whose 64-entry window is not word-aligned (e.g. a shard whose
  /// node range starts mid-word) still make one word-parallel query.
  /// Out-of-range high bits read as 0.
  [[nodiscard]] std::uint64_t window(std::uint64_t base) const noexcept {
    const std::size_t w = base >> 6;
    const unsigned off = static_cast<unsigned>(base & 63);
    if (w >= words_.size()) return 0;
    std::uint64_t bits = words_[w] >> off;
    // off == 0 must not reach the shift: x << 64 is undefined.
    if (off != 0 && w + 1 < words_.size()) {
      bits |= words_[w + 1] << (64 - off);
    }
    return bits;
  }

  /// Calls f(i) for every set bit in ascending index order. Each word is
  /// scanned from a copy, so f may clear (or set) bits of the word being
  /// visited without perturbing the iteration.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t live = words_[w];
      while (live != 0) {
        const auto bit = static_cast<std::uint64_t>(std::countr_zero(live));
        live &= live - 1;
        f((static_cast<std::uint64_t>(w) << 6) | bit);
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace gcube
