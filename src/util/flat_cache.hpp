// Sharded, open-addressed, version-stamped cache for routing memoization.
//
// The routers memoize fault-dependent results (stepwise next hops, whole
// source routes) keyed on packed 64-bit node pairs. The original
// implementation used one std::unordered_map behind one std::mutex, which
// serialized every parallel sweep on the router's cache; this replacement
// shards the key space across independent open-addressed tables (raikv's
// CubeRoute flat-storage idiom) so concurrent lookups only contend when
// they land on the same shard.
//
// Staleness is handled by stamping, not clearing: every entry records the
// FaultSet::version() it was computed under, a lookup with a newer version
// treats the entry as a miss, and the following insert refreshes the slot
// in place. No global invalidation pass exists, so a version bump costs
// nothing up front and the table stays allocation-free once warm.
//
// Every lookup is tallied per shard (hit / miss / stale, under the shard
// mutex it already holds) and aggregated by stats(), so cache-effectiveness
// claims are measured rather than asserted. The counters are diagnostics:
// under concurrent use two threads can both miss on a key one of them is
// about to fill, so totals may differ run to run even when the cached
// values — which are pure functions of (key, version) — do not.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/cache_stats.hpp"
#include "util/rng.hpp"

namespace gcube {

/// Fixed-shard concurrent map from uint64 keys to copyable values, with a
/// per-entry version stamp. The all-ones key is reserved as the empty-slot
/// sentinel; packed (node, node) keys never reach it (node labels are at
/// most 26 bits). Values should be cheap to copy (a Dim, a shared_ptr).
template <typename V>
class ShardedVersionCache {
 public:
  /// The cached value, if `key` is present with exactly this version.
  [[nodiscard]] std::optional<V> find(std::uint64_t key,
                                      std::uint64_t version) const {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.slots.empty()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    const std::size_t mask = shard.slots.size() - 1;
    for (std::size_t i = probe_start(key) & mask;; i = (i + 1) & mask) {
      const Entry& e = shard.slots[i];
      if (e.key == kEmptyKey) {
        ++shard.stats.misses;
        return std::nullopt;
      }
      if (e.key == key) {
        if (e.version != version) {
          ++shard.stats.stale;  // superseded entry: recompute and refresh
          return std::nullopt;
        }
        ++shard.stats.hits;
        return e.value;
      }
    }
  }

  /// Inserts or refreshes `key` with the given version stamp. An existing
  /// entry for the key is overwritten in place (the only writer of a key
  /// after a version bump is the thread that just recomputed it; last
  /// writer wins is acceptable because all writers compute identical
  /// values for identical (key, version) pairs).
  void insert(std::uint64_t key, std::uint64_t version, V value) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.slots.empty()) shard.slots.resize(kInitialSlots);
    if ((shard.used + 1) * 4 > shard.slots.size() * 3) grow(shard);
    place(shard, key, version, std::move(value));
  }

  /// Live entries across all shards (stale ones included); diagnostics.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.used;
    }
    return total;
  }

  /// Cumulative lookup counters since construction, summed across shards.
  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.stats;
    }
    return total;
  }

 private:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::size_t kShardBits = 6;  // 64 shards
  static constexpr std::size_t kInitialSlots = 64;  // per shard, power of 2

  struct Entry {
    std::uint64_t key = kEmptyKey;
    std::uint64_t version = 0;
    V value{};
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> slots;  // power-of-two size; empty until first use
    std::size_t used = 0;      // occupied slots, any version
    CacheStats stats;          // lookup counters, guarded by mu
  };

  // Packed node pairs are highly regular, so the raw key is scrambled
  // (mix64, the splitmix finalizer) before it picks a shard and a slot.
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const noexcept {
    return shards_[mix64(key) & ((std::size_t{1} << kShardBits) - 1)];
  }
  /// Slot probing uses the bits the shard choice did not consume.
  [[nodiscard]] static constexpr std::size_t probe_start(
      std::uint64_t key) noexcept {
    return static_cast<std::size_t>(mix64(key) >> kShardBits);
  }

  static void place(Shard& shard, std::uint64_t key, std::uint64_t version,
                    V value) {
    const std::size_t mask = shard.slots.size() - 1;
    for (std::size_t i = probe_start(key) & mask;; i = (i + 1) & mask) {
      Entry& e = shard.slots[i];
      if (e.key == key) {
        e.version = version;
        e.value = std::move(value);
        return;
      }
      if (e.key == kEmptyKey) {
        e.key = key;
        e.version = version;
        e.value = std::move(value);
        ++shard.used;
        return;
      }
    }
  }

  static void grow(Shard& shard) {
    std::vector<Entry> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Entry{});
    shard.used = 0;
    for (Entry& e : old) {
      if (e.key != kEmptyKey) {
        place(shard, e.key, e.version, std::move(e.value));
      }
    }
  }

  mutable std::array<Shard, (std::size_t{1} << kShardBits)> shards_;
};

/// Packs an ordered node pair into a cache key (labels are < 2^26, so the
/// pair never collides with the reserved empty sentinel).
[[nodiscard]] constexpr std::uint64_t pack_node_pair(
    std::uint32_t a, std::uint32_t b) noexcept {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace gcube
