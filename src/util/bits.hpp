// Bit-manipulation helpers shared by all topology and routing code.
//
// Node labels throughout the library are unsigned 32-bit integers whose low
// `n` bits are significant (n <= kMaxDimension). All helpers are constexpr
// and branch-light; they are on the per-hop hot path of the simulator.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace gcube {

using NodeId = std::uint32_t;
using Dim = std::uint32_t;

/// Largest supported network dimension. 2^26 node labels fit comfortably in
/// 32 bits and keep exhaustive per-node sweeps tractable.
inline constexpr Dim kMaxDimension = 26;

/// 2^n as a node count. Precondition: n <= kMaxDimension.
[[nodiscard]] constexpr std::uint64_t pow2(Dim n) noexcept {
  return std::uint64_t{1} << n;
}

/// Value of bit `i` of `x` (0 or 1).
[[nodiscard]] constexpr std::uint32_t bit(NodeId x, Dim i) noexcept {
  return (x >> i) & 1u;
}

/// `x` with bit `i` flipped.
[[nodiscard]] constexpr NodeId flip_bit(NodeId x, Dim i) noexcept {
  return x ^ (NodeId{1} << i);
}

/// `x` with bit `i` forced to `v` (v must be 0 or 1).
[[nodiscard]] constexpr NodeId set_bit(NodeId x, Dim i, std::uint32_t v) noexcept {
  return (x & ~(NodeId{1} << i)) | (NodeId{v & 1u} << i);
}

/// Mask selecting the low `n` bits. low_mask(0) == 0; low_mask(32) is all ones.
[[nodiscard]] constexpr NodeId low_mask(Dim n) noexcept {
  return n >= 32 ? ~NodeId{0} : (NodeId{1} << n) - 1u;
}

/// The low `n` bits of `x`.
[[nodiscard]] constexpr NodeId low_bits(NodeId x, Dim n) noexcept {
  return x & low_mask(n);
}

/// Number of set bits.
[[nodiscard]] constexpr Dim popcount(NodeId x) noexcept {
  return static_cast<Dim>(std::popcount(x));
}

/// Hamming distance between two labels.
[[nodiscard]] constexpr Dim hamming(NodeId a, NodeId b) noexcept {
  return popcount(a ^ b);
}

/// Index of the most significant set bit. Precondition: x != 0.
[[nodiscard]] constexpr Dim msb_index(NodeId x) noexcept {
  return static_cast<Dim>(31 - std::countl_zero(x));
}

/// Index of the least significant set bit. Precondition: x != 0.
[[nodiscard]] constexpr Dim lsb_index(NodeId x) noexcept {
  return static_cast<Dim>(std::countr_zero(x));
}

/// True iff `m` is a power of two (1, 2, 4, ...).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t m) noexcept {
  return m != 0 && (m & (m - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(m).
[[nodiscard]] constexpr Dim log2_exact(std::uint64_t m) noexcept {
  return static_cast<Dim>(std::countr_zero(m));
}

}  // namespace gcube
