#include "util/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gcube {
namespace {

SimdLevel detect() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse;
#endif
  return SimdLevel::kScalar;
}

SimdLevel clamp_to_detected(SimdLevel request) noexcept {
  const SimdLevel detected = detected_simd_level();
  if (request <= detected) return request;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "gcube: note: SIMD level '%s' not supported by this CPU; "
                 "using '%s'\n",
                 to_string(request), to_string(detected));
  }
  return detected;
}

/// Effective level. Initialized lazily on first read so the GCUBE_SIMD
/// environment override applies no matter which entry point runs first;
/// -1 means "not initialized yet".
std::atomic<int> g_level{-1};

SimdLevel initial_level() noexcept {
  SimdLevel level = detected_simd_level();
  if (const char* env = std::getenv("GCUBE_SIMD")) {
    if (const auto parsed = parse_simd_level(env)) {
      level = clamp_to_detected(*parsed);
    } else {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "gcube: note: ignoring unknown GCUBE_SIMD value '%s' "
                     "(want scalar|sse|avx2)\n",
                     env);
      }
    }
  }
  return level;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse" || name == "sse4.2" || name == "sse42")
    return SimdLevel::kSse;
  if (name == "avx2") return SimdLevel::kAvx2;
  return std::nullopt;
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = detect();
  return detected;
}

SimdLevel simd_level() noexcept {
  int raw = g_level.load(std::memory_order_relaxed);
  if (raw < 0) {
    const SimdLevel level = initial_level();
    raw = static_cast<int>(level);
    int expected = -1;
    // First reader wins; a concurrent set_simd_level() keeps its value.
    g_level.compare_exchange_strong(expected, raw, std::memory_order_relaxed);
    raw = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(raw);
}

void set_simd_level(SimdLevel level) noexcept {
  g_level.store(static_cast<int>(clamp_to_detected(level)),
                std::memory_order_relaxed);
}

}  // namespace gcube
