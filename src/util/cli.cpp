#include "util/cli.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace gcube {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    GCUBE_REQUIRE(!body.empty(), "bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --key value when the next token is not itself a flag; --flag
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

void CliArgs::allow(const std::set<std::string>& flags) {
  for (const auto& [key, value] : values_) {
    GCUBE_REQUIRE(flags.contains(key), "unknown flag --" + key);
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.contains(key);
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

}  // namespace gcube
