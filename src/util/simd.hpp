// Runtime SIMD dispatch for the simulator's vectorized hot-path kernels.
//
// The batched advance and injection paths have three data-parallel kernels
// (hot-record classify, next-hop table lookup, counter-RNG keying) with
// hand-vectorized AVX2 / SSE4.2 implementations next to the scalar
// reference loops. Which implementation runs is a PROCESS-WIDE level
// chosen once at startup:
//
//   * cpuid detection picks the best level the CPU supports
//     (detected_simd_level());
//   * the GCUBE_SIMD environment variable (scalar | sse | avx2) lowers or
//     pins it — the CI equivalence legs force `scalar` this way;
//   * set_simd_level() does the same programmatically (sim_cli --simd=,
//     the determinism tests' level sweep, the bench's simd_scalar twin).
//
// Requests above what the CPU supports are clamped to the detected level
// with a one-time stderr note, so GCUBE_SIMD=avx2 on an SSE-only box
// degrades instead of crashing. Every vector kernel must be BYTE-IDENTICAL
// to its scalar reference — the kernels only batch pure integer functions
// (no floating-point reassociation anywhere) — and the determinism suite
// sweeps all available levels to enforce it.
//
// Hot-loop callers cache simd_level() once (NetworkSim snapshots it at
// construction) and pass it down explicitly, so kernel dispatch is a
// predictable two-way branch, not an atomic load per batch.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace gcube {

/// Ordered by capability: every level implies the ones below it, so
/// "does this kernel's AVX2 variant apply" is a single >= compare.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,  // reference implementation, always available
  kSse = 1,     // SSE4.2: 128-bit integer lanes
  kAvx2 = 2,    // AVX2: 256-bit integer lanes + gathers
};

[[nodiscard]] const char* to_string(SimdLevel level) noexcept;

/// Parses "scalar" | "sse" | "avx2" (the GCUBE_SIMD / --simd vocabulary).
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(
    std::string_view name) noexcept;

/// Best level this CPU supports, from cpuid. Constant per process.
[[nodiscard]] SimdLevel detected_simd_level() noexcept;

/// The effective dispatch level: detected, lowered by GCUBE_SIMD when set
/// (applied on first call), or by the last set_simd_level(). Never above
/// detected_simd_level().
[[nodiscard]] SimdLevel simd_level() noexcept;

/// Pins the dispatch level (clamped to the detected level, with a one-time
/// stderr note when the request exceeds it). Takes effect for every
/// simulator constructed afterwards; not thread-safe against concurrent
/// simulations mid-run, so set it at startup (CLI parse / test setup).
void set_simd_level(SimdLevel level) noexcept;

/// How many entries ahead the streaming loops prefetch — one shared
/// constant so the scalar and SIMD paths keep the same memory schedule.
inline constexpr std::size_t kPrefetchAhead = 4;

/// The one prefetch spelling for all hot loops (ISSUE 9 cleanup): intent
/// is named at the call site instead of a bare __builtin_prefetch flag.
inline void prefetch_read(const void* p) noexcept {
  __builtin_prefetch(p, 0);
}
inline void prefetch_write(void* p) noexcept { __builtin_prefetch(p, 1); }

}  // namespace gcube
