// Deterministic, fast pseudo-random number generation.
//
// Simulation results must be reproducible bit-for-bit for a given seed, and
// parallel sweeps must be able to derive independent streams per worker, so
// we use SplitMix64 for seeding and Xoshiro256** for the main stream instead
// of the implementation-defined std::default_random_engine.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gcube {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound). Precondition: bound > 0.
  /// Lemire's multiply-shift rejection method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent stream (for per-worker RNGs in parallel sweeps).
  [[nodiscard]] constexpr Xoshiro256 split() noexcept {
    return Xoshiro256((*this)());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace gcube
