// Deterministic, fast pseudo-random number generation.
//
// Simulation results must be reproducible bit-for-bit for a given seed, and
// parallel sweeps must be able to derive independent streams per worker, so
// we use SplitMix64 for seeding and Xoshiro256** for the main stream instead
// of the implementation-defined std::default_random_engine.
//
// The simulator's node-sharded core additionally needs draws that are
// *order-independent*: a parallel injection sweep must produce the same
// packets no matter which thread visits a node first. counter_key() +
// CounterRng provide that — every (node, cycle) pair gets its own keyed
// stream, so the draw sequence is a pure function of (seed, node, cycle)
// rather than of sweep order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/simd.hpp"

namespace gcube {

/// SplitMix64's finalizer: a full-avalanche 64-bit mix, exposed separately
/// because counter keys and sharded caches both need a standalone scramble.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64: used to expand a single 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    return mix64(state_ += 0x9e3779b97f4a7c15ULL);
  }

 private:
  std::uint64_t state_;
};

/// Uniform draws layered over any 64-bit generator (CRTP: Self must be a
/// std::uniform_random_bit_generator over the full uint64 range). Kept as a
/// mixin so Xoshiro256 and CounterRng share one Lemire implementation.
template <typename Self>
class UniformDraws {
 public:
  /// Unbiased integer in [0, bound). Precondition: bound > 0.
  /// Lemire's multiply-shift rejection method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = self()();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = self()();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(self()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  constexpr Self& self() noexcept { return *static_cast<Self*>(this); }
};

/// Xoshiro256**: the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 : public UniformDraws<Xoshiro256> {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent stream (for per-worker RNGs in parallel sweeps).
  [[nodiscard]] constexpr Xoshiro256 split() noexcept {
    return Xoshiro256((*this)());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

/// Key for the counter-based stream of logical index (a, b) under `seed` —
/// in the simulator, (node, cycle). Each input passes through a full mix64
/// with a distinct additive constant, so transposing a and b (or shifting
/// both by a common offset) cannot collide the way a plain XOR would.
[[nodiscard]] constexpr std::uint64_t counter_key(std::uint64_t seed,
                                                  std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  std::uint64_t k = mix64(seed + 0x9e3779b97f4a7c15ULL);
  k = mix64(k ^ (a + 0xbf58476d1ce4e5b9ULL));
  return mix64(k ^ (b + 0x94d049bb133111ebULL));
}

/// Counter-keyed draw stream: a SplitMix64 walk from a counter_key. Cheap
/// enough to construct per (node, cycle) on the injection hot path — no
/// state expansion, ~6 multiplies — which is what makes parallel injection
/// order-independent: draws depend only on the key, never on which thread
/// ran first. Satisfies std::uniform_random_bit_generator.
class CounterRng : public UniformDraws<CounterRng> {
 public:
  using result_type = std::uint64_t;

  explicit constexpr CounterRng(std::uint64_t key) noexcept : core_(key) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return core_.next(); }

 private:
  SplitMix64 core_;
};

/// Batched counter_key(seed, nodes[i], cycle) for the injection hot path —
/// the fire-bucket and rearm draws key every node at the same cycle, which
/// is embarrassingly lane-parallel (2 of the 3 mix64 rounds vectorize; the
/// seed round is shared). Bit-identical to the scalar loop at every level.
void counter_keys(SimdLevel level, std::uint64_t seed, std::uint64_t cycle,
                  const std::uint32_t* nodes, std::size_t count,
                  std::uint64_t* keys) noexcept;

/// Batched Bernoulli scan for the legacy (no-active-set) injection sweep:
/// bit i of the result is CounterRng(counter_key(seed, base + i, cycle))
/// .chance(rate) for i < count (count <= 64; higher bits zero). The vector
/// paths replace the float compare `(x >> 11) * 2^-53 < rate` with the
/// exact integer equivalent `x >> 11 < ceil(rate * 2^53)`, so every level
/// reproduces the scalar draw verdicts bit-for-bit.
[[nodiscard]] std::uint64_t counter_bernoulli_mask(SimdLevel level,
                                                   std::uint64_t seed,
                                                   std::uint64_t cycle,
                                                   std::uint32_t base,
                                                   unsigned count,
                                                   double rate) noexcept;

}  // namespace gcube
