// Vectorized counter-RNG kernels (see rng.hpp for the contracts).
//
// counter_key is three chained mix64 rounds; the first depends only on the
// seed, so a batch over nodes at one cycle shares it and vectorizes the
// remaining two. The Bernoulli scan adds one more mix64 (the stream's first
// SplitMix64 step) and replaces uniform() < rate with the exact integer
// comparison x >> 11 < ceil(rate * 2^53):
//
//   uniform() = (double)(x >> 11) * 2^-53 compares exactly — x >> 11 has at
//   most 53 significant bits (exactly representable) and the 2^-53 scale is
//   a pure exponent shift — so `uniform() < rate` holds iff the integer
//   x >> 11 is below rate * 2^53, rounded up when fractional. No float ops
//   remain in the vector loop, hence no reassociation hazards.
//
// All kernels fall back per-tail-element to the scalar expressions, and the
// kScalar level runs the reference loop verbatim.
#include "util/rng.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include <cmath>

namespace gcube {
namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;  // SplitMix64 step
constexpr std::uint64_t kNodeSalt = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kCycleSalt = 0x94d049bb133111ebULL;

/// Integer threshold T such that uniform() < rate iff (x >> 11) < T.
std::uint64_t bernoulli_threshold(double rate) noexcept {
  const double scaled = std::ldexp(rate, 53);  // exact: exponent shift only
  if (!(scaled > 0.0)) return 0;               // rate <= 0 or NaN: never
  if (scaled >= 0x1.0p53) return std::uint64_t{1} << 53;  // rate >= 1: always
  return static_cast<std::uint64_t>(std::ceil(scaled));
}

void counter_keys_scalar(std::uint64_t seed, std::uint64_t cycle,
                         const std::uint32_t* nodes, std::size_t count,
                         std::uint64_t* keys) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    keys[i] = counter_key(seed, nodes[i], cycle);
  }
}

std::uint64_t bernoulli_mask_scalar(std::uint64_t seed, std::uint64_t cycle,
                                    std::uint32_t base, unsigned count,
                                    double rate) noexcept {
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < count; ++i) {
    CounterRng rng(counter_key(seed, base + i, cycle));
    if (rng.chance(rate)) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

#if defined(__x86_64__)

// ---- AVX2: four 64-bit lanes ----------------------------------------------

__attribute__((target("avx2"))) inline __m256i mullo64_avx2(
    __m256i a, __m256i b) noexcept {
  // 64x64 -> low 64 from 32x32 partial products (no vpmullq below AVX-512).
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i mix64_avx2(
    __m256i z) noexcept {
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                   _mm256_set1_epi64x(static_cast<long long>(kNodeSalt)));
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                   _mm256_set1_epi64x(static_cast<long long>(kCycleSalt)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// counter_key for 4 nodes: the seed round is precomputed (k0), the node
/// and cycle rounds run on 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i counter_keys4_avx2(
    std::uint64_t k0, __m256i node64, __m256i cycle_salted) noexcept {
  const __m256i k0v = _mm256_set1_epi64x(static_cast<long long>(k0));
  const __m256i salted =
      _mm256_add_epi64(node64,
                       _mm256_set1_epi64x(static_cast<long long>(kNodeSalt)));
  __m256i k = mix64_avx2(_mm256_xor_si256(k0v, salted));
  return mix64_avx2(_mm256_xor_si256(k, cycle_salted));
}

__attribute__((target("avx2"))) void counter_keys_avx2(
    std::uint64_t seed, std::uint64_t cycle, const std::uint32_t* nodes,
    std::size_t count, std::uint64_t* keys) noexcept {
  const std::uint64_t k0 = mix64(seed + kGamma);
  const __m256i cyc = _mm256_set1_epi64x(
      static_cast<long long>(cycle + kCycleSalt));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i n64 = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        counter_keys4_avx2(k0, n64, cyc));
  }
  for (; i < count; ++i) keys[i] = counter_key(seed, nodes[i], cycle);
}

__attribute__((target("avx2"))) std::uint64_t bernoulli_mask_avx2(
    std::uint64_t seed, std::uint64_t cycle, std::uint32_t base,
    unsigned count, double rate) noexcept {
  const std::uint64_t threshold = bernoulli_threshold(rate);
  const std::uint64_t k0 = mix64(seed + kGamma);
  const __m256i cyc = _mm256_set1_epi64x(
      static_cast<long long>(cycle + kCycleSalt));
  const __m256i thr = _mm256_set1_epi64x(static_cast<long long>(threshold));
  const __m256i gamma = _mm256_set1_epi64x(static_cast<long long>(kGamma));
  std::uint64_t mask = 0;
  unsigned i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i n64 = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(base + i)),
        _mm256_setr_epi64x(0, 1, 2, 3));
    const __m256i key = counter_keys4_avx2(k0, n64, cyc);
    // First SplitMix64 draw, then the exact integer Bernoulli compare.
    const __m256i draw = mix64_avx2(_mm256_add_epi64(key, gamma));
    const __m256i x = _mm256_srli_epi64(draw, 11);
    // Both sides < 2^54, so the signed 64-bit compare is safe.
    const __m256i hit = _mm256_cmpgt_epi64(thr, x);
    const auto bits = static_cast<std::uint64_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    mask |= bits << i;
  }
  for (; i < count; ++i) {
    CounterRng rng(counter_key(seed, base + i, cycle));
    if (rng.chance(rate)) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

// ---- SSE4.2: two 64-bit lanes ---------------------------------------------

__attribute__((target("sse4.2"))) inline __m128i mullo64_sse(
    __m128i a, __m128i b) noexcept {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(
      _mm_mul_epu32(_mm_srli_epi64(a, 32), b),
      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

__attribute__((target("sse4.2"))) inline __m128i mix64_sse(
    __m128i z) noexcept {
  z = mullo64_sse(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
                  _mm_set1_epi64x(static_cast<long long>(kNodeSalt)));
  z = mullo64_sse(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
                  _mm_set1_epi64x(static_cast<long long>(kCycleSalt)));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

__attribute__((target("sse4.2"))) inline __m128i counter_keys2_sse(
    std::uint64_t k0, __m128i node64, __m128i cycle_salted) noexcept {
  const __m128i k0v = _mm_set1_epi64x(static_cast<long long>(k0));
  const __m128i salted = _mm_add_epi64(
      node64, _mm_set1_epi64x(static_cast<long long>(kNodeSalt)));
  __m128i k = mix64_sse(_mm_xor_si128(k0v, salted));
  return mix64_sse(_mm_xor_si128(k, cycle_salted));
}

__attribute__((target("sse4.2"))) void counter_keys_sse(
    std::uint64_t seed, std::uint64_t cycle, const std::uint32_t* nodes,
    std::size_t count, std::uint64_t* keys) noexcept {
  const std::uint64_t k0 = mix64(seed + kGamma);
  const __m128i cyc =
      _mm_set1_epi64x(static_cast<long long>(cycle + kCycleSalt));
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i n64 = _mm_cvtepu32_epi64(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(nodes + i)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i),
                     counter_keys2_sse(k0, n64, cyc));
  }
  for (; i < count; ++i) keys[i] = counter_key(seed, nodes[i], cycle);
}

__attribute__((target("sse4.2"))) std::uint64_t bernoulli_mask_sse(
    std::uint64_t seed, std::uint64_t cycle, std::uint32_t base,
    unsigned count, double rate) noexcept {
  const std::uint64_t threshold = bernoulli_threshold(rate);
  const std::uint64_t k0 = mix64(seed + kGamma);
  const __m128i cyc =
      _mm_set1_epi64x(static_cast<long long>(cycle + kCycleSalt));
  const __m128i thr = _mm_set1_epi64x(static_cast<long long>(threshold));
  const __m128i gamma = _mm_set1_epi64x(static_cast<long long>(kGamma));
  std::uint64_t mask = 0;
  unsigned i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i n64 =
        _mm_add_epi64(_mm_set1_epi64x(static_cast<long long>(base + i)),
                      _mm_set_epi64x(1, 0));
    const __m128i key = counter_keys2_sse(k0, n64, cyc);
    const __m128i draw = mix64_sse(_mm_add_epi64(key, gamma));
    const __m128i x = _mm_srli_epi64(draw, 11);
    const __m128i hit = _mm_cmpgt_epi64(thr, x);  // SSE4.2 pcmpgtq
    const auto bits = static_cast<std::uint64_t>(
        _mm_movemask_pd(_mm_castsi128_pd(hit)));
    mask |= bits << i;
  }
  for (; i < count; ++i) {
    CounterRng rng(counter_key(seed, base + i, cycle));
    if (rng.chance(rate)) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

#endif  // __x86_64__

}  // namespace

void counter_keys(SimdLevel level, std::uint64_t seed, std::uint64_t cycle,
                  const std::uint32_t* nodes, std::size_t count,
                  std::uint64_t* keys) noexcept {
#if defined(__x86_64__)
  if (level >= SimdLevel::kAvx2) {
    counter_keys_avx2(seed, cycle, nodes, count, keys);
    return;
  }
  if (level >= SimdLevel::kSse) {
    counter_keys_sse(seed, cycle, nodes, count, keys);
    return;
  }
#else
  (void)level;
#endif
  counter_keys_scalar(seed, cycle, nodes, count, keys);
}

std::uint64_t counter_bernoulli_mask(SimdLevel level, std::uint64_t seed,
                                     std::uint64_t cycle, std::uint32_t base,
                                     unsigned count, double rate) noexcept {
#if defined(__x86_64__)
  if (level >= SimdLevel::kAvx2) {
    return bernoulli_mask_avx2(seed, cycle, base, count, rate);
  }
  if (level >= SimdLevel::kSse) {
    return bernoulli_mask_sse(seed, cycle, base, count, rate);
  }
#else
  (void)level;
#endif
  return bernoulli_mask_scalar(seed, cycle, base, count, rate);
}

}  // namespace gcube
