// Plain-text table rendering for bench harnesses and examples.
//
// Every figure-reproduction bench prints one of these tables; keeping the
// format in one place means EXPERIMENTS.md rows and bench output stay
// aligned.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gcube {

/// A fixed-column text table. Columns are declared once; rows are appended
/// as strings (use `fmt_double` / std::to_string at call sites).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 digits).
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

}  // namespace gcube
