// Minimal command-line flag parsing for the example tools.
//
// Supports --key=value and --key value forms, --flag booleans, and typed
// lookups with defaults. Unknown flags are an error so typos do not
// silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gcube {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  /// Declares the set of accepted flag names; any other --flag given on
  /// the command line throws. Call once before the typed getters.
  void allow(const std::set<std::string>& flags);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key) const { return has(key); }

  /// Non-flag positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gcube
