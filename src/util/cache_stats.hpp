// Lookup counters shared by the sharded version-stamped caches.
//
// Split out of flat_cache.hpp so lightweight consumers (SimMetrics, the
// Router interface) can carry the counters without pulling in the whole
// cache template. One lookup lands in exactly one bucket: `hits` (present,
// current version), `stale` (present, superseded version — the entry will
// be recomputed and refreshed), or `misses` (absent).
#pragma once

#include <cstdint>

namespace gcube {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + misses + stale;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    stale += o.stale;
    return *this;
  }
  /// Delta of two cumulative snapshots (end - start of a measurement
  /// window). Precondition: *this is the later snapshot.
  [[nodiscard]] CacheStats operator-(const CacheStats& o) const noexcept {
    return {hits - o.hits, misses - o.misses, stale - o.stale};
  }
  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

}  // namespace gcube
