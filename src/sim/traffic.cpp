#include "sim/traffic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gcube {

UniformTraffic::UniformTraffic(std::uint64_t node_count, double rate,
                               const FaultSet& faults, std::uint64_t seed)
    : node_count_(node_count),
      rate_(rate),
      log1m_rate_(rate > 0.0 && rate < 1.0 ? std::log1p(-rate) : 0.0),
      faults_(faults),
      seed_(seed) {
  GCUBE_REQUIRE(node_count >= 2, "need at least two nodes for traffic");
  GCUBE_REQUIRE(rate >= 0.0 && rate <= 1.0, "rate must be a probability");
  GCUBE_REQUIRE(faults.node_fault_count() + 1 < node_count,
                "not enough nonfaulty nodes for traffic");
}

std::uint64_t UniformTraffic::injection_gap(NodeId, CounterRng& rng) const {
  if (rate_ <= 0.0) return kNeverGap;
  if (rate_ >= 1.0) return 1;
  // Inverse-transform sample of the geometric distribution. log1p keeps
  // precision at small rates, where log(1 - rate) would cancel.
  const double u = rng.uniform();  // [0, 1)
  const double g = std::floor(std::log1p(-u) / log1m_rate_);
  if (g >= 9.0e18) return kNeverGap;  // rate denormal-small: never fires
  return 1 + static_cast<std::uint64_t>(g);
}

NodeId UniformTraffic::pick_destination(NodeId src, CounterRng& rng) const {
  while (true) {
    const auto d = static_cast<NodeId>(rng.below(node_count_));
    if (d != src && !faults_.node_faulty(d)) return d;
  }
}

bool UniformTraffic::eligible(NodeId u) const {
  return !faults_.node_faulty(u);
}

PatternTraffic::PatternTraffic(Dim n, double rate, const FaultSet& faults,
                               std::uint64_t seed, TrafficPattern pattern,
                               NodeId hot_node, double hotspot_fraction)
    : UniformTraffic(pow2(n), rate, faults, seed),
      n_(n),
      pattern_(pattern),
      hot_node_(hot_node),
      hotspot_fraction_(hotspot_fraction) {
  GCUBE_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
                "hotspot fraction must be a probability");
  GCUBE_REQUIRE(hot_node < pow2(n), "hot node out of range");
}

NodeId PatternTraffic::pick_destination(NodeId src, CounterRng& rng) const {
  NodeId dest = src;
  switch (pattern_) {
    case TrafficPattern::kUniform:
      return UniformTraffic::pick_destination(src, rng);
    case TrafficPattern::kBitComplement:
      dest = low_bits(~src, n_);
      break;
    case TrafficPattern::kBitReversal: {
      dest = 0;
      for (Dim i = 0; i < n_; ++i) {
        dest |= bit(src, i) << (n_ - 1 - i);
      }
      break;
    }
    case TrafficPattern::kTranspose: {
      const Dim half = n_ / 2;
      dest = low_bits((src >> half) | (src << (n_ - half)), n_);
      break;
    }
    case TrafficPattern::kHotspot:
      dest = rng.chance(hotspot_fraction_)
                 ? hot_node_
                 : UniformTraffic::pick_destination(src, rng);
      break;
  }
  if (dest == src || faults_.node_faulty(dest)) {
    return UniformTraffic::pick_destination(src, rng);
  }
  return dest;
}

const char* to_string(TrafficPattern pattern) noexcept {
  switch (pattern) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitComplement:
      return "bit-complement";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

}  // namespace gcube
