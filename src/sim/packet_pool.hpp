// Flat packet storage for the simulator hot path.
//
// Packets live in one pool (a slab of Packet slots plus a free list) and
// every per-node FIFO is a growable power-of-two ring buffer of pool
// indices. Forwarding a packet moves one 32-bit index between rings
// instead of shuffling a Packet through std::deque nodes, and once the
// pool and rings have grown to the run's working set the cycle loop
// allocates nothing: released slots keep their tail capacity, rings keep
// their slabs, and plans are shared with the router's cache.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/packet.hpp"

namespace gcube {

using PacketIndex = std::uint32_t;

class PacketPool {
 public:
  /// A cleared slot ready for initialization (recycled when possible).
  [[nodiscard]] PacketIndex acquire() {
    if (free_.empty()) {
      slots_.emplace_back();
      return static_cast<PacketIndex>(slots_.size() - 1);
    }
    const PacketIndex i = free_.back();
    free_.pop_back();
    return i;
  }

  /// Returns a slot to the free list. Resets routing state but keeps the
  /// tail's spill capacity for the next tenant.
  void release(PacketIndex i) {
    Packet& p = slots_[i];
    p.plan.reset();
    p.next_hop = 0;
    p.plan_len = 0;
    p.adaptive = false;
    p.tail.clear();
    free_.push_back(i);
  }

  [[nodiscard]] Packet& operator[](PacketIndex i) { return slots_[i]; }
  [[nodiscard]] const Packet& operator[](PacketIndex i) const {
    return slots_[i];
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t live() const noexcept {
    return slots_.size() - free_.size();
  }

 private:
  std::vector<Packet> slots_;
  std::vector<PacketIndex> free_;
};

/// FIFO ring buffer of packet indices with power-of-two capacity. Grows
/// geometrically on overflow and never shrinks, so a queue that reached
/// its steady-state depth stops allocating.
class IndexRing {
 public:
  void push_back(PacketIndex v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = v;
    ++count_;
  }
  /// Precondition for front()/pop_front(): !empty().
  [[nodiscard]] PacketIndex front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t grown = buf_.empty() ? 8 : 2 * buf_.size();
    std::vector<PacketIndex> bigger(grown);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<PacketIndex> buf_;  // power-of-two size (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace gcube
