// Flat packet storage for the simulator hot path.
//
// Packets live in pools and every per-node FIFO is a growable power-of-two
// ring buffer of packet references. Forwarding a packet moves one 32-bit
// reference between rings instead of shuffling a record through std::deque
// nodes, and once the pools and rings have grown to the run's working set
// the cycle loop allocates nothing: released slots keep their tail
// capacity, rings keep their slabs, and plans are shared with the router's
// cache.
//
// Storage is structure-of-arrays at the slot level: every slot index i
// names a 16-byte PacketHot record in the hot lane AND a PacketCold record
// in the cold lane. The cycle loop's per-hop pass touches only hot(i) —
// at GC(10,4)'s steady state a few hundred in-flight packets fit in a few
// KB of L1 — while cold(i) is dereferenced only at injection, delivery,
// fault adjacency, and on the audited sample.
//
// The node-sharded simulator keeps one pool per shard (each thread
// allocates from its own slabs) and tags every reference with its owning
// pool in the top bits, so a packet forwarded across a shard boundary can
// still be dereferenced and, eventually, returned home. Concurrency is by
// phase discipline, not locks: only the owner thread grows or releases
// into its pool, foreign threads only *dereference* live slots, and
// cross-shard releases travel through mailboxes drained under the cycle
// barrier.
//
// Storage is CHUNKED with fixed-capacity chunk directories, so growing
// never moves an existing slot and never reallocates a directory. That
// stability is load-bearing for the fused cycle loop: shard A may be
// injecting (acquiring fresh slots in its pool) while shard B is still
// forwarding and dereferencing A's live slots — legal only because a
// foreign dereference touches memory that acquire() can never move. A
// foreign thread only ever reads directory entries published before the
// last cycle barrier, so the owner writing a NEW entry races with nothing.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.hpp"

namespace gcube {

using PacketIndex = std::uint32_t;

/// Pool-tagged packet reference: owning pool shard in the top bits, slot
/// index below. 8 shard bits bound the simulator at 256 worker shards and
/// 16M in-flight packets per shard — both far beyond any simulated cell.
using PacketRef = std::uint32_t;

inline constexpr unsigned kPacketRefShardShift = 24;
inline constexpr PacketRef kPacketRefSlotMask =
    (PacketRef{1} << kPacketRefShardShift) - 1;
inline constexpr unsigned kMaxPoolShards = 1u << (32 - kPacketRefShardShift);

[[nodiscard]] constexpr PacketRef make_packet_ref(unsigned shard,
                                                  PacketIndex slot) noexcept {
  return (static_cast<PacketRef>(shard) << kPacketRefShardShift) | slot;
}
[[nodiscard]] constexpr unsigned packet_ref_shard(PacketRef r) noexcept {
  return r >> kPacketRefShardShift;
}
[[nodiscard]] constexpr PacketIndex packet_ref_slot(PacketRef r) noexcept {
  return r & kPacketRefSlotMask;
}

class PacketPool {
 public:
  /// Slots per chunk. 4096 slots per slab amortizes the allocation; each
  /// directory covering the whole 16M-slot reference space is then 4096
  /// pointers — preallocated once, so it never reallocates under a
  /// concurrent foreign dereference.
  static constexpr unsigned kChunkBits = 12;
  static constexpr PacketIndex kChunkSize = PacketIndex{1} << kChunkBits;

  PacketPool()
      : hot_chunks_((kPacketRefSlotMask + 1) >> kChunkBits),
        cold_chunks_((kPacketRefSlotMask + 1) >> kChunkBits) {}

  /// A slot ready for initialization (recycled when possible). The caller
  /// (admit_packet / respawn) must initialize EVERY hot and cold field it
  /// relies on — release() clears only the flag word and the cold fields
  /// that hold resources. Owner thread only.
  [[nodiscard]] PacketIndex acquire() {
    if (free_.empty()) {
      if ((size_ & (kChunkSize - 1)) == 0) {
        hot_chunks_[size_ >> kChunkBits] =
            std::make_unique<PacketHot[]>(kChunkSize);
        cold_chunks_[size_ >> kChunkBits] =
            std::make_unique<PacketCold[]>(kChunkSize);
      }
      return size_++;
    }
    const PacketIndex i = free_.back();
    free_.pop_back();
    return i;
  }

  /// Returns a slot to the free list. Deliberately minimal: the cold
  /// record is touched only when the flag word says it holds a plan
  /// refcount or recorded tail hops — a delivered fast-path steered packet
  /// releases with a single hot-lane store. Tail spill capacity survives
  /// for the next tenant. Owner thread only.
  void release(PacketIndex i) {
    PacketHot& h = hot(i);
    if ((h.flags & (kPktHasPlan | kPktAudited)) != 0) {
      PacketCold& c = cold(i);
      c.plan.reset();
      c.tail.clear();
    }
    h.flags = 0;
    free_.push_back(i);
  }

  [[nodiscard]] PacketHot& hot(PacketIndex i) {
    return hot_chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  [[nodiscard]] const PacketHot& hot(PacketIndex i) const {
    return hot_chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  [[nodiscard]] PacketCold& cold(PacketIndex i) {
    return cold_chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  [[nodiscard]] const PacketCold& cold(PacketIndex i) const {
    return cold_chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return size_; }
  [[nodiscard]] std::size_t live() const noexcept {
    return size_ - free_.size();
  }

 private:
  // Fixed-size directories; hot and cold lanes grow in lockstep.
  std::vector<std::unique_ptr<PacketHot[]>> hot_chunks_;
  std::vector<std::unique_ptr<PacketCold[]>> cold_chunks_;
  PacketIndex size_ = 0;  // slots ever handed out (chunks allocated lazily)
  std::vector<PacketIndex> free_;
};

/// FIFO ring buffer with power-of-two capacity. Grows geometrically on
/// overflow and never shrinks, so a queue that reached its steady-state
/// depth stops allocating. T must be trivially copyable-ish (packet refs,
/// mailbox entries).
template <typename T>
class Ring {
 public:
  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = v;
    ++count_;
  }
  /// Precondition for front()/pop_front(): !empty().
  [[nodiscard]] T front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  /// The i-th element from the front (i < size()). Lets a consumer drain a
  /// whole ring as one indexed batch + clear() instead of size() many
  /// front()/pop_front() pairs.
  [[nodiscard]] T at(std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t grown = buf_.empty() ? 8 : 2 * buf_.size();
    std::vector<T> bigger(grown);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;  // power-of-two size (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

using IndexRing = Ring<PacketIndex>;

}  // namespace gcube
