// Traffic generation.
//
// The paper's workload is uniform random traffic: every nonfaulty node
// independently injects packets destined to uniformly random nonfaulty
// other nodes; eager readership means service outpaces arrival, so offered
// load is set by the per-node injection rate. Additional classical patterns
// (bit complement, bit reversal, transpose, hotspot) are provided for the
// extension benchmarks — they stress the diluted links of a Gaussian Cube
// very differently from uniform traffic.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>

#include "fault/fault_set.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace gcube {

/// Injection + destination model consumed by the simulator.
///
/// The rng handed to should_inject / pick_destination is a counter-based
/// per-(node, cycle) stream owned by the caller; the simulator constructs
/// it from counter_key(seed, node, cycle), so draws are a pure function of
/// that triple and independent of the order nodes are visited in — the
/// property the node-sharded parallel core's determinism contract rests
/// on. Implementations must be const-thread-safe: the sharded simulator
/// calls them concurrently from worker threads with no external locking,
/// so they may read shared state (the FaultSet between mutation points)
/// but must not mutate members.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// Sentinel gap: the node never injects again (rate 0, or no success
  /// within the default implementation's scan horizon).
  static constexpr std::uint64_t kNeverGap = ~std::uint64_t{0};

  /// Should node u inject a packet this cycle?
  [[nodiscard]] virtual bool should_inject(NodeId u, CounterRng& rng) const = 0;

  /// Cycles until node u's next injection, >= 1 (or kNeverGap). The
  /// active-set simulator schedules injections event-driven from this
  /// instead of drawing should_inject for every (node, cycle) pair, so at
  /// low rates idle nodes cost nothing per cycle. The default derives the
  /// gap by scanning should_inject draws, which keeps any override of
  /// should_inject distribution-consistent; models with a closed form
  /// (UniformTraffic's geometric) override it. Note the realization
  /// differs from per-cycle draws — each mode consumes the per-node
  /// counter streams differently — but the distribution is identical.
  [[nodiscard]] virtual std::uint64_t injection_gap(NodeId u,
                                                    CounterRng& rng) const {
    // Bounded scan: past this many consecutive failures the node is
    // treated as silent (at any practically measurable rate the bound is
    // unreachable; it only guards rate ~ 0 from an unbounded loop).
    constexpr std::uint64_t kScanLimit = std::uint64_t{1} << 20;
    for (std::uint64_t gap = 1; gap <= kScanLimit; ++gap) {
      if (should_inject(u, rng)) return gap;
    }
    return kNeverGap;
  }

  /// When should_inject is exactly `rng.chance(rate)` for one fixed rate —
  /// independent of node and cycle — returns that rate, licensing the
  /// simulator to evaluate the injection predicate in SIMD batches (each
  /// node's verdict from its own counter stream, bit-identical to calling
  /// should_inject). nullopt (the default) keeps the per-node virtual
  /// path; override ONLY if should_inject consumes exactly one draw and
  /// matches chance(rate) bit-for-bit.
  [[nodiscard]] virtual std::optional<double> bernoulli_rate()
      const noexcept {
    return std::nullopt;
  }

  /// A nonfaulty destination different from src.
  [[nodiscard]] virtual NodeId pick_destination(NodeId src,
                                                CounterRng& rng) const = 0;

  /// True iff u may act as a source or destination.
  [[nodiscard]] virtual bool eligible(NodeId u) const = 0;

  /// Deterministic fingerprint of the model's injection/destination
  /// parameters, recorded in checkpoints so a resume under a different
  /// workload is refused instead of silently diverging. Models are
  /// stateless between draws (everything is counter-keyed), so parameters
  /// ARE the state. The default covers custom models conservatively: 0
  /// matches only another default-fingerprint model.
  [[nodiscard]] virtual std::uint64_t state_fingerprint() const noexcept {
    return 0;
  }
};

class UniformTraffic : public TrafficModel {
 public:
  /// `rate` = per-node injection probability per cycle (0..1).
  UniformTraffic(std::uint64_t node_count, double rate,
                 const FaultSet& faults, std::uint64_t seed);

  [[nodiscard]] bool should_inject(NodeId, CounterRng& rng) const override {
    return rng.chance(rate_);
  }
  /// Closed-form geometric gap: P(gap = g) = rate * (1 - rate)^(g-1), the
  /// exact distribution of the Bernoulli scan, in one draw.
  [[nodiscard]] std::uint64_t injection_gap(NodeId u,
                                            CounterRng& rng) const override;
  /// should_inject above is literally chance(rate_), so the batched
  /// predicate applies (PatternTraffic inherits both, keeping the license
  /// valid for every bundled pattern).
  [[nodiscard]] std::optional<double> bernoulli_rate()
      const noexcept override {
    return rate_;
  }
  [[nodiscard]] NodeId pick_destination(NodeId src,
                                        CounterRng& rng) const override;
  [[nodiscard]] bool eligible(NodeId u) const override;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  [[nodiscard]] std::uint64_t state_fingerprint() const noexcept override {
    std::uint64_t h = mix64(0x756e6974'72616666ull ^ node_count_);
    h = mix64(h ^ std::bit_cast<std::uint64_t>(rate_));
    return mix64(h ^ seed_);
  }

 protected:
  std::uint64_t node_count_;
  double rate_;
  double log1m_rate_;  // log1p(-rate), hoisted out of injection_gap
  const FaultSet& faults_;
  std::uint64_t seed_;
};

/// Classical deterministic-destination patterns. When the pattern maps a
/// source onto itself or onto a faulty node, the packet falls back to a
/// uniform destination so offered load stays comparable across patterns.
enum class TrafficPattern {
  kUniform,
  kBitComplement,  // dest = ~src
  kBitReversal,    // dest = reverse of src's n bits
  kTranspose,      // dest = src rotated by n/2 bits
  kHotspot,        // a fixed fraction of traffic goes to one hot node
};

class PatternTraffic final : public UniformTraffic {
 public:
  /// `n` = label width; `hotspot_fraction` only applies to kHotspot.
  PatternTraffic(Dim n, double rate, const FaultSet& faults,
                 std::uint64_t seed, TrafficPattern pattern,
                 NodeId hot_node = 0, double hotspot_fraction = 0.2);

  [[nodiscard]] NodeId pick_destination(NodeId src,
                                        CounterRng& rng) const override;

  [[nodiscard]] TrafficPattern pattern() const noexcept { return pattern_; }

  [[nodiscard]] std::uint64_t state_fingerprint() const noexcept override {
    std::uint64_t h = UniformTraffic::state_fingerprint();
    h = mix64(h ^ (static_cast<std::uint64_t>(pattern_) << 32 ^ hot_node_));
    return mix64(h ^ std::bit_cast<std::uint64_t>(hotspot_fraction_));
  }

 private:
  Dim n_;
  TrafficPattern pattern_;
  NodeId hot_node_;
  double hotspot_fraction_;
};

[[nodiscard]] const char* to_string(TrafficPattern pattern) noexcept;

}  // namespace gcube
