#include "sim/shard_pool.hpp"

#include "util/error.hpp"

namespace gcube {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ShardPool::ShardPool(unsigned threads) {
  GCUBE_REQUIRE(threads >= 1, "shard pool needs at least one worker");
  workers_.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardPool::~ShardPool() {
  stop_.store(true, std::memory_order_relaxed);
  // Wake parked workers: they spin on epoch_ and re-check stop_ when it
  // moves. jthread joins on destruction.
  epoch_.fetch_add(1, std::memory_order_release);
}

void ShardPool::spin_wait(const std::atomic<std::uint64_t>& flag,
                          std::uint64_t last_seen) noexcept {
  int spins = 0;
  while (flag.load(std::memory_order_acquire) == last_seen) {
    if (++spins < 64) {
      cpu_relax();
    } else {
      // Oversubscribed (or just idle): hand the core to whoever holds the
      // work. Essential when workers > cores.
      std::this_thread::yield();
    }
  }
}

void ShardPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    spin_wait(epoch_, seen);
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = epoch_.load(std::memory_order_acquire);
    try {
      (*job_)(worker);
    } catch (...) {
      record_error();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardPool::record_error() noexcept {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) {
    first_error_ = std::current_exception();
    has_error_.store(true, std::memory_order_release);
  }
}

void ShardPool::run(const std::function<void(unsigned)>& job) {
  job_ = &job;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  try {
    job(0);
  } catch (...) {
    record_error();
  }
  const auto spawned = static_cast<unsigned>(workers_.size());
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != spawned) {
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  job_ = nullptr;
  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
      has_error_.store(false, std::memory_order_relaxed);
    }
    std::rethrow_exception(err);
  }
}

void ShardPool::barrier() noexcept {
  const std::uint64_t gen = bar_gen_.load(std::memory_order_acquire);
  // The last arriver resets the count *before* opening the gate, so the
  // next barrier's arrivals can't be lost; everyone else spins on the
  // generation. A worker can only reach barrier N+1 after observing the
  // generation bump of barrier N, so its captured `gen` is always current.
  if (bar_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      threads()) {
    bar_arrived_.store(0, std::memory_order_relaxed);
    bar_gen_.fetch_add(1, std::memory_order_release);
  } else {
    spin_wait(bar_gen_, gen);
  }
}

}  // namespace gcube
