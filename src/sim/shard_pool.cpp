#include "sim/shard_pool.hpp"

#include "util/error.hpp"

namespace gcube {

ShardPool::ShardPool(unsigned threads) {
  GCUBE_REQUIRE(threads >= 1, "shard pool needs at least one worker");
  const unsigned cores = std::thread::hardware_concurrency();
  oversubscribed_ = cores != 0 && threads > cores;
  workers_.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardPool::~ShardPool() {
  stop_.store(true, std::memory_order_relaxed);
  // Wake parked workers: they wait on epoch_ and re-check stop_ when it
  // moves. jthread joins on destruction.
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
}

void ShardPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    wait_for(epoch_, seen);
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = epoch_.load(std::memory_order_acquire);
    try {
      (*job_)(worker);
    } catch (...) {
      record_error();
    }
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_all();
  }
}

void ShardPool::record_error() noexcept {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) {
    first_error_ = std::current_exception();
    has_error_.store(true, std::memory_order_release);
  }
}

void ShardPool::run(const std::function<void(unsigned)>& job) {
  job_ = &job;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  try {
    job(0);
  } catch (...) {
    record_error();
  }
  const auto spawned = static_cast<unsigned>(workers_.size());
  unsigned finished = done_.load(std::memory_order_acquire);
  while (finished != spawned) {
    wait_for(done_, finished);
    finished = done_.load(std::memory_order_acquire);
  }
  job_ = nullptr;
  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
      has_error_.store(false, std::memory_order_relaxed);
    }
    std::rethrow_exception(err);
  }
}

}  // namespace gcube
