#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gcube {

void FaultSchedule::fail_node_at(Cycle cycle, NodeId node) {
  events_.push_back({cycle, FaultEvent::Kind::kNode, node, 0});
  sorted_ = events_.size() == 1 ||
            (sorted_ && events_[events_.size() - 2].cycle <= cycle);
}

void FaultSchedule::fail_link_at(Cycle cycle, NodeId node, Dim dim) {
  events_.push_back({cycle, FaultEvent::Kind::kLink, node, dim});
  sorted_ = events_.size() == 1 ||
            (sorted_ && events_[events_.size() - 2].cycle <= cycle);
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.cycle < b.cycle;
                     });
    sorted_ = true;
  }
  return events_;
}

FaultSchedule FaultSchedule::random_node_faults(std::uint64_t node_count,
                                                double rate, Cycle horizon,
                                                std::uint64_t seed,
                                                std::size_t max_faults) {
  GCUBE_REQUIRE(node_count >= 2, "need at least two nodes");
  GCUBE_REQUIRE(rate >= 0.0 && rate <= 1.0,
                "fault arrival rate must be a probability");
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  std::unordered_set<NodeId> dead;
  for (Cycle t = 0; t < horizon && schedule.size() < max_faults; ++t) {
    if (!rng.chance(rate)) continue;
    // Rejection-sample a still-healthy victim; give up once most of the
    // network is gone rather than spinning.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto victim = static_cast<NodeId>(rng.below(node_count));
      if (dead.insert(victim).second) {
        schedule.fail_node_at(t, victim);
        break;
      }
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::parse(std::istream& in) {
  FaultSchedule schedule;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Cycle cycle = 0;
    std::string kind;
    std::uint64_t node = 0;
    if (!(fields >> cycle >> kind >> node)) {
      throw std::invalid_argument("fault schedule line " +
                                  std::to_string(line_no) +
                                  ": expected '<cycle> node|link <id> ...'");
    }
    if (kind == "node") {
      schedule.fail_node_at(cycle, static_cast<NodeId>(node));
    } else if (kind == "link") {
      std::uint64_t dim = 0;
      if (!(fields >> dim)) {
        throw std::invalid_argument(
            "fault schedule line " + std::to_string(line_no) +
            ": link events need '<cycle> link <node> <dim>'");
      }
      schedule.fail_link_at(cycle, static_cast<NodeId>(node),
                            static_cast<Dim>(dim));
    } else {
      throw std::invalid_argument("fault schedule line " +
                                  std::to_string(line_no) +
                                  ": unknown event kind '" + kind + "'");
    }
    std::string rest;
    if (fields >> rest && rest[0] != '#') {
      throw std::invalid_argument("fault schedule line " +
                                  std::to_string(line_no) +
                                  ": trailing garbage '" + rest + "'");
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::from_file(const std::string& path) {
  std::ifstream in(path);
  GCUBE_REQUIRE(in.good(), "cannot open fault schedule file " + path);
  return parse(in);
}

}  // namespace gcube
