#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gcube {

void FaultSchedule::push(Cycle cycle, FaultEvent::Kind kind, NodeId node,
                         Dim dim) {
  events_.push_back({cycle, kind, node, dim});
  sorted_ = events_.size() == 1 ||
            (sorted_ && events_[events_.size() - 2].cycle <= cycle);
}

void FaultSchedule::fail_node_at(Cycle cycle, NodeId node) {
  push(cycle, FaultEvent::Kind::kNode, node, 0);
}

void FaultSchedule::fail_link_at(Cycle cycle, NodeId node, Dim dim) {
  push(cycle, FaultEvent::Kind::kLink, node, dim);
}

void FaultSchedule::repair_node_at(Cycle cycle, NodeId node) {
  push(cycle, FaultEvent::Kind::kRepairNode, node, 0);
}

void FaultSchedule::repair_link_at(Cycle cycle, NodeId node, Dim dim) {
  push(cycle, FaultEvent::Kind::kRepairLink, node, dim);
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.cycle < b.cycle;
                     });
    sorted_ = true;
  }
  return events_;
}

FaultSchedule FaultSchedule::without_repairs() const {
  FaultSchedule permanent;
  for (const FaultEvent& ev : events()) {
    if (!ev.is_repair()) permanent.push(ev.cycle, ev.kind, ev.node, ev.dim);
  }
  return permanent;
}

FaultSchedule FaultSchedule::random_node_faults(std::uint64_t node_count,
                                                double rate, Cycle horizon,
                                                std::uint64_t seed,
                                                std::size_t max_faults) {
  GCUBE_REQUIRE(node_count >= 2, "need at least two nodes");
  GCUBE_REQUIRE(rate >= 0.0 && rate <= 1.0,
                "fault arrival rate must be a probability");
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  std::unordered_set<NodeId> dead;
  for (Cycle t = 0; t < horizon && schedule.size() < max_faults; ++t) {
    if (!rng.chance(rate)) continue;
    // Rejection-sample a still-healthy victim; give up once most of the
    // network is gone rather than spinning.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto victim = static_cast<NodeId>(rng.below(node_count));
      if (dead.insert(victim).second) {
        schedule.fail_node_at(t, victim);
        break;
      }
    }
  }
  return schedule;
}

namespace {

// Geometric dwell time with the given mean, support {1, 2, ...}: the
// discrete analogue of an exponential holding time, so the flap process is
// memoryless at cycle granularity. Inversion keeps it one draw per dwell.
Cycle geometric_dwell(Xoshiro256& rng, double mean) {
  const double p = 1.0 / mean;
  if (p >= 1.0) return 1;
  const double u = rng.uniform();
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  // Clamp against pathological u≈1 draws overflowing the cycle counter.
  if (!(g >= 0.0) || g > 1e15) return 1;
  return 1 + static_cast<Cycle>(g);
}

}  // namespace

FaultSchedule FaultSchedule::random_flapping_links(
    const std::vector<LinkId>& candidates, std::size_t flapping, double mttf,
    double mttr, Cycle horizon, std::uint64_t seed) {
  GCUBE_REQUIRE(mttf >= 1.0, "mean time to failure must be >= 1 cycle");
  GCUBE_REQUIRE(mttr >= 1.0, "mean time to repair must be >= 1 cycle");
  GCUBE_REQUIRE(flapping <= candidates.size(),
                "cannot flap more links than there are candidates");
  FaultSchedule schedule;
  Xoshiro256 rng(seed);

  // Pick `flapping` distinct candidate indices, in draw order (so the
  // schedule is deterministic in the candidate vector's order + seed).
  std::vector<std::size_t> picked;
  picked.reserve(flapping);
  std::vector<bool> taken(candidates.size(), false);
  while (picked.size() < flapping) {
    const auto i = static_cast<std::size_t>(rng.below(candidates.size()));
    if (!taken[i]) {
      taken[i] = true;
      picked.push_back(i);
    }
  }

  for (const std::size_t i : picked) {
    const LinkId link = candidates[i];
    // Renewal process: up for ~mttf, down for ~mttr, repeat. The first
    // up-time staggers the links so they don't all fail at cycle ~mttf.
    Cycle t = geometric_dwell(rng, mttf);
    while (t < horizon) {
      schedule.fail_link_at(t, link.lo, link.dim);
      t += geometric_dwell(rng, mttr);
      if (t >= horizon) break;  // horizon cut the flap short: stays failed
      schedule.repair_link_at(t, link.lo, link.dim);
      t += geometric_dwell(rng, mttf);
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::parse(std::istream& in) {
  FaultSchedule schedule;
  std::string line;
  std::size_t line_no = 0;
  const auto bad = [&line_no](const std::string& what) {
    return std::invalid_argument("fault schedule line " +
                                 std::to_string(line_no) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Cycle cycle = 0;
    std::string kind;
    std::uint64_t node = 0;
    if (!(fields >> cycle >> kind >> node)) {
      throw bad("expected '<cycle> node|link|repair-node|repair-link <id> ...'");
    }
    // Reject ids no topology can hold here, with the line number; the
    // tighter per-topology bound is checked when the schedule is attached.
    if (node >= pow2(kMaxDimension)) {
      throw bad("node id " + std::to_string(node) + " out of range (max " +
                std::to_string(pow2(kMaxDimension) - 1) + ")");
    }
    const bool is_link = kind == "link" || kind == "repair-link";
    std::uint64_t dim = 0;
    if (is_link) {
      if (!(fields >> dim)) {
        throw bad("link events need '<cycle> " + kind + " <node> <dim>'");
      }
      if (dim >= kMaxDimension) {
        throw bad("dimension " + std::to_string(dim) + " out of range (max " +
                  std::to_string(kMaxDimension - 1) + ")");
      }
    }
    if (kind == "node") {
      schedule.fail_node_at(cycle, static_cast<NodeId>(node));
    } else if (kind == "link") {
      schedule.fail_link_at(cycle, static_cast<NodeId>(node),
                            static_cast<Dim>(dim));
    } else if (kind == "repair-node") {
      schedule.repair_node_at(cycle, static_cast<NodeId>(node));
    } else if (kind == "repair-link") {
      schedule.repair_link_at(cycle, static_cast<NodeId>(node),
                              static_cast<Dim>(dim));
    } else {
      throw bad("unknown event kind '" + kind + "'");
    }
    std::string rest;
    if (fields >> rest && rest[0] != '#') {
      throw bad("trailing garbage '" + rest + "'");
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::from_file(const std::string& path) {
  std::ifstream in(path);
  GCUBE_REQUIRE(in.good(), "cannot open fault schedule file " + path);
  return parse(in);
}

}  // namespace gcube
