// Parallel parameter sweeps.
//
// Benchmark harnesses run one simulation per figure cell; cells are
// independent, so they fan out across hardware threads (hpc-parallel
// idiom: parallelize the outer, embarrassingly parallel loop; keep each
// cell single-threaded and deterministic). Results are written by index,
// so output order is deterministic regardless of scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gcube {

/// Invokes fn(0) .. fn(count - 1) across up to `max_threads` worker threads
/// (0 = hardware concurrency). fn must be safe to call concurrently for
/// distinct indices. Exceptions thrown by fn are rethrown on the caller's
/// thread after all workers finish.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads = 0);

/// Maps fn over [0, count) in parallel and collects the results by index —
/// the common "one simulation cell per figure row" shape. fn must be
/// default-constructible-result and safe to call concurrently.
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn, unsigned max_threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  parallel_for_index(
      count, [&](std::size_t i) { results[i] = fn(i); }, max_threads);
  return results;
}

}  // namespace gcube
