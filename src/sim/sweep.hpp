// Parallel parameter sweeps under one process-wide thread budget.
//
// Benchmark harnesses run one simulation per figure cell; cells are
// independent, so they fan out across hardware threads (hpc-parallel
// idiom: parallelize the outer, embarrassingly parallel loop). Results are
// written by index, so output order is deterministic regardless of
// scheduling.
//
// Parallel layers compose: a sweep of cells may call into the node-sharded
// simulator, which is itself parallel. Each layer leases its extra threads
// from the shared ThreadBudget (hardware_concurrency - 1 spare threads
// beyond the thread that asks), so a sweep that already owns every core
// hands zero extra workers to the cells inside it instead of
// oversubscribing the machine with sweep-width x cell-width threads.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gcube {

/// Process-wide accounting of spare worker threads. The process starts
/// with hardware_concurrency() - 1 spares (the calling thread itself is
/// always available for work and is never counted). acquire() grants at
/// most what is left; callers return their grant with release() — via
/// ThreadLease in practice.
class ThreadBudget {
 public:
  [[nodiscard]] static ThreadBudget& instance();

  /// Grants min(want, spare threads left), deducting from the budget.
  [[nodiscard]] unsigned acquire(unsigned want) noexcept;
  void release(unsigned granted) noexcept;
  [[nodiscard]] unsigned spare() const noexcept;

 private:
  explicit ThreadBudget(unsigned spare);

  struct State;
  State* state_;  // intentionally leaked (the budget lives process-long)
};

/// RAII lease of spare threads from the process budget. granted() may be
/// anything from 0 (machine already saturated — run on the calling thread
/// alone) to `want`.
class ThreadLease {
 public:
  explicit ThreadLease(unsigned want)
      : granted_(ThreadBudget::instance().acquire(want)) {}
  ~ThreadLease() { ThreadBudget::instance().release(granted_); }
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  [[nodiscard]] unsigned granted() const noexcept { return granted_; }

 private:
  unsigned granted_;
};

/// Invokes fn(0) .. fn(count - 1) across the calling thread plus however
/// many extra workers the ThreadBudget grants, never more than
/// `max_threads` total (0 = no cap beyond hardware concurrency). fn must
/// be safe to call concurrently for distinct indices. Exceptions thrown by
/// fn are rethrown on the caller's thread after all workers finish.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads = 0);

/// Maps fn over [0, count) in parallel and collects the results by index —
/// the common "one simulation cell per figure row" shape. fn must be
/// default-constructible-result and safe to call concurrently.
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn, unsigned max_threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  parallel_for_index(
      count, [&](std::size_t i) { results[i] = fn(i); }, max_threads);
  return results;
}

}  // namespace gcube
