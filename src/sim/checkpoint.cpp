#include "sim/checkpoint.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/rng.hpp"

namespace gcube {

namespace {

constexpr char kMagic[8] = {'G', 'C', 'U', 'B', 'E', 'C', 'K', 'P'};

// Fixed section sequence. The loader always knows which section it expects
// next, so every framing or payload failure can be attributed to a NAMED
// section — the property the corruption tests pin down.
enum SectionId : std::uint32_t {
  kSecProvenance = 1,
  kSecConfig = 2,
  kSecGlobals = 3,
  kSecFaults = 4,
  kSecPackets = 5,
  kSecParked = 6,
  kSecFires = 7,
  kSecLinks = 8,
  kSecMetrics = 9,
};

constexpr std::array<std::pair<SectionId, const char*>, 9> kSections = {{
    {kSecProvenance, "provenance"},
    {kSecConfig, "config"},
    {kSecGlobals, "globals"},
    {kSecFaults, "faults"},
    {kSecPackets, "packets"},
    {kSecParked, "parked"},
    {kSecFires, "fires"},
    {kSecLinks, "links"},
    {kSecMetrics, "metrics"},
}};

/// Table-driven CRC32 (IEEE 802.3 reflected polynomial). Self-contained so
/// the checkpoint format has zero external dependencies.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

/// Little-endian byte-buffer writer for section payloads.
struct Buf {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }

 private:
  void le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
};

/// Bounds-checked little-endian reader over one section's payload. Every
/// overrun throws CheckpointError naming the section — corrupt input can
/// fail, never crash.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size, const char* section)
      : data_(data), size_(size), section_(section) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  [[nodiscard]] std::uint64_t u64() { return le(8); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    return {reinterpret_cast<const char*>(p), n};
  }
  /// Element-count guard: a count field may not promise more elements than
  /// the remaining payload could hold at `min_size` bytes each.
  [[nodiscard]] std::uint64_t count(std::uint64_t n, std::size_t min_size) {
    if (min_size != 0 && n > (size_ - off_) / min_size) {
      fail("element count exceeds payload size");
    }
    return n;
  }
  void expect_end() const {
    if (off_ != size_) fail("trailing bytes after payload");
  }
  [[noreturn]] void fail(const std::string& detail) const {
    throw CheckpointError(section_, detail);
  }

 private:
  [[nodiscard]] const std::uint8_t* take(std::size_t n) {
    if (n > size_ - off_) fail("payload truncated");
    const std::uint8_t* p = data_ + off_;
    off_ += n;
    return p;
  }
  [[nodiscard]] std::uint64_t le(unsigned n) {
    const std::uint8_t* p = take(n);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  const char* section_;
};

void put_packet(Buf& b, const CheckpointPacket& p) {
  b.u32(p.dst);
  b.u32(p.hops);
  b.u32(p.plan_len);
  b.u32(p.flags);
  b.u64(p.id);
  b.u32(p.src);
  b.u64(p.created);
  b.u32(p.steer_next);
  b.u16(p.retry_attempts);
  b.u16(p.retransmits_used);
  b.u32(p.plan_src);
  b.u32(static_cast<std::uint32_t>(p.plan_hops.size()));
  for (Dim d : p.plan_hops) b.u8(static_cast<std::uint8_t>(d));
  b.u32(static_cast<std::uint32_t>(p.tail_hops.size()));
  for (Dim d : p.tail_hops) b.u8(static_cast<std::uint8_t>(d));
}

[[nodiscard]] CheckpointPacket get_packet(Cursor& c) {
  CheckpointPacket p;
  p.dst = c.u32();
  p.hops = c.u32();
  p.plan_len = c.u32();
  p.flags = c.u32();
  p.id = c.u64();
  p.src = c.u32();
  p.created = c.u64();
  p.steer_next = c.u32();
  p.retry_attempts = c.u16();
  p.retransmits_used = c.u16();
  p.plan_src = c.u32();
  const std::uint64_t plan_n = c.count(c.u32(), 1);
  p.plan_hops.reserve(plan_n);
  for (std::uint64_t i = 0; i < plan_n; ++i) p.plan_hops.push_back(c.u8());
  const std::uint64_t tail_n = c.count(c.u32(), 1);
  p.tail_hops.reserve(tail_n);
  for (std::uint64_t i = 0; i < tail_n; ++i) p.tail_hops.push_back(c.u8());
  return p;
}

[[nodiscard]] std::vector<std::uint8_t> encode_section(
    SectionId id, const CheckpointPacket* /*tag*/) = delete;

void put_metrics(Buf& b, const SimMetrics& m) {
  b.u64(m.measured_cycles);
  b.u64(m.generated);
  b.u64(m.delivered);
  b.u64(m.carryover_delivered);
  b.u64(m.dropped);
  b.u64(m.total_latency);
  b.u64(m.total_hops);
  b.u64(m.service_ops);
  b.u64(m.peak_in_flight);
  b.u64(m.injections_blocked);
  b.u64(m.stalled_cycles);
  b.u8(m.deadlocked ? 1 : 0);
  b.u64(m.fault_events);
  b.u64(m.repairs_applied);
  b.u64(m.reroutes);
  b.u64(m.dropped_no_route);
  b.u64(m.dropped_hop_limit);
  b.u64(m.orphaned_by_node_fault);
  b.u64(m.parked_retries);
  b.u64(m.retransmits);
  b.u64(m.gave_up);
  b.u64(m.in_flight_at_end);
  b.u64(m.phase_drain_ns);
  b.u64(m.phase_inject_ns);
  b.u64(m.phase_advance_ns);
  b.u64(m.phase_commit_ns);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    b.u64(m.latency_histogram.bucket(i));
  }
}

[[nodiscard]] SimMetrics get_metrics(Cursor& c) {
  SimMetrics m;
  m.measured_cycles = c.u64();
  m.generated = c.u64();
  m.delivered = c.u64();
  m.carryover_delivered = c.u64();
  m.dropped = c.u64();
  m.total_latency = c.u64();
  m.total_hops = c.u64();
  m.service_ops = c.u64();
  m.peak_in_flight = c.u64();
  m.injections_blocked = c.u64();
  m.stalled_cycles = c.u64();
  m.deadlocked = c.u8() != 0;
  m.fault_events = c.u64();
  m.repairs_applied = c.u64();
  m.reroutes = c.u64();
  m.dropped_no_route = c.u64();
  m.dropped_hop_limit = c.u64();
  m.orphaned_by_node_fault = c.u64();
  m.parked_retries = c.u64();
  m.retransmits = c.u64();
  m.gave_up = c.u64();
  m.in_flight_at_end = c.u64();
  m.phase_drain_ns = c.u64();
  m.phase_inject_ns = c.u64();
  m.phase_advance_ns = c.u64();
  m.phase_commit_ns = c.u64();
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    m.latency_histogram.add_bucket(i, c.u64());
  }
  return m;
}

/// Appends one framed section (id | length | crc | payload) to `out`.
void append_section(std::vector<std::uint8_t>& out, SectionId id,
                    const Buf& payload) {
  Buf frame;
  frame.u32(id);
  frame.u64(payload.bytes.size());
  std::uint32_t crc = checkpoint_crc32(frame.bytes.data(), frame.bytes.size());
  crc = checkpoint_crc32(payload.bytes.data(), payload.bytes.size(), crc);
  frame.u32(crc);
  out.insert(out.end(), frame.bytes.begin(), frame.bytes.end());
  out.insert(out.end(), payload.bytes.begin(), payload.bytes.end());
}

[[nodiscard]] std::vector<std::uint8_t> serialize(const SimCheckpoint& ck) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  Buf ver;
  ver.u32(kCheckpointFormatVersion);
  out.insert(out.end(), ver.bytes.begin(), ver.bytes.end());

  {
    Buf b;
    b.u64(ck.provenance.seed);
    b.str(ck.provenance.topology);
    b.str(ck.provenance.router);
    b.str(ck.provenance.simd);
    b.u32(ck.provenance.threads);
    b.str(ck.provenance.build_type);
    append_section(out, kSecProvenance, b);
  }
  {
    const CheckpointConfig& c = ck.config;
    Buf b;
    b.u64(c.seed);
    b.u64(c.injection_rate_bits);
    b.u64(c.warmup_cycles);
    b.u64(c.measure_cycles);
    b.u32(c.service_rate);
    b.u32(c.buffer_limit);
    b.u32(c.hop_limit);
    b.u32(c.retry_limit);
    b.u64(c.retry_backoff_base);
    b.u32(c.park_capacity);
    b.u32(c.retry_budget);
    b.u64(c.retransmit_timeout);
    b.u8(c.steer);
    b.u8(c.active_set);
    b.u64(c.node_count);
    b.u32(c.dims);
    b.u64(c.traffic_fingerprint);
    b.u64(c.schedule_fingerprint);
    b.u64(c.schedule_events);
    append_section(out, kSecConfig, b);
  }
  {
    Buf b;
    b.u64(ck.resume_cycle);
    b.u64(ck.in_flight);
    b.u64(ck.consecutive_stalls);
    b.u64(ck.next_event);
    append_section(out, kSecGlobals, b);
  }
  {
    Buf b;
    b.u32(static_cast<std::uint32_t>(ck.faulty_nodes.size()));
    for (NodeId u : ck.faulty_nodes) b.u32(u);
    b.u32(static_cast<std::uint32_t>(ck.faulty_links.size()));
    for (const LinkId& l : ck.faulty_links) {
      b.u32(l.lo);
      b.u32(l.dim);
    }
    append_section(out, kSecFaults, b);
  }
  {
    Buf b;
    b.u64(ck.queues.size());
    for (const std::vector<CheckpointPacket>& q : ck.queues) {
      b.u32(static_cast<std::uint32_t>(q.size()));
      for (const CheckpointPacket& p : q) put_packet(b, p);
    }
    append_section(out, kSecPackets, b);
  }
  {
    Buf b;
    b.u64(ck.parked.size());
    for (const CheckpointParked& p : ck.parked) {
      b.u64(p.wake);
      b.u32(p.node);
      b.u8(p.respawn ? 1 : 0);
      put_packet(b, p.packet);
    }
    append_section(out, kSecParked, b);
  }
  {
    Buf b;
    b.u64(ck.fires.size());
    for (const CheckpointFire& f : ck.fires) {
      b.u64(f.at);
      b.u32(f.node);
    }
    append_section(out, kSecFires, b);
  }
  {
    Buf b;
    b.u64(ck.link_stamps.size());
    for (std::uint32_t s : ck.link_stamps) b.u32(s);
    append_section(out, kSecLinks, b);
  }
  {
    Buf b;
    put_metrics(b, ck.metrics);
    append_section(out, kSecMetrics, b);
  }
  return out;
}

/// Reads the next framed section from file bytes at `off`, verifying the
/// frame and CRC against the section the format says comes next. Returns
/// the payload range and advances `off`.
struct SectionPayload {
  const std::uint8_t* data;
  std::size_t size;
};

[[nodiscard]] SectionPayload expect_section(
    const std::vector<std::uint8_t>& file, std::size_t& off, SectionId id,
    const char* name) {
  const auto fail = [&](const std::string& detail) -> void {
    throw CheckpointError(name, detail);
  };
  const std::size_t remaining = file.size() - off;
  constexpr std::size_t kFrameSize = 4 + 8 + 4;
  if (remaining < kFrameSize) fail("file truncated inside section frame");
  Cursor frame(file.data() + off, kFrameSize, name);
  const std::uint32_t got_id = frame.u32();
  const std::uint64_t len = frame.u64();
  const std::uint32_t crc = frame.u32();
  if (got_id != id) fail("unexpected section id (file corrupt or reordered)");
  if (len > remaining - kFrameSize) fail("payload truncated");
  const std::uint8_t* payload = file.data() + off + kFrameSize;
  std::uint32_t want = checkpoint_crc32(file.data() + off, 12);
  want = checkpoint_crc32(payload, len, want);
  if (want != crc) fail("CRC mismatch");
  off += kFrameSize + len;
  return {payload, static_cast<std::size_t>(len)};
}

[[nodiscard]] SimCheckpoint deserialize(
    const std::vector<std::uint8_t>& file) {
  if (file.size() < sizeof(kMagic) + 4 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("header", "bad magic (not a gcube checkpoint)");
  }
  Cursor head(file.data() + sizeof(kMagic), 4, "header");
  const std::uint32_t version = head.u32();
  if (version != kCheckpointFormatVersion) {
    throw CheckpointError(
        "header", "unsupported format version " + std::to_string(version));
  }
  std::size_t off = sizeof(kMagic) + 4;

  SimCheckpoint ck;
  {
    const SectionPayload s =
        expect_section(file, off, kSecProvenance, "provenance");
    Cursor c(s.data, s.size, "provenance");
    ck.provenance.seed = c.u64();
    ck.provenance.topology = c.str();
    ck.provenance.router = c.str();
    ck.provenance.simd = c.str();
    ck.provenance.threads = c.u32();
    ck.provenance.build_type = c.str();
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecConfig, "config");
    Cursor c(s.data, s.size, "config");
    ck.config.seed = c.u64();
    ck.config.injection_rate_bits = c.u64();
    ck.config.warmup_cycles = c.u64();
    ck.config.measure_cycles = c.u64();
    ck.config.service_rate = c.u32();
    ck.config.buffer_limit = c.u32();
    ck.config.hop_limit = c.u32();
    ck.config.retry_limit = c.u32();
    ck.config.retry_backoff_base = c.u64();
    ck.config.park_capacity = c.u32();
    ck.config.retry_budget = c.u32();
    ck.config.retransmit_timeout = c.u64();
    ck.config.steer = c.u8();
    ck.config.active_set = c.u8();
    ck.config.node_count = c.u64();
    ck.config.dims = c.u32();
    ck.config.traffic_fingerprint = c.u64();
    ck.config.schedule_fingerprint = c.u64();
    ck.config.schedule_events = c.u64();
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecGlobals, "globals");
    Cursor c(s.data, s.size, "globals");
    ck.resume_cycle = c.u64();
    ck.in_flight = c.u64();
    ck.consecutive_stalls = c.u64();
    ck.next_event = c.u64();
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecFaults, "faults");
    Cursor c(s.data, s.size, "faults");
    const std::uint64_t nodes = c.count(c.u32(), 4);
    ck.faulty_nodes.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      ck.faulty_nodes.push_back(c.u32());
    }
    const std::uint64_t links = c.count(c.u32(), 8);
    ck.faulty_links.reserve(links);
    for (std::uint64_t i = 0; i < links; ++i) {
      const NodeId lo = c.u32();
      const Dim dim = c.u32();
      ck.faulty_links.push_back({lo, dim});
    }
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecPackets, "packets");
    Cursor c(s.data, s.size, "packets");
    const std::uint64_t nodes = c.count(c.u64(), 4);
    ck.queues.resize(nodes);
    for (std::uint64_t u = 0; u < nodes; ++u) {
      const std::uint64_t depth = c.count(c.u32(), 48);
      ck.queues[u].reserve(depth);
      for (std::uint64_t i = 0; i < depth; ++i) {
        ck.queues[u].push_back(get_packet(c));
      }
    }
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecParked, "parked");
    Cursor c(s.data, s.size, "parked");
    const std::uint64_t n = c.count(c.u64(), 61);
    ck.parked.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CheckpointParked p;
      p.wake = c.u64();
      p.node = c.u32();
      p.respawn = c.u8() != 0;
      p.packet = get_packet(c);
      ck.parked.push_back(std::move(p));
    }
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecFires, "fires");
    Cursor c(s.data, s.size, "fires");
    const std::uint64_t n = c.count(c.u64(), 12);
    ck.fires.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CheckpointFire f;
      f.at = c.u64();
      f.node = c.u32();
      ck.fires.push_back(f);
    }
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecLinks, "links");
    Cursor c(s.data, s.size, "links");
    const std::uint64_t n = c.count(c.u64(), 4);
    ck.link_stamps.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) ck.link_stamps.push_back(c.u32());
    c.expect_end();
  }
  {
    const SectionPayload s = expect_section(file, off, kSecMetrics, "metrics");
    Cursor c(s.data, s.size, "metrics");
    ck.metrics = get_metrics(c);
    c.expect_end();
  }
  if (off != file.size()) {
    throw CheckpointError("trailer", "unexpected bytes after last section");
  }
  return ck;
}

}  // namespace

std::uint32_t checkpoint_crc32(const void* data, std::size_t len,
                               std::uint32_t crc) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string checkpoint_previous_generation(const std::string& path) {
  return path + ".1";
}

void save_checkpoint(const SimCheckpoint& ck, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize(ck);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open '" + tmp +
                             "': " + std::strerror(errno));
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // Durability before visibility: the data must be on disk before the
  // rename publishes it, or a crash could leave a well-named torn file.
  const bool flushed =
      written == bytes.size() && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0 || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to '" + tmp + "'");
  }
  // Two-generation rotation, all atomic renames: the previous checkpoint
  // survives as <path>.1 until the one after next replaces it.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    if (std::rename(path.c_str(),
                    checkpoint_previous_generation(path).c_str()) != 0) {
      std::remove(tmp.c_str());
      throw std::runtime_error("checkpoint: cannot rotate '" + path + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot publish '" + path + "'");
  }
}

SimCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError("header", "cannot open '" + path +
                                        "': " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw CheckpointError("header", "read error on '" + path + "'");
  }
  return deserialize(bytes);
}

SimCheckpoint load_checkpoint_with_fallback(const std::string& path,
                                            std::string* used_path) {
  try {
    SimCheckpoint ck = load_checkpoint(path);
    if (used_path != nullptr) *used_path = path;
    return ck;
  } catch (const CheckpointError& primary) {
    const std::string prev = checkpoint_previous_generation(path);
    std::fprintf(stderr,
                 "gcube: checkpoint '%s' rejected (%s); trying previous "
                 "generation '%s'\n",
                 path.c_str(), primary.what(), prev.c_str());
    try {
      SimCheckpoint ck = load_checkpoint(prev);
      if (used_path != nullptr) *used_path = prev;
      return ck;
    } catch (const CheckpointError& fallback) {
      std::fprintf(stderr, "gcube: previous generation rejected too (%s)\n",
                   fallback.what());
      throw primary;
    }
  }
}

std::uint64_t fault_events_fingerprint(
    const std::vector<FaultEvent>& events) noexcept {
  // Order-sensitive mix64 chain: same-cycle events apply in list order, so
  // two schedules that differ only in that order are different schedules.
  std::uint64_t h = mix64(0x636b7074'65766e74ull + events.size());
  for (const FaultEvent& e : events) {
    h = mix64(h ^ (e.cycle + 0x9e3779b97f4a7c15ull));
    h = mix64(h ^ (static_cast<std::uint64_t>(e.kind) << 32 ^ e.node));
    h = mix64(h ^ e.dim);
  }
  return h;
}

}  // namespace gcube
