// High-level experiment runner: builds a Gaussian Cube, injects a fault
// pattern that satisfies the FTGCR precondition, picks the matching router
// (FFGCR when fault-free, FTGCR otherwise), runs the simulator, and returns
// the metrics. One call is one cell of a paper figure.
#pragma once

#include <cstdint>

#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/bits.hpp"

namespace gcube {

struct GcSimSpec {
  Dim n = 8;
  std::uint64_t modulus = 2;
  std::size_t faulty_nodes = 0;  // randomly placed, precondition-checked
  std::uint64_t fault_seed = 7;
  TrafficPattern pattern = TrafficPattern::kUniform;
  NodeId hot_node = 0;           // kHotspot only
  double hotspot_fraction = 0.2;  // kHotspot only
  SimConfig sim;
};

struct GcSimOutcome {
  SimMetrics metrics;
  std::size_t faults_injected = 0;
};

/// Runs one simulation cell. Throws if a precondition-satisfying fault
/// pattern of the requested size cannot be found.
[[nodiscard]] GcSimOutcome run_gc_simulation(const GcSimSpec& spec);

}  // namespace gcube
