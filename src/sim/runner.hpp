// High-level experiment runner: builds a Gaussian Cube, injects a fault
// pattern that satisfies the FTGCR precondition, picks the matching router
// (FFGCR when fault-free, FTGCR otherwise), runs the simulator, and returns
// the metrics. One call is one cell of a paper figure.
//
// Dynamic-fault cells add mid-run fault arrivals: an explicit FaultSchedule
// and/or random node-fault arrivals at `fault_rate` per cycle. Those runs
// always use a fault-aware router (unless overridden) and exercise the
// simulator's per-hop adaptive re-routing.
#pragma once

#include <cstdint>

#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/bits.hpp"

namespace gcube {

enum class SimRouterKind {
  kAuto,   // FFGCR when no faults anywhere, FTGCR otherwise
  kFfgcr,  // fault-blind strategy (baseline under dynamic faults)
  kFtgcr,  // the paper's fault-tolerant strategy
  kEcube,  // dimension-ordered baseline; requires modulus == 1
};

struct GcSimSpec {
  Dim n = 8;
  std::uint64_t modulus = 2;
  std::size_t faulty_nodes = 0;  // randomly placed, precondition-checked
  std::uint64_t fault_seed = 7;
  TrafficPattern pattern = TrafficPattern::kUniform;
  NodeId hot_node = 0;           // kHotspot only
  double hotspot_fraction = 0.2;  // kHotspot only
  SimRouterKind router = SimRouterKind::kAuto;
  /// Mid-run fault arrivals (dynamic-fault mode when nonempty or
  /// fault_rate > 0). Events apply on top of the static `faulty_nodes`.
  FaultSchedule schedule;
  /// Probability per cycle of one random node-fault arrival over the whole
  /// run (seeded from fault_seed); 0 disables generation.
  double fault_rate = 0.0;
  /// Cap on generated random arrivals (0 = node_count / 8).
  std::size_t max_dynamic_faults = 0;
  SimConfig sim;
};

struct GcSimOutcome {
  SimMetrics metrics;
  std::size_t faults_injected = 0;      // static, before cycle 0
  std::size_t fault_events_scheduled = 0;  // dynamic, total in the schedule
};

/// Runs one simulation cell. Throws if a precondition-satisfying fault
/// pattern of the requested size cannot be found.
[[nodiscard]] GcSimOutcome run_gc_simulation(const GcSimSpec& spec);

}  // namespace gcube
