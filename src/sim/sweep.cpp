#include "sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gcube {

struct ThreadBudget::State {
  std::atomic<unsigned> spare;
};

ThreadBudget::ThreadBudget(unsigned spare) : state_(new State{{spare}}) {}

ThreadBudget& ThreadBudget::instance() {
  const unsigned hw = std::thread::hardware_concurrency();
  static ThreadBudget budget(hw == 0 ? 0 : hw - 1);
  return budget;
}

unsigned ThreadBudget::acquire(unsigned want) noexcept {
  unsigned cur = state_->spare.load(std::memory_order_relaxed);
  while (true) {
    const unsigned grant = cur < want ? cur : want;
    if (grant == 0) return 0;
    if (state_->spare.compare_exchange_weak(cur, cur - grant,
                                            std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void ThreadBudget::release(unsigned granted) noexcept {
  if (granted != 0) {
    state_->spare.fetch_add(granted, std::memory_order_relaxed);
  }
}

unsigned ThreadBudget::spare() const noexcept {
  return state_->spare.load(std::memory_order_relaxed);
}

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads) {
  if (count == 0) return;
  // Total worker cap including the calling thread; the budget decides how
  // many of the extras actually materialize.
  unsigned cap = max_threads != 0 ? max_threads
                                  : std::thread::hardware_concurrency();
  if (cap == 0) cap = 1;
  if (cap > count) cap = static_cast<unsigned>(count);

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Fast-fail: exhaust the iteration counter so no worker starts
        // more cells once one has already failed the whole sweep.
        next.store(count, std::memory_order_relaxed);
      }
    }
  };

  if (cap <= 1) {
    work();
  } else {
    const ThreadLease lease(cap - 1);
    {
      std::vector<std::jthread> pool;
      pool.reserve(lease.granted());
      for (unsigned w = 0; w < lease.granted(); ++w) {
        pool.emplace_back(work);
      }
      work();  // the caller is worker 0, not a bystander
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gcube
