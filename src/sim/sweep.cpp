#include "sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gcube {

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads) {
  if (count == 0) return;
  unsigned workers = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = static_cast<unsigned>(count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            fn(i);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            // Fast-fail: exhaust the iteration counter so no worker starts
            // more cells once one has already failed the whole sweep.
            next.store(count, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gcube
