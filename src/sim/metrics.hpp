// Simulation metrics (paper §6).
//
// Average latency = LP / DP: total latency of delivered packets over their
// count. Throughput = DP / PT, delivered packets per unit of processing
// time; we take PT to be the elapsed measurement cycles — node processing
// is parallel, so elapsed time is what "total processing time" scales with
// network-wide — and report log2 of it as in the paper's Figures 6 and 8.
// Absolute values are in cycles (the paper's µs scale was hardware
// specific); EXPERIMENTS.md compares shapes.
#pragma once

#include <array>
#include <cstdint>

#include "sim/packet.hpp"
#include "util/cache_stats.hpp"

namespace gcube {

/// Power-of-two-bucketed latency histogram: bucket i counts deliveries with
/// latency in [2^i, 2^(i+1)) cycles (bucket 0 covers 0 and 1). Compact,
/// O(1) updates, and good enough for percentile estimates across the four
/// decades a simulation can span.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(Cycle latency) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }

  /// Latency below which fraction q of deliveries fall (upper bucket edge;
  /// q clamped to [0, 1]). p0 is the first nonempty bucket's edge, p100 the
  /// last nonempty bucket's edge. Returns 0 when empty.
  [[nodiscard]] Cycle percentile(double q) const;

  /// Bucket-wise accumulation (per-shard histograms are merged into the
  /// run total; integer adds, so the merge is associative and the result
  /// is independent of shard count).
  void merge(const LatencyHistogram& o) noexcept;

  /// Checkpoint restore: adds `count` deliveries straight into bucket i
  /// without replaying individual records.
  void add_bucket(std::size_t i, std::uint64_t count) {
    counts_.at(i) += count;
    total_ += count;
  }

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

struct SimMetrics {
  Cycle measured_cycles = 0;
  /// Offered load: every packet a source wanted to inject, *including*
  /// buffer-blocked injections (which are also counted in
  /// injections_blocked). delivered/generated is therefore the
  /// offered-load delivery ratio under any buffer_limit; use accepted()
  /// for the count that actually entered the network.
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;       // DP
  /// Packets generated during warmup but delivered inside the measurement
  /// window. They are kept out of delivered / latency / hops / histogram
  /// (their creation predates the window, so counting them would let
  /// delivery_ratio() exceed 1 and skew latency), but tallied here so the
  /// work is visible and delivered + carryover_delivered bounds what the
  /// network actually completed in the window.
  std::uint64_t carryover_delivered = 0;
  std::uint64_t dropped = 0;         // planner failures at injection time
  std::uint64_t total_latency = 0;   // LP, cycles
  std::uint64_t total_hops = 0;      // over delivered packets
  std::uint64_t service_ops = 0;     // per-node packet handling operations
  std::uint64_t peak_in_flight = 0;
  std::uint64_t injections_blocked = 0;  // finite buffers: source was full
  std::uint64_t stalled_cycles = 0;  // cycles with traffic but no movement
  bool deadlocked = false;           // sustained global stall detected
  // Degradation accounting. fault_events / orphaned_by_node_fault are zero
  // in static-fault runs; reroutes and the two en-route drop counters can
  // be nonzero in any faulty run — fabric-steered packets re-plan at
  // fault-adjacent nodes whether the faults are static or applied mid-run.
  std::uint64_t fault_events = 0;    // schedule events applied (measured)
  std::uint64_t repairs_applied = 0;  // repair events that cleared a fault
  std::uint64_t reroutes = 0;        // planned next link died; re-planned
  std::uint64_t dropped_no_route = 0;   // no usable continuation mid-flight
  std::uint64_t dropped_hop_limit = 0;  // livelock guard tripped
  std::uint64_t orphaned_by_node_fault = 0;  // queued at a node that died
  // Transient-fault recovery accounting (zero unless SimConfig::retry_limit
  // or retry_budget is set).
  std::uint64_t parked_retries = 0;  // strandings parked for backoff retry
  std::uint64_t retransmits = 0;     // end-to-end source relaunches
  std::uint64_t gave_up = 0;         // retries and retransmits exhausted
  /// Packets still inside the network (queued, in a mailbox, or parked for
  /// retry) when the run ended — the closing term of the accounting
  /// identity: generated = delivered(+carryover at warmup boundary) +
  /// dropped + injections_blocked + dropped_no_route + dropped_hop_limit +
  /// orphaned_by_node_fault + gave_up + in_flight_at_end, exact when
  /// warmup_cycles == 0. Serial field (set once after the cycle loop).
  std::uint64_t in_flight_at_end = 0;
  /// Nonzero when the run stopped early at a graceful-halt request (SIGINT
  /// via SimConfig::stop_requested, or halt_at_cycle): the cycle the loop
  /// would have entered next — i.e. the resume point of the checkpoint
  /// written on the way out. Serial field (set once, at the halt); not a
  /// simulation result, so EXCLUDED from absorb() and
  /// deterministic_equals() — a resumed run completes with 0 here while
  /// matching the uninterrupted run on every deterministic field.
  Cycle interrupted_at = 0;
  LatencyHistogram latency_histogram;
  /// Wall-clock attribution of the cycle loop, nanoseconds summed across
  /// workers (so a phase's share of the per-worker totals, not of elapsed
  /// time). Populated only when SimConfig::phase_timing is set — the
  /// steady_clock reads are cheap but not free, so benches opt in for an
  /// instrumented pass and leave timed runs clean. Diagnostics, not
  /// simulation results: EXCLUDED from deterministic_equals().
  std::uint64_t phase_drain_ns = 0;    // phase A: mailbox/release drains
  std::uint64_t phase_inject_ns = 0;   // phase A: injection + occupancy
  std::uint64_t phase_advance_ns = 0;  // phase B: queue service
  std::uint64_t phase_commit_ns = 0;   // fused serial section
  /// Router memoization counters over the measurement window (cache state
  /// at run() end minus the snapshot at measurement start). Diagnostics,
  /// not simulation results: under parallel execution the hit/miss split
  /// depends on thread interleaving (two workers can both miss on a key
  /// one is about to fill), so these are deliberately EXCLUDED from
  /// deterministic_equals() and carry no determinism guarantee.
  CacheStats plan_cache;
  CacheStats hop_cache;

  [[nodiscard]] double avg_latency() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_latency) /
                     static_cast<double>(delivered);
  }
  [[nodiscard]] double avg_hops() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_hops) /
                     static_cast<double>(delivered);
  }
  /// Packets that actually entered the network (offered minus blocked).
  [[nodiscard]] std::uint64_t accepted() const {
    return generated - injections_blocked;
  }
  /// Delivered fraction of the offered load — the degradation headline of
  /// the dynamic-fault studies.
  [[nodiscard]] double delivery_ratio() const {
    return generated == 0 ? 0.0
                          : static_cast<double>(delivered) /
                                static_cast<double>(generated);
  }
  /// Total packets lost to mid-flight faults, either shape. Kept as a
  /// derived view for display; the split fields are the source of truth.
  [[nodiscard]] std::uint64_t dropped_en_route() const {
    return dropped_no_route + dropped_hop_limit;
  }
  /// DP / PT with PT = measured cycles (packets per cycle).
  [[nodiscard]] double throughput() const {
    return measured_cycles == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(measured_cycles);
  }
  [[nodiscard]] double log2_throughput() const;

  /// Folds a per-shard partial into this run total: additive counters sum,
  /// histograms merge bucket-wise, flags OR, peaks max, and
  /// measured_cycles keeps this object's value (a shard partial describes
  /// the same window, not an additional one). All operations are
  /// associative and commutative over disjoint shard contributions, so the
  /// reduction — performed in ascending shard order regardless — cannot
  /// depend on shard count.
  void absorb(const SimMetrics& shard) noexcept;

  /// Equality over every deterministic field, including the latency
  /// histogram. This is the parallel core's determinism contract: for a
  /// fixed seed it must hold across any shard/thread-count combination.
  /// plan_cache / hop_cache are excluded — the hit/miss split is a
  /// thread-interleaving diagnostic, not a simulation result.
  [[nodiscard]] bool deterministic_equals(const SimMetrics& o) const noexcept;
};

}  // namespace gcube
