// Simulation metrics (paper §6).
//
// Average latency = LP / DP: total latency of delivered packets over their
// count. Throughput = DP / PT, delivered packets per unit of processing
// time; we take PT to be the elapsed measurement cycles — node processing
// is parallel, so elapsed time is what "total processing time" scales with
// network-wide — and report log2 of it as in the paper's Figures 6 and 8.
// Absolute values are in cycles (the paper's µs scale was hardware
// specific); EXPERIMENTS.md compares shapes.
#pragma once

#include <array>
#include <cstdint>

#include "sim/packet.hpp"

namespace gcube {

/// Power-of-two-bucketed latency histogram: bucket i counts deliveries with
/// latency in [2^i, 2^(i+1)) cycles (bucket 0 covers 0 and 1). Compact,
/// O(1) updates, and good enough for percentile estimates across the four
/// decades a simulation can span.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(Cycle latency) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }

  /// Latency below which fraction q of deliveries fall (upper bucket edge;
  /// q in [0, 1]). Returns 0 when empty.
  [[nodiscard]] Cycle percentile(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

struct SimMetrics {
  Cycle measured_cycles = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;       // DP
  std::uint64_t dropped = 0;         // planner failures (should stay 0)
  std::uint64_t total_latency = 0;   // LP, cycles
  std::uint64_t total_hops = 0;      // over delivered packets
  std::uint64_t service_ops = 0;     // per-node packet handling operations
  std::uint64_t peak_in_flight = 0;
  std::uint64_t injections_blocked = 0;  // finite buffers: source was full
  std::uint64_t stalled_cycles = 0;  // cycles with traffic but no movement
  bool deadlocked = false;           // sustained global stall detected
  LatencyHistogram latency_histogram;

  [[nodiscard]] double avg_latency() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_latency) /
                     static_cast<double>(delivered);
  }
  [[nodiscard]] double avg_hops() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_hops) /
                     static_cast<double>(delivered);
  }
  /// DP / PT with PT = measured cycles (packets per cycle).
  [[nodiscard]] double throughput() const {
    return measured_cycles == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(measured_cycles);
  }
  [[nodiscard]] double log2_throughput() const;
};

}  // namespace gcube
