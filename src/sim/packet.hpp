// Packet representation for the network simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace gcube {

using Cycle = std::uint64_t;

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Cycle created = 0;
  /// Source route: dimensions to cross, planned at injection (the paper's
  /// O(n) header). Always records the path actually traversed: an adaptive
  /// packet's abandoned tail is truncated and each online hop is appended
  /// as it is taken.
  std::vector<Dim> hops;
  std::uint32_t next_hop = 0;  // index into hops == hops already taken
  /// Set when a mid-flight fault invalidated the precomputed route; from
  /// then on the packet is steered hop by hop via Router::next_hop.
  bool adaptive = false;

  [[nodiscard]] bool at_destination() const noexcept {
    return next_hop == hops.size();
  }
};

}  // namespace gcube
