// Packet representation for the network simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace gcube {

using Cycle = std::uint64_t;

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Cycle created = 0;
  /// Source route: dimensions to cross, planned at injection (the paper's
  /// O(n) header).
  std::vector<Dim> hops;
  std::uint32_t next_hop = 0;  // index into hops

  [[nodiscard]] bool at_destination() const noexcept {
    return next_hop == hops.size();
  }
};

}  // namespace gcube
