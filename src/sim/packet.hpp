// Packet representation for the network simulator: a structure-of-arrays
// hot/cold split.
//
// The cycle loop touches every in-flight packet once per hop, so the
// fields it reads there are segregated into a 16-byte PacketHot record —
// destination, hop cursor, planned-prefix length, and a flag byte — four
// to a cache line in the pool's hot lane. Everything else (identity,
// source, creation cycle, the shared route plan, retry/retransmit
// counters, the audit hop tail) lives in a parallel PacketCold record
// touched only at injection, near faults (plan adoption / adaptive
// re-planning), on the audited delivery-replay sample, and at delivery
// accounting — never on the steered fault-free fast path.
//
// A packet no longer owns its source route: PacketCold::plan holds shared
// ownership of an immutable Route produced by the router's plan cache, so
// injection is a refcount bump instead of a hop-vector copy. A packet that
// goes adaptive (its precomputed next link died mid-flight) stops
// consuming the plan and — when it is in the audit sample — records each
// online hop in a small inline tail buffer, spilling to the heap only past
// kInlineHops (deep detours under dense dynamic faults). The recorded path
// is plan[0, plan_len) ++ tail, which the simulator replays at delivery as
// a safety check on the deterministic 1-in-64 audited sample; non-audited
// packets keep only the hop COUNT (PacketHot::hops), eliminating a
// per-hop store plus potential heap spill from the common case.
#pragma once

#include <cstdint>
#include <memory>

#include "routing/route.hpp"
#include "util/bits.hpp"

namespace gcube {

using Cycle = std::uint64_t;

/// Append-only hop sequence with inline storage for the common shallow
/// case. clear() keeps any heap spill capacity, so a pooled packet that
/// detoured deeply once never reallocates again.
class HopTail {
 public:
  static constexpr std::uint32_t kInlineHops = 12;

  void push_back(Dim c) {
    if (size_ < kInlineHops) {
      inline_[size_++] = c;
      return;
    }
    const std::uint32_t spilled = size_ - kInlineHops;
    if (spilled == heap_capacity_) {
      const std::uint32_t grown = heap_capacity_ == 0 ? kInlineHops
                                                      : 2 * heap_capacity_;
      auto bigger = std::make_unique<Dim[]>(grown);
      for (std::uint32_t i = 0; i < spilled; ++i) bigger[i] = heap_[i];
      heap_ = std::move(bigger);
      heap_capacity_ = grown;
    }
    heap_[spilled] = c;
    ++size_;
  }

  [[nodiscard]] Dim operator[](std::uint32_t i) const {
    return i < kInlineHops ? inline_[i] : heap_[i - kInlineHops];
  }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  void clear() noexcept { size_ = 0; }

 private:
  std::uint32_t size_ = 0;
  std::uint32_t heap_capacity_ = 0;
  Dim inline_[kInlineHops] = {};
  std::unique_ptr<Dim[]> heap_;
};

// PacketHot::flags bits. kPktHasPlan mirrors PacketCold::plan != nullptr so
// the fast path can rule out an adopted plan without touching the cold
// record; kPktAudited precomputes (id & 63) == 0 for the same reason.
inline constexpr std::uint32_t kPktSteered = 1u << 0;
inline constexpr std::uint32_t kPktAdaptive = 1u << 1;
inline constexpr std::uint32_t kPktHasPlan = 1u << 2;
inline constexpr std::uint32_t kPktAudited = 1u << 3;

/// The per-hop working set of one in-flight packet: everything the
/// steered fault-free fast path reads or writes, and nothing else.
/// Exactly 16 bytes — four packets per cache line in the pool's hot lane.
struct PacketHot {
  NodeId dst = 0;
  /// Hops already taken (the cursor into the recorded path). For a planned
  /// packet this doubles as the index of the next plan hop to consume.
  std::uint32_t hops = 0;
  /// Hops [0, plan_len) of the recorded path come from *cold.plan; an
  /// adaptive packet truncates this to the hops actually traversed before
  /// the re-plan. Steered packets launch with 0 (no plan at all).
  std::uint32_t plan_len = 0;
  std::uint32_t flags = 0;  // kPkt* bits

  /// kSteered: fabric-steered packet, injected with NO plan, routed by
  /// per-hop table lookups at clean nodes and by an adopted router plan
  /// near faults; arrival is positional (current node == dst).
  /// kAdaptive: a mid-flight fault invalidated the precomputed route; the
  /// packet is steered hop by hop via Router::next_hop from then on.
  /// Either way arrival cannot be read off the plan cursor.
  [[nodiscard]] bool positional_arrival() const noexcept {
    return (flags & (kPktSteered | kPktAdaptive)) != 0;
  }
  /// Whether this packet participates in the delivery-replay audit (and so
  /// records its online hops in cold.tail). A deterministic 1-in-64 sample
  /// keyed on the id — a pure function of (creation cycle, source), so the
  /// sample is identical across thread counts — keeps the invariant
  /// continuously exercised without putting an O(path) replay plus a hop
  /// recording store on every packet of the hot path.
  [[nodiscard]] bool audited() const noexcept {
    return (flags & kPktAudited) != 0;
  }
};
static_assert(sizeof(PacketHot) == 16, "hot lane record must stay 16 bytes");

/// Everything else: touched at injection, delivery, fault adjacency, and
/// on the audited sample — off the per-hop fast path by construction.
struct PacketCold {
  std::uint64_t id = 0;
  NodeId src = 0;
  Cycle created = 0;
  /// Source route: the cached immutable plan computed at injection (the
  /// paper's O(n) header), shared with the router's plan cache and any
  /// other packet on the same (src, dst) pair — or a plan adopted
  /// mid-flight at a fault-adjacent node by a steered packet.
  std::shared_ptr<const Route> plan;
  /// Cursor into an adopted plan (steered packets only); adopted hops are
  /// NOT part of plan_len — they land in `tail`.
  std::uint32_t steer_next = 0;
  /// Transient-fault recovery state (SimConfig::retry_limit /
  /// retry_budget). How many times this packet has been parked in a retry
  /// queue since its last (re)launch, and how many end-to-end source
  /// retransmits it has consumed.
  std::uint16_t retry_attempts = 0;
  std::uint16_t retransmits_used = 0;
  /// Audited packets only: every online (steered or adaptive) hop taken.
  HopTail tail;
};

/// The i-th hop of an audited packet's recorded path (i < hot.hops, or
/// i < plan_len for the not-yet-traversed planned suffix).
[[nodiscard]] inline Dim packet_hop_at(const PacketHot& hot,
                                       const PacketCold& cold,
                                       std::uint32_t i) {
  return i < hot.plan_len ? cold.plan->hops()[i] : cold.tail[i - hot.plan_len];
}

}  // namespace gcube
