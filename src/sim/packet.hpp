// Packet representation for the network simulator.
//
// A packet no longer owns its source route: it holds shared ownership of
// an immutable Route produced by the router's plan cache plus a cursor, so
// injection is a refcount bump instead of a hop-vector copy. A packet that
// goes adaptive (its precomputed next link died mid-flight) stops
// consuming the plan and records each online hop in a small inline tail
// buffer, spilling to the heap only past kInlineHops (deep detours under
// dense dynamic faults). The recorded path is plan[0, plan_len) ++ tail,
// which the simulator replays at delivery as a safety check on a
// deterministic sample of packets (see audited()).
#pragma once

#include <cstdint>
#include <memory>

#include "routing/route.hpp"
#include "util/bits.hpp"

namespace gcube {

using Cycle = std::uint64_t;

/// Append-only hop sequence with inline storage for the common shallow
/// case. clear() keeps any heap spill capacity, so a pooled packet that
/// detoured deeply once never reallocates again.
class HopTail {
 public:
  static constexpr std::uint32_t kInlineHops = 12;

  void push_back(Dim c) {
    if (size_ < kInlineHops) {
      inline_[size_++] = c;
      return;
    }
    const std::uint32_t spilled = size_ - kInlineHops;
    if (spilled == heap_capacity_) {
      const std::uint32_t grown = heap_capacity_ == 0 ? kInlineHops
                                                      : 2 * heap_capacity_;
      auto bigger = std::make_unique<Dim[]>(grown);
      for (std::uint32_t i = 0; i < spilled; ++i) bigger[i] = heap_[i];
      heap_ = std::move(bigger);
      heap_capacity_ = grown;
    }
    heap_[spilled] = c;
    ++size_;
  }

  [[nodiscard]] Dim operator[](std::uint32_t i) const {
    return i < kInlineHops ? inline_[i] : heap_[i - kInlineHops];
  }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  void clear() noexcept { size_ = 0; }

 private:
  std::uint32_t size_ = 0;
  std::uint32_t heap_capacity_ = 0;
  Dim inline_[kInlineHops] = {};
  std::unique_ptr<Dim[]> heap_;
};

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Cycle created = 0;
  /// Source route: the cached immutable plan computed at injection (the
  /// paper's O(n) header), shared with the router's plan cache and any
  /// other packet on the same (src, dst) pair.
  std::shared_ptr<const Route> plan;
  std::uint32_t next_hop = 0;  // hops already taken
  /// Hops [0, plan_len) come from *plan; an adaptive packet truncates this
  /// to the hops actually traversed before the re-plan.
  std::uint32_t plan_len = 0;
  /// Set when a mid-flight fault invalidated the precomputed route; from
  /// then on the packet is steered hop by hop via Router::next_hop and
  /// every hop taken is recorded in `tail`.
  bool adaptive = false;
  /// Fabric-steered packet: injected with NO plan at all (plan_len == 0),
  /// routed by per-hop table lookups at clean nodes and by an adopted
  /// router plan near faults. Every hop taken is recorded in `tail`;
  /// arrival is positional (current node == dst).
  bool steered = false;
  /// Cursor into an adopted plan (`plan`, entered mid-flight at a patched
  /// node); adopted hops are NOT part of plan_len — they land in `tail`.
  std::uint32_t steer_next = 0;
  /// Transient-fault recovery state (SimConfig::retry_limit /
  /// retry_budget). How many times this packet has been parked in a retry
  /// queue since its last (re)launch, and how many end-to-end source
  /// retransmits it has consumed.
  std::uint16_t retry_attempts = 0;
  std::uint16_t retransmits_used = 0;
  HopTail tail;

  [[nodiscard]] bool at_destination() const noexcept {
    return next_hop == plan_len;
  }
  /// The i-th hop of the recorded path (i < next_hop, or i < plan_len for
  /// the not-yet-traversed planned suffix).
  [[nodiscard]] Dim hop_at(std::uint32_t i) const {
    return i < plan_len ? plan->hops()[i] : tail[i - plan_len];
  }
  /// Whether this packet participates in the delivery-replay audit (and so
  /// must record its online hops in `tail`). A deterministic 1-in-64
  /// sample keyed on the id — a pure function of (creation cycle, source),
  /// so the sample is identical across thread counts — keeps the invariant
  /// continuously exercised without putting an O(path) replay plus a hop
  /// recording store on every packet of the hot path.
  [[nodiscard]] bool audited() const noexcept { return (id & 63) == 0; }
};

}  // namespace gcube
