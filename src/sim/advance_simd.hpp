// SIMD classify kernel for the batched phase-B advance.
//
// serve_word's classify pass is a pure function of each harvested front
// packet's 16-byte PacketHot record, its node id, and one 64-bit overlay
// clean window — exactly the shape the SoA split (PR 7) was built to feed
// to vector lanes. classify_front_packets answers, per entry, the two
// questions the apply pass needs precomputed:
//
//   arrived:  positional packets (steered/adaptive) compare node == dst,
//             planned ones compare hops == plan_len;
//   fast:     steered with no adopted plan, at a clean node, under the
//             livelock hop guard, and not arrived — i.e. eligible for the
//             batched NextHopFabric::fault_free_hops lookup.
//
// as two bitmasks over the (<= 64) entries. The vector paths load 4 (SSE)
// or 8 (AVX2) hot records per group — two 16-byte records per 128-bit
// lane half — transpose them into per-field lane vectors, and evaluate
// every predicate as integer compares; there is no arithmetic that could
// reassociate, so all levels are bit-identical to the scalar reference by
// construction (and the determinism suite sweeps them to prove it).
#pragma once

#include <cstdint>

#include "sim/packet.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace gcube {

struct ClassifyMasks {
  std::uint64_t arrived = 0;
  std::uint64_t fast = 0;
};

/// Classifies `count` (<= 64) harvested front packets. `hot[i]` points at
/// entry i's PacketHot record, `nodes[i]` is its node, `clean` is the
/// overlay clean window based at `base` (bit u - base answers node u), and
/// `hop_limit` is the livelock guard. Entries in neither returned mask
/// take the full serve_node decision tree.
[[nodiscard]] ClassifyMasks classify_front_packets(
    SimdLevel level, unsigned count, const PacketHot* const* hot,
    const NodeId* nodes, NodeId base, std::uint64_t clean,
    std::uint32_t hop_limit) noexcept;

}  // namespace gcube
