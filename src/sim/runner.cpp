#include "sim/runner.hpp"

#include <memory>

#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "routing/ecube.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gcube {

namespace {

/// Draws `count` distinct faulty nodes such that the FTGCR precondition
/// still holds (the paper's simulations place faults the strategy is
/// guaranteed to tolerate).
FaultSet draw_fault_pattern(const GaussianCube& gc, std::size_t count,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    FaultSet faults;
    while (faults.node_fault_count() < count) {
      faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
    }
    if (check_ftgcr_precondition(gc, faults)) return faults;
  }
  GCUBE_REQUIRE(false, "could not place a tolerable fault pattern in " +
                           gc.name());
  return {};
}

}  // namespace

GcSimOutcome run_gc_simulation(const GcSimSpec& spec) {
  GCUBE_REQUIRE(spec.fault_rate >= 0.0 && spec.fault_rate <= 1.0,
                "fault_rate must be a probability");
  const GaussianCube gc(spec.n, spec.modulus);
  FaultSet faults;
  if (spec.faulty_nodes > 0) {
    faults = draw_fault_pattern(gc, spec.faulty_nodes, spec.fault_seed);
  }
  // Assemble the dynamic schedule: explicit events, random arrivals
  // (optionally transient), and flapping links.
  FaultSchedule schedule = spec.schedule;
  const Cycle horizon = spec.sim.warmup_cycles + spec.sim.measure_cycles;
  if (spec.fault_rate > 0.0) {
    const std::size_t cap = spec.max_dynamic_faults != 0
                                ? spec.max_dynamic_faults
                                : static_cast<std::size_t>(
                                      gc.node_count() / 8);
    const FaultSchedule random = FaultSchedule::random_node_faults(
        gc.node_count(), spec.fault_rate, horizon,
        spec.fault_seed ^ 0x9e3779b97f4a7c15ULL, cap);
    for (const FaultEvent& e : random.events()) {
      schedule.fail_node_at(e.cycle, e.node);
      if (spec.fault_repair_after > 0) {
        schedule.repair_node_at(e.cycle + spec.fault_repair_after, e.node);
      }
    }
  }
  if (spec.flapping_links > 0) {
    std::vector<LinkId> candidates;
    for (NodeId u = 0; u < gc.node_count(); ++u) {
      for (Dim c = 0; c < gc.dims(); ++c) {
        // Each undirected link once, via its lower endpoint.
        if (gc.has_link(u, c) && bit(u, c) == 0) candidates.push_back({u, c});
      }
    }
    const FaultSchedule flaps = FaultSchedule::random_flapping_links(
        candidates, spec.flapping_links, spec.mttf, spec.mttr, horizon,
        spec.fault_seed ^ 0xc2b2ae3d27d4eb4fULL);
    for (const FaultEvent& e : flaps.events()) {
      if (e.kind == FaultEvent::Kind::kLink) {
        schedule.fail_link_at(e.cycle, e.node, e.dim);
      } else {
        schedule.repair_link_at(e.cycle, e.node, e.dim);
      }
    }
  }
  const bool dynamic = !schedule.empty();

  std::unique_ptr<Router> router;
  switch (spec.router) {
    case SimRouterKind::kAuto:
      if (faults.empty() && !dynamic) {
        router = std::make_unique<FfgcrRouter>(gc);
      } else {
        router = std::make_unique<FtgcrRouter>(gc, faults);
      }
      break;
    case SimRouterKind::kFfgcr:
      router = std::make_unique<FfgcrRouter>(gc);
      break;
    case SimRouterKind::kFtgcr:
      router = std::make_unique<FtgcrRouter>(gc, faults);
      break;
    case SimRouterKind::kEcube:
      GCUBE_REQUIRE(spec.modulus == 1,
                    "e-cube needs the full hypercube GC(n, 1)");
      router = std::make_unique<EcubeRouter>(gc);
      break;
  }

  const PatternTraffic traffic(spec.n, spec.sim.injection_rate, faults,
                               spec.sim.seed, spec.pattern, spec.hot_node,
                               spec.hotspot_fraction);
  GcSimOutcome outcome;
  outcome.faults_injected = faults.node_fault_count();
  outcome.fault_events_scheduled = schedule.size();
  if (dynamic) {
    NetworkSim sim(gc, *router, faults, spec.sim, traffic, schedule);
    outcome.metrics = sim.run();
  } else {
    NetworkSim sim(gc, *router, faults, spec.sim, traffic);
    outcome.metrics = sim.run();
  }
  return outcome;
}

}  // namespace gcube
