#include "sim/runner.hpp"

#include <memory>

#include "fault/fault_set.hpp"
#include "fault/preconditions.hpp"
#include "routing/ffgcr.hpp"
#include "routing/ftgcr.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gcube {

namespace {

/// Draws `count` distinct faulty nodes such that the FTGCR precondition
/// still holds (the paper's simulations place faults the strategy is
/// guaranteed to tolerate).
FaultSet draw_fault_pattern(const GaussianCube& gc, std::size_t count,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    FaultSet faults;
    while (faults.node_fault_count() < count) {
      faults.fail_node(static_cast<NodeId>(rng.below(gc.node_count())));
    }
    if (check_ftgcr_precondition(gc, faults)) return faults;
  }
  GCUBE_REQUIRE(false, "could not place a tolerable fault pattern in " +
                           gc.name());
  return {};
}

}  // namespace

GcSimOutcome run_gc_simulation(const GcSimSpec& spec) {
  const GaussianCube gc(spec.n, spec.modulus);
  FaultSet faults;
  if (spec.faulty_nodes > 0) {
    faults = draw_fault_pattern(gc, spec.faulty_nodes, spec.fault_seed);
  }
  std::unique_ptr<Router> router;
  if (faults.empty()) {
    router = std::make_unique<FfgcrRouter>(gc);
  } else {
    router = std::make_unique<FtgcrRouter>(gc, faults);
  }
  const PatternTraffic traffic(spec.n, spec.sim.injection_rate, faults,
                               spec.sim.seed, spec.pattern, spec.hot_node,
                               spec.hotspot_fraction);
  NetworkSim sim(gc, *router, faults, spec.sim, traffic);
  GcSimOutcome outcome;
  outcome.metrics = sim.run();
  outcome.faults_injected = faults.node_fault_count();
  return outcome;
}

}  // namespace gcube
