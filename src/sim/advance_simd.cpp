#include "sim/advance_simd.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace gcube {
namespace {

constexpr std::uint32_t kPositional = kPktSteered | kPktAdaptive;
constexpr std::uint32_t kFastSelect =
    kPktSteered | kPktAdaptive | kPktHasPlan;

ClassifyMasks classify_scalar(unsigned count, const PacketHot* const* hot,
                              const NodeId* nodes, NodeId base,
                              std::uint64_t clean,
                              std::uint32_t hop_limit) noexcept {
  ClassifyMasks m;
  for (unsigned i = 0; i < count; ++i) {
    const PacketHot& h = *hot[i];
    const NodeId u = nodes[i];
    if (h.positional_arrival() ? u == h.dst : h.hops == h.plan_len) {
      m.arrived |= std::uint64_t{1} << i;
    } else if ((h.flags & kFastSelect) == kPktSteered &&
               ((clean >> (u - base)) & 1) != 0 && h.hops < hop_limit) {
      m.fast |= std::uint64_t{1} << i;
    }
  }
  return m;
}

#if defined(__x86_64__)

// ---- AVX2: 8 records per group --------------------------------------------

__attribute__((target("avx2"))) ClassifyMasks classify_avx2(
    unsigned count, const PacketHot* const* hot, const NodeId* nodes,
    NodeId base, std::uint64_t clean, std::uint32_t hop_limit) noexcept {
  ClassifyMasks m;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i basev = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i cleanv = _mm256_set1_epi64x(static_cast<long long>(clean));
  const __m256i vpos = _mm256_set1_epi32(static_cast<int>(kPositional));
  const __m256i vsel = _mm256_set1_epi32(static_cast<int>(kFastSelect));
  const __m256i vsteer = _mm256_set1_epi32(static_cast<int>(kPktSteered));
  // Unsigned 32-bit compare via sign-bias (hop_limit may use the full
  // uint32 range when configured explicitly).
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vlimit = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(hop_limit)), bias);
  unsigned i = 0;
  for (; i + 8 <= count; i += 8) {
    // Two records per 256-bit load half: v_k holds records i+k (low lane)
    // and i+k+4 (high lane); three unpack rounds transpose the group into
    // one lane vector per PacketHot field, lane j <-> record i+j.
    const __m256i v0 = _mm256_set_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 4])),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 0])));
    const __m256i v1 = _mm256_set_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 5])),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 1])));
    const __m256i v2 = _mm256_set_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 6])),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 2])));
    const __m256i v3 = _mm256_set_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 7])),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 3])));
    const __m256i lo01 = _mm256_unpacklo_epi32(v0, v1);  // dst dst hop hop
    const __m256i hi01 = _mm256_unpackhi_epi32(v0, v1);  // pl pl fl fl
    const __m256i lo23 = _mm256_unpacklo_epi32(v2, v3);
    const __m256i hi23 = _mm256_unpackhi_epi32(v2, v3);
    const __m256i dstv = _mm256_unpacklo_epi64(lo01, lo23);
    const __m256i hopsv = _mm256_unpackhi_epi64(lo01, lo23);
    const __m256i plv = _mm256_unpacklo_epi64(hi01, hi23);
    const __m256i flv = _mm256_unpackhi_epi64(hi01, hi23);
    const __m256i uv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(nodes + i));

    const auto not_positional = static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(_mm256_and_si256(flv, vpos), zero))));
    const auto at_dst = static_cast<std::uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(uv, dstv))));
    const auto plan_done = static_cast<std::uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(hopsv, plv))));
    const std::uint32_t arrived =
        (at_dst & ~not_positional) | (plan_done & not_positional);

    const auto steer_only = static_cast<std::uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(
            _mm256_and_si256(flv, vsel), vsteer))));
    const auto under = static_cast<std::uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(
            vlimit, _mm256_xor_si256(hopsv, bias)))));
    // Clean bits: shift the shared 64-bit window right by each lane's
    // node offset (widened to 64-bit lanes for the variable shift).
    const __m256i off = _mm256_sub_epi32(uv, basev);
    const __m256i off_lo =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(off));
    const __m256i off_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(off, 1));
    const auto clean_lo = static_cast<std::uint32_t>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_srlv_epi64(cleanv, off_lo), one64),
            one64))));
    const auto clean_hi = static_cast<std::uint32_t>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_srlv_epi64(cleanv, off_hi), one64),
            one64))));
    const std::uint32_t clean_ok = clean_lo | (clean_hi << 4);

    const std::uint32_t fast = steer_only & under & clean_ok & ~arrived;
    m.arrived |= static_cast<std::uint64_t>(arrived) << i;
    m.fast |= static_cast<std::uint64_t>(fast) << i;
  }
  if (i < count) {
    const ClassifyMasks tail = classify_scalar(count - i, hot + i, nodes + i,
                                               base, clean, hop_limit);
    m.arrived |= tail.arrived << i;
    m.fast |= tail.fast << i;
  }
  return m;
}

// ---- SSE4.2: 4 records per group ------------------------------------------

__attribute__((target("sse4.2"))) ClassifyMasks classify_sse(
    unsigned count, const PacketHot* const* hot, const NodeId* nodes,
    NodeId base, std::uint64_t clean, std::uint32_t hop_limit) noexcept {
  ClassifyMasks m;
  const __m128i zero = _mm_setzero_si128();
  const __m128i vpos = _mm_set1_epi32(static_cast<int>(kPositional));
  const __m128i vsel = _mm_set1_epi32(static_cast<int>(kFastSelect));
  const __m128i vsteer = _mm_set1_epi32(static_cast<int>(kPktSteered));
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vlimit =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(hop_limit)), bias);
  unsigned i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i r0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 0]));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 1]));
    const __m128i r2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 2]));
    const __m128i r3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hot[i + 3]));
    const __m128i lo01 = _mm_unpacklo_epi32(r0, r1);
    const __m128i hi01 = _mm_unpackhi_epi32(r0, r1);
    const __m128i lo23 = _mm_unpacklo_epi32(r2, r3);
    const __m128i hi23 = _mm_unpackhi_epi32(r2, r3);
    const __m128i dstv = _mm_unpacklo_epi64(lo01, lo23);
    const __m128i hopsv = _mm_unpackhi_epi64(lo01, lo23);
    const __m128i plv = _mm_unpacklo_epi64(hi01, hi23);
    const __m128i flv = _mm_unpackhi_epi64(hi01, hi23);
    const __m128i uv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));

    const auto not_positional =
        static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(
            _mm_cmpeq_epi32(_mm_and_si128(flv, vpos), zero))));
    const auto at_dst = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(uv, dstv))));
    const auto plan_done = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hopsv, plv))));
    const std::uint32_t arrived =
        (at_dst & ~not_positional) | (plan_done & not_positional);

    const auto steer_only = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(
            _mm_cmpeq_epi32(_mm_and_si128(flv, vsel), vsteer))));
    const auto under = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(
            _mm_cmpgt_epi32(vlimit, _mm_xor_si128(hopsv, bias)))));
    // No per-lane variable shifts below AVX2: the 4 clean bits come from
    // scalar window reads.
    std::uint32_t clean_ok = 0;
    for (unsigned j = 0; j < 4; ++j) {
      clean_ok |= static_cast<std::uint32_t>(
                      (clean >> (nodes[i + j] - base)) & 1)
                  << j;
    }

    const std::uint32_t fast = steer_only & under & clean_ok & ~arrived;
    m.arrived |= static_cast<std::uint64_t>(arrived) << i;
    m.fast |= static_cast<std::uint64_t>(fast) << i;
  }
  if (i < count) {
    const ClassifyMasks tail = classify_scalar(count - i, hot + i, nodes + i,
                                               base, clean, hop_limit);
    m.arrived |= tail.arrived << i;
    m.fast |= tail.fast << i;
  }
  return m;
}

#endif  // __x86_64__

}  // namespace

ClassifyMasks classify_front_packets(SimdLevel level, unsigned count,
                                     const PacketHot* const* hot,
                                     const NodeId* nodes, NodeId base,
                                     std::uint64_t clean,
                                     std::uint32_t hop_limit) noexcept {
#if defined(__x86_64__)
  if (level >= SimdLevel::kAvx2) {
    return classify_avx2(count, hot, nodes, base, clean, hop_limit);
  }
  if (level >= SimdLevel::kSse) {
    return classify_sse(count, hot, nodes, base, clean, hop_limit);
  }
#else
  (void)level;
#endif
  return classify_scalar(count, hot, nodes, base, clean, hop_limit);
}

}  // namespace gcube
