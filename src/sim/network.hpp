// Cycle-driven network simulator (paper §6 substrate).
//
// Model, matching the paper's stated assumptions:
//  * store-and-forward, unit link bandwidth: each directed link carries at
//    most one packet per cycle;
//  * eager readership: each node can serve several packets per cycle
//    (service_rate > expected arrivals), so service outpaces arrival;
//  * source routing: a packet carries its dimension sequence, planned by
//    the Router at injection;
//  * FIFO input queue per node with head-of-line blocking on a busy link;
//  * faulty nodes neither inject nor forward, and routes avoid them.
//
// Fault dynamics. In the default static mode the fault set is frozen
// before cycle 0 and routes are valid for the whole run. Dynamic-fault
// mode (the FaultSchedule constructors) models the paper's actual
// operating regime — faults that appear while packets are in flight: the
// schedule mutates the live FaultSet as the clock advances, every hop is
// verified usable at traversal time, and a packet whose precomputed next
// link just died re-plans from its current node via Router::next_hop
// (counted in SimMetrics::reroutes; packets with no usable continuation
// are dropped_no_route, packets over the livelock guard are
// dropped_hop_limit, packets queued at a dying node are
// orphaned_by_node_fault). Schedules may also contain *repair* events —
// transient faults that heal — which invalidate the routers' plan caches
// and the fault overlay exactly like failures do. With an empty schedule
// dynamic mode is bit-for-bit identical to static mode.
//
// Transient-fault recovery (off by default; SimConfig::retry_limit /
// retry_budget). Instead of hard-dropping a packet with no usable
// continuation, the simulator parks it in a bounded per-node retry queue
// and re-offers it after a deterministic exponential backoff
// (retry_backoff_base << attempt cycles); a packet that exhausts its
// attempts may consume one of retry_budget end-to-end retransmits — it is
// relaunched from its source after retransmit_timeout cycles — and only
// then counts as gave_up. Parking, waking, and retransmission all happen
// at the serial points in canonical node order, so the determinism
// contract below is unaffected. With both knobs at 0 the legacy
// hard-drop behavior is reproduced bit for bit.
//
// Execution model: node-sharded parallelism with a determinism contract.
// Nodes are partitioned into S contiguous shards, one per worker of a
// persistent ShardPool (S = SimConfig::threads, or a ThreadBudget grant
// when 0). The ENTIRE cycle loop is one dispatched pool job: every worker
// runs the loop locally and meets the others only at the barriers inside
// it, so a cycle costs rendezvous, not dispatch/join handshakes. Each
// cycle has two phases per worker:
//
//   phase A (inject): each worker reclaims packet slots other shards
//     released from its pool, batch-drains last cycle's arrival mailboxes
//     into its own queues (source-shard order, which equals global
//     source-node order because shards are contiguous and ascending),
//     injects new packets, and publishes its nodes' committed occupancy;
//   phase B (forward): each worker serves its own queues. Every directed
//     link is owned by its source node's shard, so link reservation
//     stamps are written race-free; finite-buffer backpressure reads the
//     phase-A occupancy snapshot; departures are handed to the
//     destination shard through per-(source shard, destination shard)
//     mailbox rings.
//
// Mailbox and release rings are parity double-buffered (phase B of cycle
// N fills buffer N & 1, phase A of cycle N drains buffer ~N & 1) and the
// packet pools use chunked, pointer-stable storage, so one shard's phase
// A can overlap another's phase B with no data race. With unbounded
// buffers a cycle therefore needs exactly ONE rendezvous — the
// end-of-cycle barrier, whose last arriver runs the serial commit
// (ShardPool::barrier_serial) before opening the gate. Finite-buffer runs
// add one mid-cycle barrier so backpressure reads a consistent phase-A
// occupancy snapshot.
//
// Fault-schedule application, fault-overlay refresh, and global
// accounting (in-flight depth, stall detection) happen in that fused
// serial commit. Every per-node decision therefore depends only on
// start-of-cycle committed state, per-(node, cycle) counter RNG draws
// (util/rng.hpp), and canonical queue order — so for a fixed seed, the
// full SimMetrics (latency histogram included) are bit-identical for ANY
// thread count, including 1. That contract is enforced by the determinism
// test and lets the threads knob be a pure wall-clock choice.
//
// Hot-path machinery (both on by default, SimConfig toggles):
//
//  * Next-hop fabric steering (SimConfig::fabric, effective when the
//    router exposes a supported NextHopFabric): packets are injected with
//    NO precomputed plan. At service time, a node the FaultOverlay calls
//    clean takes the fabric's O(1) table hop with no per-link checks at
//    all (the overlay guarantees every link there is usable); a node
//    within distance 1 of a fault adopts the router's full plan from that
//    point and follows it with per-hop usability checks, re-adopting
//    (SimMetrics::reroutes) if a later fault invalidates it. This removes
//    the per-injection plan-cache lookup + shared_ptr traffic and the
//    per-hop virtual topology/fault-hash queries from the fault-free
//    common case. The overlay is refreshed at the serial points, so
//    dynamic fault schedules work unchanged.
//  * Active-set cycle loop (SimConfig::active_set): each shard keeps a
//    bitmap of nodes holding or receiving packets plus a timing wheel of
//    pending injection fire times drawn from TrafficModel::injection_gap,
//    so a cycle costs O(active nodes + handoffs + due injections) instead
//    of O(all nodes). Draws stay pure per-(node, cycle) functions and the
//    bitmap scan is ascending, preserving the determinism contract; the
//    gap-scheduled injection realization differs from the per-cycle
//    Bernoulli scan (same distribution, different draw-stream layout), so
//    metrics are comparable but not bit-equal across the toggle itself.
//  * Batched advance (SimConfig::batch, rides on the active set): phase B
//    consumes the active bitmap a word at a time. Each 64-node window is
//    harvested with its front packets' 16-byte hot records prefetched,
//    classified (arrived / steered fast path / everything else), fed to
//    NextHopFabric::fault_free_hops as one tight lookup batch with the
//    clean-node test answered from a single FaultOverlay::clean_window
//    word — and then APPLIED strictly in ascending node order, because
//    outbox push order is the canonical order the determinism contract
//    rests on. Within phase B node services are mutually independent
//    (per-(node, dim) link stamps; every handoff — intra-shard included —
//    travels through the parity mailboxes), so the read-only
//    harvest/classify passes commute with the applies and the batched
//    loop is BIT-IDENTICAL to the scalar scan for any thread count.
//
// Two deliberate semantic refinements versus the old serial-only core,
// both required for order-independence (and covered by the contract):
// finite-buffer backpressure compares against occupancy committed at the
// start of the cycle, so a node draining k arrivals in one cycle may
// overshoot buffer_limit by its in-degree for that cycle (the bound is
// enforced again next cycle); and peak_in_flight is accounted per cycle
// (in-flight depth after all injections) instead of per injection event —
// the same maximum, measured at cycle granularity and only during the
// measurement window.
#pragma once

#include <array>
#include <atomic>
#include <exception>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/overlay.hpp"
#include "sim/checkpoint.hpp"
#include "routing/next_hop_table.hpp"
#include "routing/router.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "sim/shard_pool.hpp"
#include "sim/traffic.hpp"
#include "topology/topology.hpp"
#include "util/bitmap.hpp"
#include "util/rng.hpp"

namespace gcube {

struct SimConfig {
  double injection_rate = 0.02;  // packets per node per cycle
  Cycle warmup_cycles = 300;
  Cycle measure_cycles = 2000;
  std::uint32_t service_rate = 4;  // packets a node may handle per cycle
  std::uint64_t seed = 42;
  /// Per-node input buffer capacity; 0 = unbounded (the paper's eager-
  /// readership model). With finite buffers a packet only moves when the
  /// downstream node has space (backpressure), injection is blocked at a
  /// full source, and sustained global stalls are reported as deadlock —
  /// the regime where channel-dependency cycles (routing/deadlock.hpp)
  /// become observable.
  std::uint32_t buffer_limit = 0;
  /// Dynamic-fault mode livelock guard: an adaptively re-routed packet
  /// that has taken this many hops is dropped (stepwise re-plans are not
  /// guaranteed monotone under faults). 0 = auto (16 * dims + 64).
  std::uint32_t reroute_hop_limit = 0;
  /// Transient-fault recovery: how many times a stranded packet (no usable
  /// continuation at its current node) is parked for a backoff retry
  /// before it must retransmit or give up. Retry k waits
  /// retry_backoff_base << k cycles. 0 = legacy hard drop (bit-for-bit).
  /// Capped at 32 so the backoff shift stays in range.
  std::uint32_t retry_limit = 0;
  /// First retry delay in cycles (doubling per attempt). Must be >= 1.
  Cycle retry_backoff_base = 2;
  /// Per-node bound on concurrently parked retries; a stranding that finds
  /// its node's park full falls through to retransmit/give-up.
  std::uint32_t park_capacity = 8;
  /// End-to-end recovery: how many times a packet that exhausted its
  /// retries (or its park) is relaunched from its source with a fresh
  /// route. 0 = no retransmits.
  std::uint32_t retry_budget = 0;
  /// Cycles between a retransmit decision and the relaunch at the source.
  Cycle retransmit_timeout = 64;
  /// Worker threads for the sharded cycle loop. 0 = auto: the calling
  /// thread plus whatever the process-wide ThreadBudget grants, so nested
  /// sweeps never oversubscribe. N >= 1 = exactly N workers; counts above
  /// hardware_concurrency() are clamped to it (with a one-time stderr
  /// note) unless allow_oversubscribe is set. Metrics are bit-identical
  /// for any value at a fixed seed.
  std::uint32_t threads = 0;
  /// Honor a threads value above hardware_concurrency() literally instead
  /// of clamping. Oversubscription only slows the simulation down, but the
  /// determinism and TSan tests need it to run genuinely multithreaded on
  /// small machines.
  bool allow_oversubscribe = false;
  /// Table-driven next-hop steering (see the header comment). Effective
  /// only when the router exposes a supported NextHopFabric; otherwise the
  /// plan-at-injection path is used regardless.
  bool fabric = true;
  /// Active-set cycle loop + gap-scheduled injection (see the header
  /// comment). Off = the full per-node scan with per-cycle Bernoulli
  /// injection draws (bit-compatible with earlier versions).
  bool active_set = true;
  /// Batched phase-B advance (effective only with active_set): each active
  /// bitmap word is harvested into a 64-node batch whose front-packet hot
  /// records are prefetched, arrival/fast-path classified, fabric table
  /// hops looked up in one tight loop, and clean-node checks answered from
  /// one 64-bit overlay window — then applied in ascending node order, so
  /// metrics are BIT-IDENTICAL to the scalar scan (unlike the active_set
  /// toggle, which changes injection draw-stream layout). Off = scalar
  /// per-node scan; also forced off by the GCUBE_SIM_NO_BATCH environment
  /// variable (the `sim_cli --no-batch` / CI equivalence escape hatch).
  bool batch = true;
  /// Accumulate per-phase wall-clock attribution into
  /// SimMetrics::phase_*_ns (bench instrumentation; adds steady_clock
  /// reads to the cycle loop, so timed runs leave it off).
  bool phase_timing = false;
  /// Periodic checkpointing: at the serial point ENTERING every cycle
  /// divisible by this, the full run state is saved to checkpoint_path
  /// (see sim/checkpoint.hpp for the format and guarantees). 0 = periodic
  /// checkpoints off; a halt-time checkpoint is still written when
  /// checkpoint_path is set.
  Cycle checkpoint_every = 0;
  /// Checkpoint file path; empty = checkpointing off entirely. Writes are
  /// atomic (tmp + rename) with a two-generation rotation ("<path>.1").
  std::string checkpoint_path;
  /// Resume from this checkpoint file instead of starting at cycle 0
  /// (falling back to its previous generation when it is corrupt or
  /// truncated). The semantic configuration must match the checkpoint's
  /// recorded parameters — threads / SIMD / batch may differ freely — or
  /// run() throws a CheckpointError naming the mismatched field.
  std::string resume_from;
  /// Crash-fault injection: hard std::_Exit(137) — no unwinding, no
  /// cleanup, as a kill -9 would land — at the serial point entering this
  /// cycle, AFTER any checkpoint due at that same point has been made
  /// durable. 0 = off. The GCUBE_CRASH_AT_CYCLE environment variable
  /// overrides this value.
  Cycle crash_at_cycle = 0;
  /// Graceful halt: when non-null and the pointee is true at a serial
  /// point, the run stops there — writing a final checkpoint first when
  /// checkpoint_path is set — and returns partial metrics with
  /// SimMetrics::interrupted_at recording the resume cycle. The pointee
  /// is typically flipped from a signal handler (sim_cli's SIGINT/
  /// SIGTERM path); atomic, so no handshake with the workers is needed.
  const std::atomic<bool>* stop_requested = nullptr;
  /// Deterministic graceful halt at the serial point entering this cycle
  /// — exactly the path a stop request takes, at a reproducible point.
  /// Test knob for checkpoint round-trips. 0 = off.
  Cycle halt_at_cycle = 0;
};

class NetworkSim {
 public:
  /// All references must outlive the simulator. The default-constructed
  /// form uses the paper's uniform random traffic at
  /// config.injection_rate; pass a TrafficModel to change the workload.
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config);
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config,
             const TrafficModel& traffic);

  /// Dynamic-fault mode: `faults` is mutated in place as `schedule` events
  /// fall due, so it must be the same object the router (and any traffic
  /// model) consults. Events are validated against the topology.
  NetworkSim(const Topology& topo, const Router& router, FaultSet& faults,
             const SimConfig& config, const FaultSchedule& schedule);
  NetworkSim(const Topology& topo, const Router& router, FaultSet& faults,
             const SimConfig& config, const TrafficModel& traffic,
             const FaultSchedule& schedule);

  /// Runs warmup + measurement and returns the measurement-window metrics.
  /// Simulation state is rebuilt from scratch on every call.
  [[nodiscard]] SimMetrics run();

 private:
  /// A packet in transit to another shard's node, parked in a mailbox
  /// until the destination shard drains it at the next phase A.
  struct Arrival {
    NodeId node = 0;
    PacketRef ref = 0;
  };

  /// Everything one worker owns, cache-line-aligned so two workers'
  /// accumulators never share a line. Workers touch only their own shard
  /// during a phase, except for the cross-shard reads the phase structure
  /// makes safe (mailbox drains and packet dereferences in the phase that
  /// cannot race them).
  struct alignas(64) Shard {
    NodeId begin = 0;  // nodes [begin, end) — contiguous, ascending
    NodeId end = 0;
    PacketPool pool;         // grown/released by the owner thread only
    SimMetrics metrics;      // per-shard partial, absorbed after the run
    /// Cross-shard handoffs, one ring per destination shard, parity
    /// double-buffered: phase B of cycle N fills [N & 1], phase A of
    /// cycle N drains [~N & 1] — so one shard's phase A never touches the
    /// ring another shard's phase B is filling.
    std::array<std::vector<Ring<Arrival>>, 2> outbox;
    /// Foreign packet slots freed in phase B, rings addressed by the
    /// slot's home shard and drained by that shard's next phase A into
    /// its own pool (same parity scheme as outbox).
    std::array<std::vector<Ring<PacketRef>>, 2> released;
    /// Active-set mode: bit (u - begin) set iff node u may hold packets.
    /// Set on every queue push (mailbox drain, injection admit); cleared
    /// once the queue is empty — by phase B itself with unbounded buffers,
    /// by the phase-A maintenance scan (which must also publish occupancy)
    /// with finite ones. A non-empty queue always has its bit set.
    NodeBitmap active;
    /// Pending injection fire times: a timing wheel of kWheelSize cycle
    /// buckets (O(1) schedule/drain; unambiguous because every wheel entry
    /// lies within kWheelSize cycles of now) with a far heap for the rare
    /// fire scheduled further out, keyed (cycle << kFireNodeBits) | node.
    /// At most one entry per node across both (a node reschedules only
    /// when its fire is consumed); each cycle's due nodes are fired in
    /// ascending node order — the canonical injection order.
    std::vector<std::vector<NodeId>> wheel;
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        far_fires;
    /// Active-set mode: byte (u - begin) set iff node u has a pending
    /// injection fire in the wheel or far heap. Lets a repair event re-arm
    /// a node whose fire was consumed while it was ineligible without ever
    /// double-scheduling one.
    std::vector<std::uint8_t> armed;
    /// Recovery mode: packets that found no usable continuation this
    /// cycle, in service order (= ascending node order). Drained at the
    /// serial commit into the park / retransmit / give-up decision.
    Ring<Arrival> stranded;
    std::uint64_t injected = 0;  // this cycle
    std::uint64_t removed = 0;   // delivered + dropped this cycle
    bool moved = false;          // any service progress this cycle
    std::exception_ptr error;    // first phase failure, rethrown serially
  };

  /// The single delegation target of every public constructor; `traffic`
  /// may be null (the built-in uniform model is used).
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config,
             const TrafficModel* traffic);

  /// Validates the schedule (in-range, sorted by cycle) and switches the
  /// simulator to dynamic-fault mode.
  void attach_schedule(FaultSet& faults, const FaultSchedule& schedule);

  /// Resolves the worker count and (re)builds all run state: shards with
  /// balanced contiguous node ranges, empty queues, cleared link stamps.
  void configure_shards(unsigned shard_count);
  [[nodiscard]] unsigned shard_of(NodeId u) const noexcept;
  [[nodiscard]] PacketHot& hot_of(PacketRef ref) noexcept {
    return shards_[packet_ref_shard(ref)].pool.hot(packet_ref_slot(ref));
  }
  [[nodiscard]] PacketCold& cold_of(PacketRef ref) noexcept {
    return shards_[packet_ref_shard(ref)].pool.cold(packet_ref_slot(ref));
  }
  /// Frees a packet slot from worker w's phase B of the cycle with parity
  /// `parity`: directly when w owns the slot's pool, via the released
  /// ring (drained by the home shard's next phase A) when it does not.
  void release_ref(unsigned w, PacketRef ref, unsigned parity);

  /// Applies every schedule event due at `now` (serial point), orphans
  /// packets queued at — or in a mailbox toward — nodes that just died,
  /// re-arms injection at repaired nodes, and refreshes the fault overlay.
  void apply_fault_events(Cycle now, bool measuring);
  /// Serial point: re-offers every parked packet whose wake time is due —
  /// retries resume at their strand node, retransmits relaunch from the
  /// source — in deterministic (wake cycle, park order) order. Runs after
  /// apply_fault_events so same-cycle repairs are visible to the retry.
  void wake_parked(Cycle now, bool measuring);
  /// Serial point: drains the shards' stranded rings (ascending shard =
  /// ascending node order) into parked retries, retransmits, or give-ups.
  /// Adds packets permanently removed here to `gave_up_removed`.
  void commit_stranded(Cycle now, bool measuring,
                       std::uint64_t& gave_up_removed);
  /// Active-set mode: files a fresh injection fire for a just-repaired
  /// node whose previous fire was consumed while it was faulty.
  void rearm_injection(NodeId u, Cycle now);
  /// Phase A: drain arrival mailboxes, inject, publish occupancy.
  void phase_inject(unsigned w, Cycle now, bool measuring);
  /// Phase B: serve queues, forward/deliver/drop, fill mailboxes.
  void phase_forward(unsigned w, Cycle now, bool measuring);
  /// Injects one packet u -> dst (offered-load + buffer accounting
  /// included); shared by the Bernoulli scan and the gap-scheduled path.
  void admit_packet(unsigned w, NodeId u, NodeId dst, Cycle now,
                    bool measuring);
  /// Consumes a due injection fire at u: draws the destination, admits the
  /// packet, and reschedules from the gap distribution. `key` is
  /// counter_key(seed, u, now) — precomputed so the fire bucket can batch
  /// the keying in SIMD lanes.
  void fire_injection(unsigned w, NodeId u, Cycle now, std::uint64_t key,
                      bool measuring);
  /// First-packet hints precomputed by the batched pass for serve_node:
  /// either "already at its destination", or the usable fabric hop the
  /// batch lookup produced (any value below kHintArrived — dimensions are
  /// < kMaxDimension), or "no precomputation, take the full path".
  static constexpr std::uint32_t kHintNone = 0xFFFFFFFFu;
  static constexpr std::uint32_t kHintArrived = 0xFFFFFFFEu;

  /// Serves node u's queue for one cycle (the per-node body of phase B).
  /// `clean` is the hoisted steering precondition for u (steer_ && no
  /// fault within distance 1); `hint` applies to the FRONT packet only.
  void serve_node(unsigned w, NodeId u, Cycle now, bool measuring,
                  bool& moved, bool clean, std::uint32_t hint);
  /// Batched phase-B advance over one active-bitmap word (see
  /// SimConfig::batch): harvest + prefetch, classify, batched fabric
  /// lookups, then apply via serve_node in ascending node order.
  void serve_word(unsigned w, std::size_t word_index, Cycle now,
                  bool measuring, bool& moved, bool retire);
  /// Releases every packet queued at or in transit to `u` (serial point).
  std::size_t discard_packets_at(NodeId u);

  /// Node index width inside a far-fire key; node_count <= 2^kMaxDimension
  /// by construction, leaving 64 - kFireNodeBits bits of cycle headroom.
  static constexpr unsigned kFireNodeBits = kMaxDimension;
  static constexpr std::uint64_t kFireNodeMask =
      (std::uint64_t{1} << kFireNodeBits) - 1;
  /// Timing-wheel span: covers the mean gap up to injection rates around
  /// 1/kWheelSize; rarer-firing nodes overflow to the far heap.
  static constexpr std::uint64_t kWheelBits = 13;
  static constexpr std::uint64_t kWheelSize = std::uint64_t{1} << kWheelBits;

  /// Files a pending injection for node u at cycle `at` (> now except at
  /// pre-run seeding, where `at` may equal cycle 0).
  void schedule_fire(Shard& sh, Cycle now, Cycle at, NodeId u);

  /// Captures the full run state at the serial point entering cycle
  /// `next`, in canonical shard-count-independent form: per-node
  /// effective queues (queue contents + pending mailbox arrivals in
  /// phase-A drain order), parked entries in wake order, pending fires as
  /// absolute (cycle, node), link stamps, fault state, and the folded
  /// metrics. See sim/checkpoint.hpp.
  [[nodiscard]] SimCheckpoint capture_checkpoint(Cycle next);
  /// Rebuilds run state from a loaded checkpoint (must run after
  /// configure_shards, before the overlay refresh and the cycle loop).
  /// Throws CheckpointError naming the failing section on any config
  /// mismatch or structural inconsistency.
  void apply_checkpoint(const SimCheckpoint& ck);
  /// Serializes / rematerializes one packet. `w` is the pool shard the
  /// restored slot is acquired from (serial-point call, so touching any
  /// pool is safe); `section` names the checkpoint section for errors.
  [[nodiscard]] CheckpointPacket capture_packet(PacketRef ref);
  [[nodiscard]] PacketRef restore_packet(unsigned w,
                                         const CheckpointPacket& p,
                                         const char* section);

  /// The fused per-cycle serial section, run by the LAST worker arriving
  /// at the end-of-cycle barrier (ShardPool::barrier_serial): collects
  /// shard errors, folds per-cycle counters into the global accounting,
  /// commits stranded packets, detects stalls/deadlock, and performs the
  /// next cycle's pre-work (fault events, parked wakes) — or sets
  /// stop_run_ when the run is over. Must not throw; failures land in
  /// serial_error_.
  void serial_commit(Cycle now) noexcept;
  /// Pre-work for cycle `now`: measurement-window cache-stat scoping,
  /// fault-schedule application, parked-retry wakes.
  void cycle_prework(Cycle now);

  const Topology& topo_;
  const Router& router_;
  const FaultSet& faults_;
  SimConfig config_;
  UniformTraffic default_traffic_;   // used when no model is supplied
  const TrafficModel& traffic_;
  /// Dense link-usability masks; refreshed at serial points, read by all
  /// workers. Backs every usability check (legacy paths included — its
  /// answer is pure-function-equal to topo.has_link && faults.link_usable).
  FaultOverlay overlay_;
  /// The router's table fabric when present AND supported; null otherwise.
  const NextHopFabric* fabric_ = nullptr;
  bool steer_ = false;       // config_.fabric && fabric_ != nullptr
  bool active_set_ = false;  // config_.active_set
  /// config_.batch && active_set_, unless GCUBE_SIM_NO_BATCH is set in the
  /// environment (CI equivalence runs force the scalar scan process-wide).
  bool batch_ = false;
  bool timing_ = false;      // config_.phase_timing
  /// Dispatch level for the vector kernels (classify, fabric batch lookup,
  /// counter-RNG batches), snapshotted from simd_level() at construction
  /// so the hot loops take a plain branch instead of an atomic load. All
  /// levels produce bit-identical metrics (GCUBE_SIMD / --simd / the
  /// determinism sweep select between them).
  SimdLevel simd_ = SimdLevel::kScalar;
  /// True while the fault set is empty; refreshed at the serial points.
  /// Lets steering skip the per-node overlay loads entirely on fault-free
  /// runs (every node is trivially clean).
  bool no_faults_ = false;
  Cycle total_cycles_ = 0;   // warmup + measure, for fire scheduling
  std::vector<Shard> shards_;
  std::vector<Ring<PacketRef>> queues_;  // per-node FIFO, owner-shard only
  /// Directed link stamps, owner-shard only. 32-bit on purpose: stamps are
  /// compared for equality against (now + 1) mod 2^32 and cleared at every
  /// run() start, so they alias only past 2^32 cycles in ONE run — far
  /// beyond any simulated window — and halving the array keeps more of the
  /// per-hop working set in cache.
  std::vector<std::uint32_t> link_busy_;
  std::vector<std::uint32_t> occ_;  // phase-A occupancy snapshot
  SimMetrics metrics_;  // serial/global fields; shard partials absorbed in
  std::uint64_t in_flight_ = 0;
  // Transient-fault recovery state (all serial-point only). The multimap
  // preserves insertion order among equal wake cycles, so processing is
  // deterministic; parked packets stay counted in in_flight_.
  bool retries_ = false;  // retry_limit > 0 || retry_budget > 0
  struct Parked {
    NodeId node = 0;     // where the packet resumes (strand node or src)
    PacketRef ref = 0;
    bool respawn = false;  // end-to-end retransmit: reset route state
  };
  std::multimap<Cycle, Parked> parked_;
  std::vector<std::uint16_t> parked_count_;  // per-node local-park depth
  std::uint64_t parked_now_ = 0;  // all parked entries (stall exemption)
  ShardPool* pool_ = nullptr;        // valid while run() is on the stack
  // Fused-loop control, written only in the serial section (or before the
  // dispatch) and read by workers after the barrier edge.
  bool ab_barrier_ = false;   // phase A->B barrier needed (finite buffers)
  bool stop_run_ = false;     // set when the loop must end after this cycle
  std::exception_ptr serial_error_;  // first failure, rethrown after join
  Cycle consecutive_stalls_ = 0;
  /// Crash-injection cycle, resolved at run() start from
  /// config_.crash_at_cycle and the GCUBE_CRASH_AT_CYCLE environment
  /// override. 0 = no crash.
  Cycle crash_at_ = 0;
  RouterCacheStats cache_base_{};
  bool cache_base_set_ = false;
  // Node-range split: the first range_rem_ shards own range_base_ + 1
  // nodes, the rest range_base_ (contiguous ascending).
  NodeId range_base_ = 0;
  NodeId range_rem_ = 0;
  // Dynamic-fault mode state (live_faults_ == nullptr in static mode).
  FaultSet* live_faults_ = nullptr;
  std::vector<FaultEvent> schedule_events_;  // sorted by cycle
  std::size_t next_event_ = 0;
  std::uint32_t hop_limit_ = 0;
  // Topology geometry, cached out of the per-hop path (the Topology
  // accessors are virtual).
  Dim dims_ = 0;
  std::uint64_t node_count_ = 0;
};

}  // namespace gcube
