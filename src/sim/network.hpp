// Cycle-driven network simulator (paper §6 substrate).
//
// Model, matching the paper's stated assumptions:
//  * store-and-forward, unit link bandwidth: each directed link carries at
//    most one packet per cycle;
//  * eager readership: each node can serve several packets per cycle
//    (service_rate > expected arrivals), so service outpaces arrival;
//  * source routing: a packet carries its dimension sequence, planned by
//    the Router at injection;
//  * FIFO input queue per node with head-of-line blocking on a busy link;
//  * faulty nodes neither inject nor forward, and routes avoid them.
//
// Fault dynamics. In the default static mode the fault set is frozen
// before cycle 0 and routes are valid for the whole run. Dynamic-fault
// mode (the FaultSchedule constructors) models the paper's actual
// operating regime — faults that appear while packets are in flight: the
// schedule mutates the live FaultSet as the clock advances, every hop is
// verified usable at traversal time, and a packet whose precomputed next
// link just died re-plans from its current node via Router::next_hop
// (counted in SimMetrics::reroutes; packets with no usable continuation
// are dropped_en_route, packets queued at a dying node are
// orphaned_by_node_fault). With an empty schedule dynamic mode is
// bit-for-bit identical to static mode.
//
// Determinism: one seeded RNG drives injection and destination choice;
// nodes are processed in ascending order; identical seeds give identical
// metrics.
#pragma once

#include <vector>

#include "fault/fault_set.hpp"
#include "routing/router.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "sim/traffic.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace gcube {

struct SimConfig {
  double injection_rate = 0.02;  // packets per node per cycle
  Cycle warmup_cycles = 300;
  Cycle measure_cycles = 2000;
  std::uint32_t service_rate = 4;  // packets a node may handle per cycle
  std::uint64_t seed = 42;
  /// Per-node input buffer capacity; 0 = unbounded (the paper's eager-
  /// readership model). With finite buffers a packet only moves when the
  /// downstream node has space (backpressure), injection is blocked at a
  /// full source, and sustained global stalls are reported as deadlock —
  /// the regime where channel-dependency cycles (routing/deadlock.hpp)
  /// become observable.
  std::uint32_t buffer_limit = 0;
  /// Dynamic-fault mode livelock guard: an adaptively re-routed packet
  /// that has taken this many hops is dropped (stepwise re-plans are not
  /// guaranteed monotone under faults). 0 = auto (16 * dims + 64).
  std::uint32_t reroute_hop_limit = 0;
};

class NetworkSim {
 public:
  /// All references must outlive the simulator. The default-constructed
  /// form uses the paper's uniform random traffic at
  /// config.injection_rate; pass a TrafficModel to change the workload.
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config);
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config,
             const TrafficModel& traffic);

  /// Dynamic-fault mode: `faults` is mutated in place as `schedule` events
  /// fall due, so it must be the same object the router (and any traffic
  /// model) consults. Events are validated against the topology.
  NetworkSim(const Topology& topo, const Router& router, FaultSet& faults,
             const SimConfig& config, const FaultSchedule& schedule);
  NetworkSim(const Topology& topo, const Router& router, FaultSet& faults,
             const SimConfig& config, const TrafficModel& traffic,
             const FaultSchedule& schedule);

  /// Runs warmup + measurement and returns the measurement-window metrics.
  [[nodiscard]] SimMetrics run();

 private:
  /// The single delegation target of every public constructor; `traffic`
  /// may be null (the built-in uniform model is used).
  NetworkSim(const Topology& topo, const Router& router,
             const FaultSet& faults, const SimConfig& config,
             const TrafficModel* traffic);

  /// Validates the schedule (in-range, sorted by cycle) and switches the
  /// simulator to dynamic-fault mode.
  void attach_schedule(FaultSet& faults, const FaultSchedule& schedule);
  /// Applies every schedule event due at `now` and orphans packets queued
  /// at nodes that just died.
  void apply_fault_events(Cycle now, bool measuring);
  void inject(Cycle now, bool measuring);
  /// Returns true iff any packet moved, was delivered, or was dropped this
  /// cycle.
  bool forward(Cycle now, bool measuring);
  [[nodiscard]] std::size_t occupancy(NodeId u) const {
    return queues_[u].size() + staged_[u].size();
  }
  /// Releases every packet queued or staged at `u` back to the pool.
  std::size_t discard_packets_at(NodeId u);

  const Topology& topo_;
  const Router& router_;
  const FaultSet& faults_;
  SimConfig config_;
  UniformTraffic default_traffic_;   // used when no model is supplied
  const TrafficModel& traffic_;
  Xoshiro256 rng_;
  PacketPool pool_;
  std::vector<IndexRing> queues_;  // per-node FIFO of pool indices
  std::vector<IndexRing> staged_;  // arrivals visible next cycle
  std::vector<Cycle> link_busy_;  // directed link reservation stamps
  SimMetrics metrics_;
  std::uint64_t next_packet_id_ = 0;
  std::uint64_t in_flight_ = 0;
  // Dynamic-fault mode state (live_faults_ == nullptr in static mode).
  FaultSet* live_faults_ = nullptr;
  std::vector<FaultEvent> schedule_events_;  // sorted by cycle
  std::size_t next_event_ = 0;
  std::uint32_t hop_limit_ = 0;
};

}  // namespace gcube
