#include "sim/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gcube {

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel* traffic)
    : topo_(topo),
      router_(router),
      faults_(faults),
      config_(config),
      default_traffic_(topo.node_count(), config.injection_rate, faults,
                       config.seed),
      traffic_(traffic != nullptr ? *traffic : default_traffic_),
      rng_(config.seed),
      queues_(topo.node_count()),
      staged_(topo.node_count()),
      link_busy_(topo.node_count() * topo.dims(), 0),
      hop_limit_(config.reroute_hop_limit != 0 ? config.reroute_hop_limit
                                               : 16 * topo.dims() + 64) {
  GCUBE_REQUIRE(config.service_rate >= 1, "service rate must be positive");
  GCUBE_REQUIRE(config.measure_cycles >= 1, "nothing to measure");
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config)
    : NetworkSim(topo, router, faults, config, nullptr) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic)
    : NetworkSim(topo, router, faults, config, &traffic) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 nullptr) {
  attach_schedule(faults, schedule);
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 &traffic) {
  attach_schedule(faults, schedule);
}

void NetworkSim::attach_schedule(FaultSet& faults,
                                 const FaultSchedule& schedule) {
  const std::vector<FaultEvent>& events = schedule.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    GCUBE_REQUIRE(e.node < topo_.node_count(),
                  "fault event node out of range");
    GCUBE_REQUIRE(e.kind == FaultEvent::Kind::kNode || e.dim < topo_.dims(),
                  "fault event dimension out of range");
    // apply_fault_events consumes the list front to back and would
    // silently skip any event filed behind a later-cycle one.
    GCUBE_REQUIRE(i == 0 || events[i - 1].cycle <= e.cycle,
                  "fault schedule events must be sorted by cycle");
  }
  live_faults_ = &faults;
  schedule_events_ = events;
}

std::size_t NetworkSim::discard_packets_at(NodeId u) {
  const std::size_t lost = occupancy(u);
  while (!queues_[u].empty()) {
    pool_.release(queues_[u].front());
    queues_[u].pop_front();
  }
  while (!staged_[u].empty()) {
    pool_.release(staged_[u].front());
    staged_[u].pop_front();
  }
  return lost;
}

void NetworkSim::apply_fault_events(Cycle now, bool measuring) {
  while (next_event_ < schedule_events_.size() &&
         schedule_events_[next_event_].cycle <= now) {
    const FaultEvent& e = schedule_events_[next_event_++];
    if (measuring) ++metrics_.fault_events;
    if (e.kind == FaultEvent::Kind::kLink) {
      live_faults_->fail_link(e.node, e.dim);
      continue;
    }
    live_faults_->fail_node(e.node);
    // Packets sitting at the dead node are lost with it.
    const std::size_t lost = discard_packets_at(e.node);
    if (lost > 0) {
      in_flight_ -= lost;
      if (measuring) metrics_.orphaned_by_node_fault += lost;
    }
  }
}

void NetworkSim::inject(Cycle now, bool measuring) {
  const std::uint64_t nodes = topo_.node_count();
  for (std::uint64_t u64 = 0; u64 < nodes; ++u64) {
    const auto u = static_cast<NodeId>(u64);
    if (!traffic_.eligible(u) || !traffic_.should_inject(u, rng_)) continue;
    // The destination draw happens before the buffer check so that offered
    // load (`generated`, and the RNG stream behind it) is identical across
    // buffer_limit settings; a blocked injection differs only in being
    // counted in injections_blocked instead of entering the network.
    const NodeId dst = traffic_.pick_destination(u, rng_);
    if (measuring) ++metrics_.generated;
    if (config_.buffer_limit != 0 && occupancy(u) >= config_.buffer_limit) {
      if (measuring) ++metrics_.injections_blocked;
      continue;
    }
    std::shared_ptr<const Route> planned = router_.plan_shared(u, dst);
    if (planned == nullptr) {
      if (measuring) ++metrics_.dropped;
      continue;
    }
    const PacketIndex pi = pool_.acquire();
    Packet& p = pool_[pi];
    p.id = next_packet_id_++;
    p.src = u;
    p.dst = dst;
    p.created = now;
    p.plan_len = static_cast<std::uint32_t>(planned->length());
    p.plan = std::move(planned);
    p.next_hop = 0;
    p.adaptive = false;
    p.tail.clear();
    queues_[u].push_back(pi);
    ++in_flight_;
    metrics_.peak_in_flight = std::max(metrics_.peak_in_flight, in_flight_);
  }
}

bool NetworkSim::forward(Cycle now, bool measuring) {
  const std::uint64_t nodes = topo_.node_count();
  const Dim n = topo_.dims();
  bool moved = false;
  // Epoch-stamped link reservations: a directed link is free this cycle if
  // its stamp is older than now + 1 (stamps store now + 1 to keep 0 free).
  for (std::uint64_t u64 = 0; u64 < nodes; ++u64) {
    const auto u = static_cast<NodeId>(u64);
    IndexRing& queue = queues_[u];
    for (std::uint32_t served = 0;
         served < config_.service_rate && !queue.empty(); ++served) {
      const PacketIndex pi = queue.front();
      Packet& p = pool_[pi];
      // An adaptive packet no longer carries a complete route, so arrival
      // is detected positionally; a planned packet arrives exactly when
      // its route is consumed (the planner guarantees it ends at dst).
      const bool arrived = p.adaptive ? u == p.dst : p.at_destination();
      if (arrived) {
        NodeId replay = p.src;
        for (std::uint32_t h = 0; h < p.next_hop; ++h) {
          replay = flip_bit(replay, p.hop_at(h));
        }
        GCUBE_REQUIRE(replay == p.dst,
                      "delivered packet's recorded path must end at dst");
        if (measuring) {
          ++metrics_.delivered;
          metrics_.total_latency += now - p.created;
          metrics_.total_hops += p.next_hop;
          metrics_.latency_histogram.record(now - p.created);
          ++metrics_.service_ops;
        }
        --in_flight_;
        queue.pop_front();
        pool_.release(pi);
        moved = true;
        continue;
      }
      // A dropped packet leaves the network for good; dropping counts as
      // progress for the stall detector.
      const auto drop = [&]() {
        if (measuring) ++metrics_.dropped_en_route;
        --in_flight_;
        queue.pop_front();
        pool_.release(pi);
        moved = true;
      };
      Dim c;
      if (p.adaptive) {
        if (p.next_hop >= hop_limit_) {
          drop();  // livelock guard: stepwise re-plans cycled
          continue;
        }
        const std::optional<Dim> nh = router_.next_hop(u, p.dst);
        if (!nh || !topo_.has_link(u, *nh) ||
            !faults_.link_usable(u, *nh)) {
          drop();  // no usable continuation (dst dead or region cut off)
          continue;
        }
        c = *nh;
      } else {
        c = p.plan->hops()[p.next_hop];
        if (!topo_.has_link(u, c) || !faults_.link_usable(u, c)) {
          // The precomputed next link died under the packet: re-plan from
          // here with current fault knowledge instead of traversing it.
          if (measuring) ++metrics_.reroutes;
          p.adaptive = true;
          p.plan_len = p.next_hop;  // abandon the unconsumed planned tail
          const std::optional<Dim> nh = router_.next_hop(u, p.dst);
          if (!nh || !topo_.has_link(u, *nh) ||
              !faults_.link_usable(u, *nh)) {
            drop();
            continue;
          }
          c = *nh;
        }
      }
      auto& stamp = link_busy_[u64 * n + c];
      if (stamp == now + 1) break;  // link busy: head-of-line blocking
      const NodeId v = flip_bit(u, c);
      if (config_.buffer_limit != 0 &&
          occupancy(v) >= config_.buffer_limit) {
        break;  // backpressure: downstream buffer full
      }
      stamp = now + 1;
      if (measuring) ++metrics_.service_ops;
      if (p.adaptive) p.tail.push_back(c);
      ++p.next_hop;
      staged_[v].push_back(pi);
      queue.pop_front();
      moved = true;
    }
  }
  for (std::uint64_t u = 0; u < nodes; ++u) {
    IndexRing& incoming = staged_[u];
    while (!incoming.empty()) {
      queues_[u].push_back(incoming.front());
      incoming.pop_front();
    }
  }
  return moved;
}

SimMetrics NetworkSim::run() {
  metrics_ = SimMetrics{};
  metrics_.measured_cycles = config_.measure_cycles;
  next_event_ = 0;
  const Cycle total = config_.warmup_cycles + config_.measure_cycles;
  // With finite buffers a sustained global stall (packets in flight, none
  // moving) is a deadlock: declared after this many consecutive cycles.
  constexpr Cycle kDeadlockThreshold = 200;
  Cycle consecutive_stalls = 0;
  for (Cycle now = 0; now < total; ++now) {
    const bool measuring = now >= config_.warmup_cycles;
    apply_fault_events(now, measuring);
    inject(now, measuring);
    const bool moved = forward(now, measuring);
    if (!moved && in_flight_ > 0) {
      if (measuring) ++metrics_.stalled_cycles;
      if (++consecutive_stalls >= kDeadlockThreshold) {
        metrics_.deadlocked = true;
        break;
      }
    } else {
      consecutive_stalls = 0;
    }
  }
  return metrics_;
}

}  // namespace gcube
