#include "sim/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gcube {

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config)
    : topo_(topo),
      router_(router),
      faults_(faults),
      config_(config),
      default_traffic_(topo.node_count(), config.injection_rate, faults,
                       config.seed),
      traffic_(default_traffic_),
      rng_(config.seed),
      queues_(topo.node_count()),
      staged_(topo.node_count()),
      link_busy_(topo.node_count() * topo.dims(), 0) {
  GCUBE_REQUIRE(config.service_rate >= 1, "service rate must be positive");
  GCUBE_REQUIRE(config.measure_cycles >= 1, "nothing to measure");
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic)
    : topo_(topo),
      router_(router),
      faults_(faults),
      config_(config),
      default_traffic_(topo.node_count(), config.injection_rate, faults,
                       config.seed),
      traffic_(traffic),
      rng_(config.seed),
      queues_(topo.node_count()),
      staged_(topo.node_count()),
      link_busy_(topo.node_count() * topo.dims(), 0) {
  GCUBE_REQUIRE(config.service_rate >= 1, "service rate must be positive");
  GCUBE_REQUIRE(config.measure_cycles >= 1, "nothing to measure");
}

void NetworkSim::inject(Cycle now, bool measuring) {
  const std::uint64_t nodes = topo_.node_count();
  for (std::uint64_t u64 = 0; u64 < nodes; ++u64) {
    const auto u = static_cast<NodeId>(u64);
    if (!traffic_.eligible(u) || !traffic_.should_inject(u, rng_)) continue;
    if (config_.buffer_limit != 0 && occupancy(u) >= config_.buffer_limit) {
      if (measuring) ++metrics_.injections_blocked;
      continue;
    }
    const NodeId dst = traffic_.pick_destination(u, rng_);
    if (measuring) ++metrics_.generated;
    RoutingResult planned = router_.plan(u, dst);
    if (!planned.delivered()) {
      if (measuring) ++metrics_.dropped;
      continue;
    }
    Packet p;
    p.id = next_packet_id_++;
    p.src = u;
    p.dst = dst;
    p.created = now;
    p.hops = planned.route->hops();
    queues_[u].push_back(std::move(p));
    ++in_flight_;
    metrics_.peak_in_flight = std::max(metrics_.peak_in_flight, in_flight_);
  }
}

bool NetworkSim::forward(Cycle now, bool measuring) {
  const std::uint64_t nodes = topo_.node_count();
  const Dim n = topo_.dims();
  bool moved = false;
  // Epoch-stamped link reservations: a directed link is free this cycle if
  // its stamp is older than now + 1 (stamps store now + 1 to keep 0 free).
  for (std::uint64_t u64 = 0; u64 < nodes; ++u64) {
    const auto u = static_cast<NodeId>(u64);
    auto& queue = queues_[u];
    for (std::uint32_t served = 0;
         served < config_.service_rate && !queue.empty(); ++served) {
      Packet& p = queue.front();
      if (p.at_destination()) {
        if (measuring) {
          ++metrics_.delivered;
          metrics_.total_latency += now - p.created;
          metrics_.total_hops += p.hops.size();
          metrics_.latency_histogram.record(now - p.created);
          ++metrics_.service_ops;
        }
        --in_flight_;
        queue.pop_front();
        moved = true;
        continue;
      }
      const Dim c = p.hops[p.next_hop];
      auto& stamp = link_busy_[u64 * n + c];
      if (stamp == now + 1) break;  // link busy: head-of-line blocking
      const NodeId v = flip_bit(u, c);
      if (config_.buffer_limit != 0 &&
          occupancy(v) >= config_.buffer_limit) {
        break;  // backpressure: downstream buffer full
      }
      stamp = now + 1;
      if (measuring) ++metrics_.service_ops;
      ++p.next_hop;
      staged_[v].push_back(std::move(p));
      queue.pop_front();
      moved = true;
    }
  }
  for (std::uint64_t u = 0; u < nodes; ++u) {
    auto& incoming = staged_[u];
    for (auto& p : incoming) queues_[u].push_back(std::move(p));
    incoming.clear();
  }
  return moved;
}

SimMetrics NetworkSim::run() {
  metrics_ = SimMetrics{};
  metrics_.measured_cycles = config_.measure_cycles;
  const Cycle total = config_.warmup_cycles + config_.measure_cycles;
  // With finite buffers a sustained global stall (packets in flight, none
  // moving) is a deadlock: declared after this many consecutive cycles.
  constexpr Cycle kDeadlockThreshold = 200;
  Cycle consecutive_stalls = 0;
  for (Cycle now = 0; now < total; ++now) {
    const bool measuring = now >= config_.warmup_cycles;
    inject(now, measuring);
    const bool moved = forward(now, measuring);
    if (!moved && in_flight_ > 0) {
      if (measuring) ++metrics_.stalled_cycles;
      if (++consecutive_stalls >= kDeadlockThreshold) {
        metrics_.deadlocked = true;
        break;
      }
    } else {
      consecutive_stalls = 0;
    }
  }
  return metrics_;
}

}  // namespace gcube
