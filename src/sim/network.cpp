#include "sim/network.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "sim/advance_simd.hpp"
#include "sim/sweep.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace gcube {

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel* traffic)
    : topo_(topo),
      router_(router),
      faults_(faults),
      config_(config),
      default_traffic_(topo.node_count(), config.injection_rate, faults,
                       config.seed),
      traffic_(traffic != nullptr ? *traffic : default_traffic_),
      hop_limit_(config.reroute_hop_limit != 0 ? config.reroute_hop_limit
                                               : 16 * topo.dims() + 64) {
  GCUBE_REQUIRE(config.service_rate >= 1, "service rate must be positive");
  GCUBE_REQUIRE(config.measure_cycles >= 1, "nothing to measure");
  GCUBE_REQUIRE(config.threads <= kMaxPoolShards,
                "thread count exceeds the packet-reference shard space");
  GCUBE_REQUIRE(config.retry_limit <= 32,
                "retry limit above 32 would overflow the backoff shift");
  GCUBE_REQUIRE(config.retry_backoff_base >= 1,
                "retry backoff base must be at least one cycle");
  GCUBE_REQUIRE(config.retry_budget == 0 || config.retransmit_timeout >= 1,
                "retransmit timeout must be at least one cycle");
  retries_ = config.retry_limit > 0 || config.retry_budget > 0;
  dims_ = topo.dims();
  node_count_ = topo.node_count();
  overlay_.attach(topo_);
  const NextHopFabric* fabric = router_.fabric();
  if (fabric != nullptr && fabric->supported()) fabric_ = fabric;
  steer_ = config_.fabric && fabric_ != nullptr;
  active_set_ = config_.active_set;
  // The scalar escape hatch: --no-batch / SimConfig::batch = false, or the
  // process-wide environment override the CI equivalence leg uses to force
  // every simulation in a test binary onto the scalar scan.
  batch_ = config_.batch && active_set_ &&
           std::getenv("GCUBE_SIM_NO_BATCH") == nullptr;
  timing_ = config_.phase_timing;
  simd_ = simd_level();
}

namespace {
[[nodiscard]] std::uint64_t ns_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
}  // namespace

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config)
    : NetworkSim(topo, router, faults, config, nullptr) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic)
    : NetworkSim(topo, router, faults, config, &traffic) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 nullptr) {
  attach_schedule(faults, schedule);
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 &traffic) {
  attach_schedule(faults, schedule);
}

void NetworkSim::attach_schedule(FaultSet& faults,
                                 const FaultSchedule& schedule) {
  const std::vector<FaultEvent>& events = schedule.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    GCUBE_REQUIRE(e.node < topo_.node_count(),
                  "fault event node out of range");
    GCUBE_REQUIRE(!e.targets_link() || e.dim < topo_.dims(),
                  "fault event dimension out of range");
    // apply_fault_events consumes the list front to back and would
    // silently skip any event filed behind a later-cycle one.
    GCUBE_REQUIRE(i == 0 || events[i - 1].cycle <= e.cycle,
                  "fault schedule events must be sorted by cycle");
  }
  live_faults_ = &faults;
  schedule_events_ = events;
}

void NetworkSim::configure_shards(unsigned shard_count) {
  const std::uint64_t nodes = topo_.node_count();
  auto count = static_cast<std::uint64_t>(shard_count);
  if (count > nodes) count = nodes;  // empty shards buy nothing
  if (count > kMaxPoolShards) count = kMaxPoolShards;
  if (count == 0) count = 1;
  shards_.clear();
  shards_.resize(count);
  range_base_ = static_cast<NodeId>(nodes / count);
  range_rem_ = static_cast<NodeId>(nodes % count);
  NodeId begin = 0;
  for (std::uint64_t s = 0; s < count; ++s) {
    Shard& sh = shards_[s];
    sh.begin = begin;
    sh.end = begin + range_base_ + (s < range_rem_ ? 1 : 0);
    for (auto& parity : sh.outbox) parity.resize(count);
    for (auto& parity : sh.released) parity.resize(count);
    if (active_set_) {
      sh.active.reset(sh.end - sh.begin);
      sh.wheel.assign(kWheelSize, {});
      sh.far_fires = {};
      sh.armed.assign(sh.end - sh.begin, 0);
    }
    begin = sh.end;
  }
  queues_.assign(nodes, {});
  link_busy_.assign(nodes * topo_.dims(), 0);
  occ_.assign(config_.buffer_limit != 0 ? nodes : 0, 0);
  in_flight_ = 0;
  parked_.clear();
  parked_count_.assign(retries_ ? nodes : 0, 0);
  parked_now_ = 0;
}

unsigned NetworkSim::shard_of(NodeId u) const noexcept {
  // Single-shard runs skip the divisions below — they sit on the per-hop
  // mailbox path and are pure overhead when there is only one owner.
  if (shards_.size() == 1) return 0;
  // Contiguous split: the first range_rem_ shards are one node wider.
  const NodeId wide = range_base_ + 1;
  const NodeId split = range_rem_ * wide;
  if (u < split) return static_cast<unsigned>(u / wide);
  return static_cast<unsigned>(
      range_rem_ + (u - split) / (range_base_ == 0 ? 1 : range_base_));
}

void NetworkSim::release_ref(unsigned w, PacketRef ref, unsigned parity) {
  const unsigned home = packet_ref_shard(ref);
  if (home == w) {
    shards_[home].pool.release(packet_ref_slot(ref));
  } else {
    // Foreign pools may not be touched from phase B (their owners grow and
    // release into them concurrently); route the slot home through the
    // current-parity release ring, drained by the owner's next phase A.
    shards_[w].released[parity][home].push_back(ref);
  }
}

std::size_t NetworkSim::discard_packets_at(NodeId u) {
  std::size_t lost = 0;
  Ring<PacketRef>& queue = queues_[u];
  while (!queue.empty()) {
    const PacketRef ref = queue.front();
    queue.pop_front();
    shards_[packet_ref_shard(ref)].pool.release(packet_ref_slot(ref));
    ++lost;
  }
  // Packets already forwarded to u but still parked in a mailbox are lost
  // with it too; rotate each ring once, keeping survivors in order. At
  // this serial point only one parity holds undrained arrivals, but
  // scanning both costs nothing (the other is empty).
  const unsigned dst_shard = shard_of(u);
  for (Shard& src : shards_) {
    for (auto& parity : src.outbox) {
      Ring<Arrival>& box = parity[dst_shard];
      for (std::size_t i = box.size(); i > 0; --i) {
        const Arrival a = box.front();
        box.pop_front();
        if (a.node == u) {
          shards_[packet_ref_shard(a.ref)].pool.release(
              packet_ref_slot(a.ref));
          ++lost;
        } else {
          box.push_back(a);
        }
      }
    }
  }
  return lost;
}

void NetworkSim::apply_fault_events(Cycle now, bool measuring) {
  while (next_event_ < schedule_events_.size() &&
         schedule_events_[next_event_].cycle <= now) {
    const FaultEvent& e = schedule_events_[next_event_++];
    if (measuring) ++metrics_.fault_events;
    switch (e.kind) {
      case FaultEvent::Kind::kLink:
        live_faults_->fail_link(e.node, e.dim);
        break;
      case FaultEvent::Kind::kNode: {
        live_faults_->fail_node(e.node);
        // Packets sitting at (or in transit to) the dead node are lost
        // with it. (Parked retries at it survive until their wake cycle,
        // where the same orphan accounting applies.)
        const std::size_t lost = discard_packets_at(e.node);
        if (lost > 0) {
          in_flight_ -= lost;
          if (measuring) metrics_.orphaned_by_node_fault += lost;
        }
        break;
      }
      case FaultEvent::Kind::kRepairLink:
        if (live_faults_->repair_link(e.node, e.dim) && measuring) {
          ++metrics_.repairs_applied;
        }
        break;
      case FaultEvent::Kind::kRepairNode:
        if (live_faults_->repair_node(e.node)) {
          if (measuring) ++metrics_.repairs_applied;
          // The node's injection fire may have been consumed while it was
          // dead (gap-scheduled mode deschedules ineligible nodes); give
          // it a fresh one so traffic resumes.
          if (active_set_) rearm_injection(e.node, now);
        }
        break;
    }
  }
  // Serial point: bring the overlay masks up to date before workers read
  // them. No-op (one version compare) when nothing changed. A repair bumps
  // the fault set's generation, which forces the full rebuild an
  // incremental (append-only) refresh cannot express.
  overlay_.refresh(faults_);
  no_faults_ = faults_.empty();
}

void NetworkSim::rearm_injection(NodeId u, Cycle now) {
  Shard& sh = shards_[shard_of(u)];
  if (sh.armed[u - sh.begin] != 0) return;  // a live fire already exists
  if (!traffic_.eligible(u)) return;
  // Dedicated re-arm draw stream: keyed off a salted seed so it can never
  // collide with the per-(node, cycle) injection draws — and is a pure
  // function of (seed, node, repair cycle), preserving determinism.
  constexpr std::uint64_t kRearmSalt = 0x7265'6172'6d21'9e37ull;
  CounterRng rng(counter_key(config_.seed ^ kRearmSalt, u, now));
  const std::uint64_t gap = traffic_.injection_gap(u, rng);
  // Same convention as the pre-run seeding: a gap of g fires g - 1 cycles
  // out, so the repair cycle itself injects with the usual probability.
  if (gap == TrafficModel::kNeverGap || gap - 1 >= total_cycles_ - now) {
    return;
  }
  schedule_fire(sh, now, now + gap - 1, u);
}

void NetworkSim::commit_stranded(Cycle now, bool measuring,
                                 std::uint64_t& gave_up_removed) {
  // Ascending shard order = ascending strand-node order (phase B serves
  // nodes in ascending order within each contiguous shard), so the park /
  // retransmit / give-up decisions — which consume shared budgets like
  // park_capacity — are identical for any shard count.
  for (Shard& sh : shards_) {
    while (!sh.stranded.empty()) {
      const Arrival s = sh.stranded.front();
      sh.stranded.pop_front();
      PacketCold& p = cold_of(s.ref);
      if (p.retry_attempts < config_.retry_limit &&
          parked_count_[s.node] < config_.park_capacity) {
        const Cycle delay = config_.retry_backoff_base << p.retry_attempts;
        ++p.retry_attempts;
        parked_.emplace(now + delay, Parked{s.node, s.ref, false});
        ++parked_count_[s.node];
        ++parked_now_;
        if (measuring) ++metrics_.parked_retries;
      } else if (p.retransmits_used < config_.retry_budget) {
        // End-to-end recovery: relaunch from the source after the timeout
        // with a clean slate of local retries.
        ++p.retransmits_used;
        p.retry_attempts = 0;
        parked_.emplace(now + config_.retransmit_timeout,
                        Parked{p.src, s.ref, true});
        ++parked_now_;
        if (measuring) ++metrics_.retransmits;
      } else {
        shards_[packet_ref_shard(s.ref)].pool.release(packet_ref_slot(s.ref));
        ++gave_up_removed;
        if (measuring) ++metrics_.gave_up;
      }
    }
  }
}

void NetworkSim::wake_parked(Cycle now, bool measuring) {
  while (!parked_.empty() && parked_.begin()->first <= now) {
    const Parked pk = parked_.begin()->second;
    parked_.erase(parked_.begin());
    --parked_now_;
    if (!pk.respawn) --parked_count_[pk.node];
    const auto release = [&] {
      shards_[packet_ref_shard(pk.ref)].pool.release(packet_ref_slot(pk.ref));
      --in_flight_;
    };
    if (faults_.node_faulty(pk.node)) {
      // The wake site died while the packet was parked: lost with it.
      release();
      if (measuring) ++metrics_.orphaned_by_node_fault;
      continue;
    }
    if (pk.respawn) {
      // Fresh launch from the source: same id/created (latency measures
      // end-to-end including the recovery delay), new route state. The
      // audit-sample membership is a pure function of the id, so the flag
      // survives the reset.
      PacketHot& h = hot_of(pk.ref);
      PacketCold& c = cold_of(pk.ref);
      c.plan.reset();
      c.steer_next = 0;
      c.tail.clear();
      h.hops = 0;
      h.plan_len = 0;
      h.flags = (h.flags & kPktAudited) | (steer_ ? kPktSteered : 0);
      if (!steer_) {
        std::shared_ptr<const Route> planned =
            router_.plan_shared(c.src, h.dst);
        if (planned == nullptr) {
          // The planner sees no path at relaunch time; the retransmit is
          // spent and the packet is out of options.
          release();
          if (measuring) ++metrics_.gave_up;
          continue;
        }
        h.plan_len = static_cast<std::uint32_t>(planned->length());
        c.plan = std::move(planned);
        h.flags |= kPktHasPlan;
      }
    }
    // Re-entry bypasses buffer_limit: the packet never left the network,
    // so blocking it here would leak it from the accounting.
    queues_[pk.node].push_back(pk.ref);
    if (active_set_) {
      Shard& sh = shards_[shard_of(pk.node)];
      sh.active.set(pk.node - sh.begin);
    }
  }
}

void NetworkSim::admit_packet(unsigned w, NodeId u, NodeId dst, Cycle now,
                              bool measuring) {
  Shard& sh = shards_[w];
  SimMetrics& m = sh.metrics;
  if (measuring) ++m.generated;
  if (config_.buffer_limit != 0 &&
      queues_[u].size() >= config_.buffer_limit) {
    if (measuring) ++m.injections_blocked;
    return;
  }
  std::shared_ptr<const Route> planned;
  std::uint32_t plan_len = 0;
  if (!steer_) {
    planned = router_.plan_shared(u, dst);
    if (planned == nullptr) {
      if (measuring) ++m.dropped;
      return;
    }
    plan_len = static_cast<std::uint32_t>(planned->length());
  }
  // Steered packets launch with no plan at all: the fabric tables (or an
  // adopted plan near faults) decide every hop at service time. release()
  // leaves recycled slots with flags == 0 and a clear tail, so every other
  // field is (re)initialized here.
  const PacketIndex slot = sh.pool.acquire();
  PacketHot& h = sh.pool.hot(slot);
  PacketCold& c = sh.pool.cold(slot);
  const std::uint64_t id = now * node_count_ + u;  // unique, no shared ctr
  h.dst = dst;
  h.hops = 0;
  h.plan_len = plan_len;
  h.flags = (steer_ ? kPktSteered : 0) |
            (planned != nullptr ? kPktHasPlan : 0) |
            ((id & 63) == 0 ? kPktAudited : 0);
  c.id = id;
  c.src = u;
  c.created = now;
  c.plan = std::move(planned);
  c.steer_next = 0;
  c.retry_attempts = 0;
  c.retransmits_used = 0;
  queues_[u].push_back(make_packet_ref(w, slot));
  if (active_set_) sh.active.set(u - sh.begin);
  ++sh.injected;
}

void NetworkSim::fire_injection(unsigned w, NodeId u, Cycle now,
                                std::uint64_t key, bool measuring) {
  shards_[w].armed[u - shards_[w].begin] = 0;  // this fire is consumed
  // A node that became ineligible since scheduling is descheduled; if a
  // later repair-node event makes it eligible again, rearm_injection gives
  // it a fresh fire.
  if (!traffic_.eligible(u)) return;
  // Per-(node, cycle) draw stream: destination and the next gap are pure
  // functions of (seed, u, now), never of pop or thread order. The key was
  // batched across the fire bucket by the caller.
  CounterRng rng(key);
  const NodeId dst = traffic_.pick_destination(u, rng);
  admit_packet(w, u, dst, now, measuring);
  // The gap is drawn whether or not the buffer admitted the packet, so
  // offered load is independent of buffer_limit, as in the scan path.
  const std::uint64_t gap = traffic_.injection_gap(u, rng);
  if (gap == TrafficModel::kNeverGap || gap >= total_cycles_ - now) return;
  schedule_fire(shards_[w], now, now + gap, u);
}

void NetworkSim::schedule_fire(Shard& sh, Cycle now, Cycle at, NodeId u) {
  sh.armed[u - sh.begin] = 1;
  if (at - now < kWheelSize) {
    // Within the wheel's span the bucket index is unambiguous: no other
    // pending cycle in [now, now + kWheelSize) shares it.
    sh.wheel[at & (kWheelSize - 1)].push_back(u);
  } else {
    sh.far_fires.push((at << kFireNodeBits) | u);
  }
}

void NetworkSim::phase_inject(unsigned w, Cycle now, bool measuring) {
  Shard& sh = shards_[w];
  sh.injected = 0;
  sh.removed = 0;
  sh.moved = false;
  std::chrono::steady_clock::time_point t0, t1;
  if (timing_) t0 = std::chrono::steady_clock::now();
  // Batch-drain the opposite-parity rings: slots other shards released
  // from this pool, then last cycle's arrivals in ascending source-shard
  // order; shards are contiguous and ascending, so that equals ascending
  // source-node order — the canonical queue order, independent of shard
  // count. Indexed batch + clear instead of per-packet pop_front: one
  // bounds check and head/count update per ring, not per handoff.
  const unsigned prev = static_cast<unsigned>(~now & 1);
  const auto shard_count = static_cast<unsigned>(shards_.size());
  for (unsigned s = 0; s < shard_count; ++s) {
    Ring<PacketRef>& rel = shards_[s].released[prev][w];
    const std::size_t freed = rel.size();
    for (std::size_t i = 0; i < freed; ++i) {
      sh.pool.release(packet_ref_slot(rel.at(i)));
    }
    rel.clear();
    Ring<Arrival>& box = shards_[s].outbox[prev][w];
    const std::size_t arrivals = box.size();
    for (std::size_t i = 0; i < arrivals; ++i) {
      // The destination rings are scattered across the queue table; stay a
      // few arrivals ahead of the pushes.
      if (i + kPrefetchAhead < arrivals) {
        prefetch_write(&queues_[box.at(i + kPrefetchAhead).node]);
      }
      const Arrival a = box.at(i);
      queues_[a.node].push_back(a.ref);
      if (active_set_) sh.active.set(a.node - sh.begin);
    }
    box.clear();
  }
  if (timing_) {
    t1 = std::chrono::steady_clock::now();
    sh.metrics.phase_drain_ns += ns_between(t0, t1);
  }
  if (active_set_) {
    // Event-driven injection: only nodes whose fire time is due do any
    // work this cycle. Far-heap stragglers join the wheel bucket, which is
    // then fired in ascending node order — the canonical injection order.
    // Fires reschedule into later buckets (or the far heap), never the one
    // being drained.
    std::vector<NodeId>& bucket = sh.wheel[now & (kWheelSize - 1)];
    while (!sh.far_fires.empty() &&
           (sh.far_fires.top() >> kFireNodeBits) <= now) {
      bucket.push_back(static_cast<NodeId>(sh.far_fires.top() &
                                           kFireNodeMask));
      sh.far_fires.pop();
    }
    std::sort(bucket.begin(), bucket.end());
    // The per-(node, cycle) counter keys are a pure lane-parallel function
    // of the sorted bucket; batch them, then fire in ascending node order.
    const std::size_t due = bucket.size();
    std::uint64_t keys[64];
    for (std::size_t off = 0; off < due; off += 64) {
      const std::size_t chunk = std::min<std::size_t>(64, due - off);
      counter_keys(simd_, config_.seed, now, bucket.data() + off, chunk,
                   keys);
      for (std::size_t j = 0; j < chunk; ++j) {
        fire_injection(w, bucket[off + j], now, keys[j], measuring);
      }
    }
    bucket.clear();
    if (config_.buffer_limit != 0) {
      // Maintenance scan over live bits only: retire nodes whose queue
      // emptied last cycle, publish committed occupancy for the rest.
      // (With unbounded buffers there is no occupancy to publish and
      // phase B retires emptied nodes itself, so no scan at all.)
      sh.active.for_each_set([&](std::uint64_t bit) {
        const NodeId u = sh.begin + static_cast<NodeId>(bit);
        const std::size_t depth = queues_[u].size();
        if (depth == 0) {
          sh.active.clear(bit);
          occ_[u] = 0;
        } else {
          occ_[u] = static_cast<std::uint32_t>(depth);
        }
      });
    }
  } else {
    if (const std::optional<double> rate = traffic_.bernoulli_rate()) {
      // Batched Bernoulli sweep: one SIMD predicate pass answers "does
      // node u inject this cycle" for 64 nodes at a time. Drawing for an
      // ineligible node has no side effects (every node's stream is an
      // independent pure function of (seed, node, cycle)), so discarding
      // those lanes reproduces the scalar scan — which skips them before
      // drawing — exactly. Hit nodes replay their stream from the key:
      // should_inject consumes the predicate draw (true by construction),
      // then the destination draws follow as in the scalar loop.
      for (NodeId blk = sh.begin; blk < sh.end; blk += 64) {
        const auto cnt =
            static_cast<unsigned>(std::min<NodeId>(64, sh.end - blk));
        std::uint64_t mask = counter_bernoulli_mask(simd_, config_.seed,
                                                    now, blk, cnt, *rate);
        for (; mask != 0; mask &= mask - 1) {
          const NodeId u =
              blk + static_cast<NodeId>(std::countr_zero(mask));
          if (!traffic_.eligible(u)) continue;
          CounterRng rng(counter_key(config_.seed, u, now));
          if (!traffic_.should_inject(u, rng)) continue;
          const NodeId dst = traffic_.pick_destination(u, rng);
          admit_packet(w, u, dst, now, measuring);
        }
      }
    } else {
      for (NodeId u = sh.begin; u < sh.end; ++u) {
        if (!traffic_.eligible(u)) continue;
        // Per-(node, cycle) draw stream: injection and destination choice
        // are pure functions of (seed, u, now), never of sweep or thread
        // order.
        CounterRng rng(counter_key(config_.seed, u, now));
        if (!traffic_.should_inject(u, rng)) continue;
        // The destination draw happens before the buffer check so that
        // offered load (`generated`, and the draw stream behind it) is
        // identical across buffer_limit settings; a blocked injection
        // differs only in being counted in injections_blocked instead of
        // entering the network.
        const NodeId dst = traffic_.pick_destination(u, rng);
        admit_packet(w, u, dst, now, measuring);
      }
    }
    if (config_.buffer_limit != 0) {
      // Publish committed occupancy for this cycle's backpressure checks.
      for (NodeId u = sh.begin; u < sh.end; ++u) {
        occ_[u] = static_cast<std::uint32_t>(queues_[u].size());
      }
    }
  }
  if (timing_) {
    sh.metrics.phase_inject_ns +=
        ns_between(t1, std::chrono::steady_clock::now());
  }
}

void NetworkSim::serve_node(unsigned w, NodeId u, Cycle now, bool measuring,
                            bool& moved, bool clean, std::uint32_t hint) {
  Shard& sh = shards_[w];
  SimMetrics& m = sh.metrics;
  const Dim n = dims_;
  const unsigned parity = static_cast<unsigned>(now & 1);
  Ring<PacketRef>& queue = queues_[u];
  for (std::uint32_t served = 0;
       served < config_.service_rate && !queue.empty(); ++served) {
    const PacketRef ref = queue.front();
    PacketHot& h = hot_of(ref);
    // The batched pass precomputed the front packet's disposition; every
    // later packet of the queue takes the full decision tree.
    const std::uint32_t hd = served == 0 ? hint : kHintNone;
    // Adaptive and steered packets carry no complete route, so arrival is
    // detected positionally; a planned packet arrives exactly when its
    // route is consumed (the planner guarantees it ends at dst).
    const bool arrived =
        hd == kHintArrived ||
        (hd == kHintNone &&
         (h.positional_arrival() ? u == h.dst : h.hops == h.plan_len));
    if (arrived) {
      if (h.audited()) {
        const PacketCold& c = cold_of(ref);
        NodeId replay = c.src;
        for (std::uint32_t i = 0; i < h.hops; ++i) {
          replay = flip_bit(replay, packet_hop_at(h, c, i));
        }
        GCUBE_REQUIRE(replay == h.dst,
                      "delivered packet's recorded path must end at dst");
      }
      if (measuring) {
        const PacketCold& c = cold_of(ref);
        if (c.created < config_.warmup_cycles) {
          // Warmup-generated packet completing inside the window: real
          // work, but counting it in delivered/latency would let the
          // delivery ratio exceed the offered load and skew the averages.
          ++m.carryover_delivered;
        } else {
          ++m.delivered;
          m.total_latency += now - c.created;
          m.total_hops += h.hops;
          m.latency_histogram.record(now - c.created);
        }
        ++m.service_ops;
      }
      ++sh.removed;
      queue.pop_front();
      release_ref(w, ref, parity);
      moved = true;
      continue;
    }
    // A dropped packet leaves the network for good; dropping counts as
    // progress for the stall detector.
    const auto drop_hop_limit = [&]() {
      if (measuring) ++m.dropped_hop_limit;
      ++sh.removed;
      queue.pop_front();
      release_ref(w, ref, parity);
      moved = true;
    };
    // A packet with no usable continuation is dropped outright in legacy
    // mode; in recovery mode it is handed to the serial commit, which
    // decides between a parked retry, a source retransmit, and giving up.
    // A stranded packet stays in flight (not counted in sh.removed).
    const auto strand = [&]() {
      if (retries_) {
        sh.stranded.push_back({u, ref});
      } else {
        if (measuring) ++m.dropped_no_route;
        ++sh.removed;
        release_ref(w, ref, parity);
      }
      queue.pop_front();
      moved = true;
    };
    Dim c;
    if (hd < kHintArrived) {
      // Batched fast path: the classify pass established kPktSteered with
      // no adopted plan, a clean node, and hops under the livelock guard,
      // and the table lookup already ran — the hint IS the usable hop.
      c = static_cast<Dim>(hd);
    } else if ((h.flags & kPktSteered) != 0) {
      if (h.hops >= hop_limit_) {
        drop_hop_limit();  // livelock guard, same bound as adaptive re-plans
        continue;
      }
      std::optional<Dim> hop;
      if ((h.flags & kPktHasPlan) != 0) {
        // Following a plan adopted at an earlier fault-adjacent node;
        // verify the next adopted hop is still alive before taking it.
        PacketCold& cd = cold_of(ref);
        const Dim pc = cd.plan->hops()[cd.steer_next];
        if (overlay_.link_usable(u, pc)) {
          hop = pc;
        } else {
          if (measuring) ++m.reroutes;
          cd.plan.reset();  // died underfoot: re-steer from this node
          cd.steer_next = 0;
          h.flags &= ~kPktHasPlan;
        }
      }
      if (!hop) {
        if (clean) {
          // No fault within distance 1: the fabric's fault-free table hop
          // is guaranteed usable — no per-link checks at all.
          hop = fabric_->fault_free_hop(u, h.dst);
        } else {
          // Fault-adjacent node: adopt the router's full fault-aware plan
          // from here. A reroute is counted when the fault actually
          // deflects the packet off its fault-free table hop.
          if (measuring &&
              !overlay_.link_usable(u, fabric_->fault_free_hop(u, h.dst))) {
            ++m.reroutes;
          }
          std::shared_ptr<const Route> adopted =
              router_.plan_shared(u, h.dst);
          if (adopted == nullptr || adopted->length() == 0 ||
              !overlay_.link_usable(u, adopted->hops().front())) {
            strand();  // no usable continuation (dst dead or region cut off)
            continue;
          }
          PacketCold& cd = cold_of(ref);
          cd.plan = std::move(adopted);
          cd.steer_next = 0;
          h.flags |= kPktHasPlan;
          hop = cd.plan->hops().front();
        }
      }
      c = *hop;
    } else if ((h.flags & kPktAdaptive) != 0) {
      if (h.hops >= hop_limit_) {
        drop_hop_limit();  // livelock guard: stepwise re-plans cycled
        continue;
      }
      const std::optional<Dim> nh = router_.next_hop(u, h.dst);
      if (!nh || !overlay_.link_usable(u, *nh)) {
        strand();  // no usable continuation (dst dead or region cut off)
        continue;
      }
      c = *nh;
    } else {
      c = cold_of(ref).plan->hops()[h.hops];
      if (!overlay_.link_usable(u, c)) {
        // The precomputed next link died under the packet: re-plan from
        // here with current fault knowledge instead of traversing it.
        if (measuring) ++m.reroutes;
        h.flags |= kPktAdaptive;
        h.plan_len = h.hops;  // abandon the unconsumed planned tail
        const std::optional<Dim> nh = router_.next_hop(u, h.dst);
        if (!nh || !overlay_.link_usable(u, *nh)) {
          strand();
          continue;
        }
        c = *nh;
      }
    }
    // Epoch-stamped link reservation: the directed link is free this cycle
    // iff its stamp is older than now + 1 (stamps store now + 1 to keep 0
    // free; 32-bit, see link_busy_). Every link written here starts at a
    // node this shard owns.
    std::uint32_t& stamp = link_busy_[static_cast<std::size_t>(u) * n + c];
    const auto stamp_now = static_cast<std::uint32_t>(now + 1);
    if (stamp == stamp_now) return;  // link busy: head-of-line blocking
    const NodeId v = flip_bit(u, c);
    if (config_.buffer_limit != 0 && occ_[v] >= config_.buffer_limit) {
      return;  // backpressure against start-of-cycle committed occupancy
    }
    stamp = stamp_now;
    if (measuring) ++m.service_ops;
    if ((h.flags & (kPktSteered | kPktAdaptive)) != 0) {
      // Online-routed hop: only the audited sample records it (the audit
      // path lives in the tail); everyone else keeps just the hop count.
      if (h.audited()) cold_of(ref).tail.push_back(c);
      if ((h.flags & (kPktSteered | kPktHasPlan)) ==
          (kPktSteered | kPktHasPlan)) {
        PacketCold& cd = cold_of(ref);
        if (++cd.steer_next >=
            static_cast<std::uint32_t>(cd.plan->length())) {
          cd.plan.reset();  // adopted plan consumed; back to table steering
          cd.steer_next = 0;
          h.flags &= ~kPktHasPlan;
        }
      }
    }
    ++h.hops;
    sh.outbox[parity][shard_of(v)].push_back({v, ref});
    queue.pop_front();
    moved = true;
  }
}

void NetworkSim::serve_word(unsigned w, std::size_t word_index, Cycle now,
                            bool measuring, bool& moved, bool retire) {
  Shard& sh = shards_[w];
  const NodeId base = sh.begin + static_cast<NodeId>(word_index << 6);
  // Pass 1 (read-only + stale-bit retirement): harvest the word's set bits
  // in ascending order and prefetch each front packet's 16-byte hot
  // record, so the classify pass walks warm cache lines instead of eating
  // a dependent miss per node.
  NodeId nodes[64];
  PacketRef refs[64];
  PacketHot* hotp[64];
  unsigned count = 0;
  for (std::uint64_t bits = sh.active.word(word_index); bits != 0;
       bits &= bits - 1) {
    const auto b = static_cast<unsigned>(std::countr_zero(bits));
    const NodeId u = base + b;
    const Ring<PacketRef>& q = queues_[u];
    if (q.empty()) {
      // Finite-buffer mode leaves retirement to the phase-A maintenance
      // scan, so an empty-but-active node is normal there; with unbounded
      // buffers this is purely defensive.
      if (retire) sh.active.clear(u - sh.begin);
      continue;
    }
    const PacketRef ref = q.front();
    PacketHot* h =
        &shards_[packet_ref_shard(ref)].pool.hot(packet_ref_slot(ref));
    prefetch_read(h);
    nodes[count] = u;
    refs[count] = ref;
    hotp[count] = h;
    ++count;
  }
  if (count == 0) return;
  // One overlay window answers all 64 clean-node questions (fault-free
  // runs skip even that load).
  const std::uint64_t clean =
      !steer_ ? 0
              : (no_faults_ ? ~std::uint64_t{0} : overlay_.clean_window(base));
  // Pass 2 (read-only): classify every front packet in SIMD lanes —
  // arrived, steered fast path (no adopted plan, clean node, under the
  // livelock guard), or "decide in full later" — then compact the fast
  // lanes into (cur, dst) pairs for one tight batched table-lookup loop.
  const ClassifyMasks cm = classify_front_packets(
      simd_, count, hotp, nodes, base, clean, hop_limit_);
  std::uint32_t hints[64];
  for (unsigned i = 0; i < count; ++i) hints[i] = kHintNone;
  for (std::uint64_t bits = cm.arrived; bits != 0; bits &= bits - 1) {
    const auto i = static_cast<unsigned>(std::countr_zero(bits));
    hints[i] = kHintArrived;
    // Delivery accounting reads the cold record (created, and src for
    // the audited replay); start that line early.
    prefetch_read(&shards_[packet_ref_shard(refs[i])].pool.cold(
        packet_ref_slot(refs[i])));
  }
  NodeId cur[64];
  NodeId dstv[64];
  unsigned fast_of[64];
  Dim hops[64];
  unsigned nfast = 0;
  for (std::uint64_t bits = cm.fast; bits != 0; bits &= bits - 1) {
    const auto i = static_cast<unsigned>(std::countr_zero(bits));
    cur[nfast] = nodes[i];
    dstv[nfast] = hotp[i]->dst;
    fast_of[nfast] = i;
    ++nfast;
  }
  if (nfast != 0) {
    fabric_->fault_free_hops(simd_, nfast, cur, dstv, hops);
    for (unsigned i = 0; i < nfast; ++i) {
      hints[fast_of[i]] = hops[i];
      // The link-stamp store is the one remaining random access on the
      // fast path (node_count * dims words); its address is known the
      // moment the hop is — fetch it for write before the apply pass.
      prefetch_write(
          &link_busy_[static_cast<std::size_t>(cur[i]) * dims_ + hops[i]]);
    }
  }
  // Pass 3 (apply), strictly ascending node order: outbox push order is
  // the canonical order the determinism contract rests on. The read-only
  // passes above commute with these applies — within phase B, node
  // services are mutually independent (per-(node, dim) link stamps, every
  // handoff via the parity mailboxes), so each node's front packet and
  // queue are exactly as the classify pass saw them.
  //
  // The dominant shape at simulated loads — a depth-1 queue whose single
  // packet either takes its precomputed hop or delivers — is applied
  // inline (the exact serve_node semantics for that shape: one service,
  // then the queue is empty); everything else takes the full path.
  const unsigned parity = static_cast<unsigned>(now & 1);
  const auto stamp_now = static_cast<std::uint32_t>(now + 1);
  SimMetrics& m = sh.metrics;
  for (unsigned i = 0; i < count; ++i) {
    const NodeId u = nodes[i];
    const std::uint32_t hint = hints[i];
    Ring<PacketRef>& queue = queues_[u];
    if (retire && hint != kHintNone && queue.size() == 1) {
      const PacketRef ref = refs[i];
      PacketHot& h = *hotp[i];  // resolved once at harvest
      if (hint == kHintArrived) {
        if (h.audited()) {
          const PacketCold& c = cold_of(ref);
          NodeId replay = c.src;
          for (std::uint32_t k = 0; k < h.hops; ++k) {
            replay = flip_bit(replay, packet_hop_at(h, c, k));
          }
          GCUBE_REQUIRE(replay == h.dst,
                        "delivered packet's recorded path must end at dst");
        }
        if (measuring) {
          const PacketCold& c = cold_of(ref);
          if (c.created < config_.warmup_cycles) {
            ++m.carryover_delivered;
          } else {
            ++m.delivered;
            m.total_latency += now - c.created;
            m.total_hops += h.hops;
            m.latency_histogram.record(now - c.created);
          }
          ++m.service_ops;
        }
        ++sh.removed;
        queue.pop_front();
        release_ref(w, ref, parity);
        moved = true;
        sh.active.clear(u - sh.begin);
      } else {
        const Dim c = static_cast<Dim>(hint);
        std::uint32_t& stamp =
            link_busy_[static_cast<std::size_t>(u) * dims_ + c];
        if (stamp != stamp_now) {  // else HOL-blocked: nothing served
          stamp = stamp_now;
          if (measuring) ++m.service_ops;
          if (h.audited()) cold_of(ref).tail.push_back(c);
          ++h.hops;
          const NodeId v = flip_bit(u, c);
          sh.outbox[parity][shard_of(v)].push_back({v, ref});
          queue.pop_front();
          moved = true;
          sh.active.clear(u - sh.begin);
        }
      }
      continue;
    }
    serve_node(w, u, now, measuring, moved,
               ((clean >> (u - base)) & 1) != 0, hint);
    if (retire && queue.empty()) sh.active.clear(u - sh.begin);
  }
}

void NetworkSim::phase_forward(unsigned w, Cycle now, bool measuring) {
  Shard& sh = shards_[w];
  bool moved = false;
  std::chrono::steady_clock::time_point t0;
  if (timing_) t0 = std::chrono::steady_clock::now();
  if (active_set_) {
    // Only nodes whose bit is set can hold packets (phase-A invariant), so
    // the ascending scan serves exactly the canonical node order the full
    // sweep would. With unbounded buffers an emptied node is retired here
    // on the spot; with finite ones the phase-A maintenance scan does it
    // (occ_ is read cross-shard during this phase and may only be written
    // at the phase-A serial-equivalent point).
    const bool retire = config_.buffer_limit == 0;
    if (batch_) {
      const std::size_t words = sh.active.word_count();
      for (std::size_t wd = 0; wd < words; ++wd) {
        if (sh.active.word(wd) != 0) {
          serve_word(w, wd, now, measuring, moved, retire);
        }
      }
    } else {
      sh.active.for_each_set([&](std::uint64_t bit) {
        const NodeId u = sh.begin + static_cast<NodeId>(bit);
        const bool clean =
            steer_ && (no_faults_ || overlay_.node_clean(u));
        serve_node(w, u, now, measuring, moved, clean, kHintNone);
        if (retire && queues_[u].empty()) sh.active.clear(bit);
      });
    }
  } else {
    for (NodeId u = sh.begin; u < sh.end; ++u) {
      const bool clean = steer_ && (no_faults_ || overlay_.node_clean(u));
      serve_node(w, u, now, measuring, moved, clean, kHintNone);
    }
  }
  sh.moved = moved;
  if (timing_) {
    sh.metrics.phase_advance_ns +=
        ns_between(t0, std::chrono::steady_clock::now());
  }
}

SimMetrics NetworkSim::run() {
  metrics_ = SimMetrics{};
  metrics_.measured_cycles = config_.measure_cycles;
  next_event_ = 0;

  // Resolve the worker count. Explicit counts are honored (the
  // determinism and TSan tests need real concurrency even on small
  // machines, via allow_oversubscribe) but still deduct from the shared
  // budget so enclosing sweeps see the machine as busy; auto asks the
  // budget what is spare.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::optional<ThreadLease> lease;
  unsigned shard_count;
  if (config_.threads == 0) {
    lease.emplace(hw - 1);
    shard_count = 1 + lease->granted();
  } else {
    unsigned want = config_.threads;
    if (want > hw && !config_.allow_oversubscribe) {
      // More workers than cores only adds contention on the cycle
      // barrier; metrics are thread-count-independent anyway.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "gcube: clamping threads=%u to hardware concurrency "
                     "%u (metrics are unaffected; set allow_oversubscribe "
                     "/ --oversubscribe to override)\n",
                     want, hw);
      }
      want = hw;
    }
    lease.emplace(want - 1);
    shard_count = want;
  }
  configure_shards(shard_count);
  total_cycles_ = config_.warmup_cycles + config_.measure_cycles;
  // Crash-fault injection cycle: the environment override wins so the CI
  // harness can crash an unmodified invocation.
  crash_at_ = config_.crash_at_cycle;
  if (const char* env = std::getenv("GCUBE_CRASH_AT_CYCLE")) {
    crash_at_ = std::strtoull(env, nullptr, 10);
  }
  Cycle start = 0;
  if (!config_.resume_from.empty()) {
    const SimCheckpoint ck =
        load_checkpoint_with_fallback(config_.resume_from);
    apply_checkpoint(ck);
    start = ck.resume_cycle;
  }
  overlay_.refresh(faults_);
  no_faults_ = faults_.empty();
  if (active_set_ && start == 0) {
    // Seed every node's first fire from a dedicated pre-run draw stream
    // (cycle key ~0 cannot collide with a real cycle). First fire at
    // gap - 1 so cycle 0 fires with the same probability as any other.
    // The keys batch in SIMD lanes like the per-cycle fire buckets; the
    // geometric gap draw itself stays scalar (libm log1p).
    for (Shard& sh : shards_) {
      NodeId ids[64];
      std::uint64_t keys[64];
      for (NodeId blk = sh.begin; blk < sh.end; blk += 64) {
        const auto cnt =
            static_cast<unsigned>(std::min<NodeId>(64, sh.end - blk));
        for (unsigned j = 0; j < cnt; ++j) ids[j] = blk + j;
        counter_keys(simd_, config_.seed, ~Cycle{0}, ids, cnt, keys);
        for (unsigned j = 0; j < cnt; ++j) {
          const NodeId u = blk + j;
          if (!traffic_.eligible(u)) continue;
          CounterRng rng(keys[j]);
          const std::uint64_t gap = traffic_.injection_gap(u, rng);
          if (gap == TrafficModel::kNeverGap || gap - 1 >= total_cycles_) {
            continue;
          }
          schedule_fire(sh, 0, gap - 1, u);
        }
      }
    }
  }
  ShardPool pool(static_cast<unsigned>(shards_.size()));
  pool_ = &pool;

  // Fused cycle loop, dispatched ONCE: every worker runs the whole
  // warmup + measurement loop and meets the others only at barriers.
  // Phase A overlaps freely with other shards' phase B (parity
  // double-buffered rings, pointer-stable pools), so the common
  // unbounded-buffer cycle costs exactly one rendezvous — the end-of-cycle
  // barrier whose last arriver runs serial_commit. Finite buffers add the
  // mid-cycle barrier that makes the phase-A occupancy snapshot
  // consistent before any shard reads it for backpressure. Phases catch
  // into the shard's error slot so every worker always reaches the
  // barriers; the serial section turns the first error into a stop, and
  // it is rethrown after the join.
  ab_barrier_ = config_.buffer_limit != 0;
  stop_run_ = false;
  serial_error_ = nullptr;
  consecutive_stalls_ = 0;
  cache_base_ = RouterCacheStats{};
  cache_base_set_ = false;
  // The start cycle's fault events / wakes, serially pre-dispatch. On a
  // resume this re-runs exactly the prework the interrupted run performed
  // AFTER its capture point (capture precedes cycle_prework(next) in the
  // serial section), so the worlds re-converge bit for bit.
  cycle_prework(start);
  const std::function<void(unsigned)> job = [this, start](unsigned w) {
    Shard& sh = shards_[w];
    for (Cycle now = start;; ++now) {
      const bool measuring = now >= config_.warmup_cycles;
      try {
        phase_inject(w, now, measuring);
      } catch (...) {
        sh.error = std::current_exception();
      }
      if (ab_barrier_) pool_->barrier();
      if (sh.error == nullptr) {
        try {
          phase_forward(w, now, measuring);
        } catch (...) {
          sh.error = std::current_exception();
        }
      }
      pool_->barrier_serial([this, now] { serial_commit(now); });
      // stop_run_ was written under the barrier, so every worker reads
      // the same verdict and the loop exits in lockstep.
      if (stop_run_) break;
    }
  };
  pool.run(job);
  pool_ = nullptr;
  if (serial_error_ != nullptr) {
    const std::exception_ptr error = serial_error_;
    serial_error_ = nullptr;
    std::rethrow_exception(error);
  }
  metrics_.in_flight_at_end = in_flight_;

  // Deterministic reduction: fold shard partials in ascending shard order.
  for (const Shard& sh : shards_) metrics_.absorb(sh.metrics);
  if (cache_base_set_) {
    const RouterCacheStats delta = router_.cache_stats() - cache_base_;
    metrics_.plan_cache = delta.plan;
    metrics_.hop_cache = delta.hop;
  }
  return metrics_;
}

void NetworkSim::cycle_prework(Cycle now) {
  const bool measuring = now >= config_.warmup_cycles;
  if (measuring && !cache_base_set_) {
    // Scope the reported cache counters to the measurement window.
    cache_base_ = router_.cache_stats();
    cache_base_set_ = true;
  }
  apply_fault_events(now, measuring);
  // Wake after fault application so a repair landing this cycle is
  // already visible to the retried packets.
  if (retries_) wake_parked(now, measuring);
}

void NetworkSim::serial_commit(Cycle now) noexcept {
  // Runs on whichever worker arrives last at the end-of-cycle barrier —
  // alone, with every shard's phase writes visible, and with its own
  // writes published to all workers when the gate opens. Everything here
  // is a pure function of simulation state, so WHICH thread runs it
  // cannot affect the outcome.
  const bool measuring = now >= config_.warmup_cycles;
  // Scope guard: the serial section has several exits (errors, deadlock,
  // run end) and the commit share must be accumulated on all of them.
  struct TimerGuard {
    bool on;
    std::uint64_t* acc;
    std::chrono::steady_clock::time_point t0;
    TimerGuard(bool on_, std::uint64_t* acc_) : on(on_), acc(acc_) {
      if (on) t0 = std::chrono::steady_clock::now();
    }
    ~TimerGuard() {
      if (on) *acc += ns_between(t0, std::chrono::steady_clock::now());
    }
  } timer{timing_, &metrics_.phase_commit_ns};
  try {
    for (Shard& sh : shards_) {
      if (sh.error != nullptr) {
        if (serial_error_ == nullptr) serial_error_ = sh.error;
        sh.error = nullptr;
      }
    }
    if (serial_error_ != nullptr) {
      stop_run_ = true;
      return;
    }
    std::uint64_t injected = 0;
    std::uint64_t removed = 0;
    bool moved = false;
    for (Shard& sh : shards_) {
      injected += sh.injected;
      removed += sh.removed;
      moved = moved || sh.moved;
    }
    // In-flight depth peaks after phase A (all injections in, no removals
    // yet); the same value the serial core saw at its last injection of
    // the cycle, gated on the measurement window.
    if (measuring) {
      metrics_.peak_in_flight =
          std::max(metrics_.peak_in_flight, in_flight_ + injected);
    }
    std::uint64_t gave_up_removed = 0;
    if (retries_) commit_stranded(now, measuring, gave_up_removed);
    in_flight_ = in_flight_ + injected - removed - gave_up_removed;
    // Packets parked for backoff are waiting on a timer, not on each
    // other: only unparked in-flight packets can indicate a stall. A
    // sustained global stall with finite buffers is a deadlock.
    constexpr Cycle kDeadlockThreshold = 200;
    if (!moved && in_flight_ > parked_now_) {
      if (measuring) ++metrics_.stalled_cycles;
      if (++consecutive_stalls_ >= kDeadlockThreshold) {
        metrics_.deadlocked = true;
        stop_run_ = true;
        return;
      }
    } else {
      consecutive_stalls_ = 0;
    }
    const Cycle next = now + 1;
    const bool done = next >= config_.warmup_cycles + config_.measure_cycles;
    // Graceful halt: an external stop request (sim_cli's SIGINT/SIGTERM
    // flag) or the deterministic halt_at_cycle test knob, honored here so
    // the cycle just finished is committed cleanly. Checked BEFORE the
    // checkpoint decision so the halt's final checkpoint is written.
    const bool halt =
        !done &&
        ((config_.stop_requested != nullptr &&
          config_.stop_requested->load(std::memory_order_relaxed)) ||
         (config_.halt_at_cycle != 0 && next == config_.halt_at_cycle));
    if (!config_.checkpoint_path.empty() &&
        (halt || (config_.checkpoint_every != 0 && !done &&
                  next % config_.checkpoint_every == 0))) {
      // This is the one serial point where the whole simulation is
      // quiescent: every ring drained or parity-idle, every shard partial
      // visible. A save failure lands in serial_error_ via the enclosing
      // catch — checkpointing must never corrupt the run it protects.
      save_checkpoint(capture_checkpoint(next), config_.checkpoint_path);
    }
    if (crash_at_ != 0 && next == crash_at_) {
      // Crash-fault injection: die like a kill -9 — no unwinding, no
      // stream flushing, mid-run. Any checkpoint due at this same point
      // was already made durable (fsync + rename) above.
      std::_Exit(137);
    }
    if (halt) {
      metrics_.interrupted_at = next;
      stop_run_ = true;
      return;
    }
    if (done) {
      stop_run_ = true;
      return;
    }
    cycle_prework(next);
  } catch (...) {
    serial_error_ = std::current_exception();
    stop_run_ = true;
  }
}

CheckpointPacket NetworkSim::capture_packet(PacketRef ref) {
  const PacketHot& h = hot_of(ref);
  const PacketCold& c = cold_of(ref);
  CheckpointPacket p;
  p.dst = h.dst;
  p.hops = h.hops;
  p.plan_len = h.plan_len;
  p.flags = h.flags;
  p.id = c.id;
  p.src = c.src;
  p.created = c.created;
  p.steer_next = c.steer_next;
  p.retry_attempts = c.retry_attempts;
  p.retransmits_used = c.retransmits_used;
  if (c.plan != nullptr) {  // kPktHasPlan mirrors this by invariant
    p.plan_src = c.plan->source();
    p.plan_hops = c.plan->hops();
  }
  if (h.audited()) {
    p.tail_hops.reserve(c.tail.size());
    for (std::uint32_t i = 0; i < c.tail.size(); ++i) {
      p.tail_hops.push_back(c.tail[i]);
    }
  }
  return p;
}

PacketRef NetworkSim::restore_packet(unsigned w, const CheckpointPacket& p,
                                     const char* section) {
  const auto need = [&](bool ok, const char* detail) {
    if (!ok) throw CheckpointError(section, detail);
  };
  need(p.dst < node_count_ && p.src < node_count_,
       "packet endpoint out of range");
  constexpr std::uint32_t kKnownFlags =
      kPktSteered | kPktAdaptive | kPktHasPlan | kPktAudited;
  need((p.flags & ~kKnownFlags) == 0, "unknown packet flags");
  const bool has_plan = (p.flags & kPktHasPlan) != 0;
  need(has_plan == !p.plan_hops.empty(),
       "plan flag inconsistent with recorded plan");
  if (has_plan) {
    need(p.plan_src < node_count_, "plan source out of range");
    for (const Dim d : p.plan_hops) need(d < dims_, "plan hop out of range");
  }
  need((p.flags & kPktAudited) != 0 || p.tail_hops.empty(),
       "hop tail recorded without audit flag");
  for (const Dim d : p.tail_hops) need(d < dims_, "tail hop out of range");
  // The bounds the service loops rely on: a steered packet reads its
  // adopted plan at steer_next, a planned packet at hops, the audited
  // replay walks plan[0, plan_len) ++ tail[0, hops - plan_len).
  need(p.plan_len <= p.plan_hops.size(), "plan length beyond plan");
  if ((p.flags & kPktSteered) != 0) {
    need(!has_plan || p.steer_next < p.plan_hops.size(),
         "steer cursor out of range");
  } else if ((p.flags & kPktAdaptive) == 0) {
    need(has_plan, "unrouted packet carries no plan");
    need(p.hops <= p.plan_len, "hop count beyond plan");
  }
  need((p.flags & kPktAudited) == 0 ||
           p.hops <= p.plan_len + p.tail_hops.size(),
       "audited path shorter than hop count");

  Shard& sh = shards_[w];
  const PacketIndex slot = sh.pool.acquire();
  PacketHot& h = sh.pool.hot(slot);
  PacketCold& c = sh.pool.cold(slot);
  h.dst = p.dst;
  h.hops = p.hops;
  h.plan_len = p.plan_len;
  h.flags = p.flags;
  c.id = p.id;
  c.src = p.src;
  c.created = p.created;
  c.steer_next = p.steer_next;
  c.retry_attempts = p.retry_attempts;
  c.retransmits_used = p.retransmits_used;
  if (has_plan) {
    // Shared Route ownership is a process-local optimization; a restored
    // packet gets a private copy (route contents are what the service
    // loops read, so metrics cannot tell the difference).
    c.plan = std::make_shared<const Route>(p.plan_src, p.plan_hops);
  }
  for (const Dim d : p.tail_hops) c.tail.push_back(d);
  return make_packet_ref(w, slot);
}

SimCheckpoint NetworkSim::capture_checkpoint(Cycle next) {
  SimCheckpoint ck;
  ck.resume_cycle = next;
  ck.in_flight = in_flight_;
  ck.consecutive_stalls = consecutive_stalls_;
  ck.next_event = next_event_;

  ck.provenance.seed = config_.seed;
  ck.provenance.topology = topo_.name();
  ck.provenance.router = router_.name();
  ck.provenance.simd = to_string(simd_);
  ck.provenance.threads = static_cast<std::uint32_t>(shards_.size());
#ifdef NDEBUG
  ck.provenance.build_type = "optimized";
#else
  ck.provenance.build_type = "debug";
#endif

  CheckpointConfig& cc = ck.config;
  cc.seed = config_.seed;
  cc.injection_rate_bits =
      std::bit_cast<std::uint64_t>(config_.injection_rate);
  cc.warmup_cycles = config_.warmup_cycles;
  cc.measure_cycles = config_.measure_cycles;
  cc.service_rate = config_.service_rate;
  cc.buffer_limit = config_.buffer_limit;
  cc.hop_limit = hop_limit_;
  cc.retry_limit = config_.retry_limit;
  cc.retry_backoff_base = config_.retry_backoff_base;
  cc.park_capacity = config_.park_capacity;
  cc.retry_budget = config_.retry_budget;
  cc.retransmit_timeout = config_.retransmit_timeout;
  cc.steer = steer_ ? 1 : 0;
  cc.active_set = active_set_ ? 1 : 0;
  cc.node_count = node_count_;
  cc.dims = dims_;
  cc.traffic_fingerprint = traffic_.state_fingerprint();
  cc.schedule_fingerprint = fault_events_fingerprint(schedule_events_);
  cc.schedule_events = schedule_events_.size();

  ck.faulty_nodes = faults_.faulty_nodes();
  ck.faulty_links = faults_.faulty_links();

  // Effective queues, shard-count independent: node u's queue contents
  // followed by its pending mailbox arrivals in ascending source-shard
  // (= ascending source-node) ring order — exactly the order phase A of
  // cycle `next` would drain them. Only the parity phase A drains next
  // can hold arrivals at this serial point; the restore leaves all rings
  // empty with the merge pre-applied.
  ck.queues.resize(node_count_);
  for (NodeId u = 0; u < node_count_; ++u) {
    const Ring<PacketRef>& q = queues_[u];
    ck.queues[u].reserve(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      ck.queues[u].push_back(capture_packet(q.at(i)));
    }
  }
  const unsigned parity = static_cast<unsigned>(~next & 1);
  for (const Shard& src : shards_) {
    for (unsigned w = 0; w < shards_.size(); ++w) {
      const Ring<Arrival>& box = src.outbox[parity][w];
      for (std::size_t i = 0; i < box.size(); ++i) {
        const Arrival a = box.at(i);
        ck.queues[a.node].push_back(capture_packet(a.ref));
      }
    }
  }

  // Multimap iteration order IS the wake-processing order (wake cycle,
  // then insertion order), so serializing it linearly preserves it.
  ck.parked.reserve(parked_.size());
  for (const auto& [wake, pk] : parked_) {
    CheckpointParked cp;
    cp.wake = wake;
    cp.node = pk.node;
    cp.respawn = pk.respawn;
    cp.packet = capture_packet(pk.ref);
    ck.parked.push_back(std::move(cp));
  }

  if (active_set_) {
    // Pending fires as absolute cycles. Wheel buckets are unambiguous
    // within (now, now + kWheelSize); whether an entry sat in the wheel
    // or the far heap is unobservable and re-derived at restore. The heap
    // has no iterator, so it is drained and re-pushed (serial point, and
    // far fires are rare by construction). At most one fire per node
    // exists, so sorting by node is a canonical total order.
    const Cycle now = next - 1;
    const Cycle base = now & ~(kWheelSize - 1);
    for (Shard& sh : shards_) {
      for (std::uint64_t b = 0; b < kWheelSize; ++b) {
        for (const NodeId u : sh.wheel[b]) {
          Cycle at = base | b;
          if (at <= now) at += kWheelSize;
          ck.fires.push_back({at, u});
        }
      }
      std::vector<std::uint64_t> far;
      far.reserve(sh.far_fires.size());
      while (!sh.far_fires.empty()) {
        far.push_back(sh.far_fires.top());
        sh.far_fires.pop();
      }
      for (const std::uint64_t key : far) {
        ck.fires.push_back({key >> kFireNodeBits,
                            static_cast<NodeId>(key & kFireNodeMask)});
        sh.far_fires.push(key);
      }
    }
    std::sort(ck.fires.begin(), ck.fires.end(),
              [](const CheckpointFire& a, const CheckpointFire& b) {
                return a.node < b.node;
              });
  }

  ck.link_stamps = link_busy_;

  // Fold every shard partial into the snapshot (commutative/associative
  // integer adds, same as the end-of-run reduction). The resumed run
  // restores this into the global slot with its shard partials zeroed, so
  // its final fold equals the uninterrupted run's.
  ck.metrics = metrics_;
  for (const Shard& sh : shards_) ck.metrics.absorb(sh.metrics);
  return ck;
}

void NetworkSim::apply_checkpoint(const SimCheckpoint& ck) {
  // Semantic-parameter guard: any mismatch here would change the
  // simulated trajectory, so refuse with the field's name. threads /
  // SIMD / batch are deliberately NOT checked — metrics are bit-identical
  // across them, which is the whole point of resuming under whatever
  // execution shape the new host offers.
  const auto match = [](bool ok, const char* field) {
    if (!ok) {
      throw CheckpointError(
          "config", std::string("resume configuration mismatch: ") + field);
    }
  };
  const CheckpointConfig& cc = ck.config;
  match(cc.seed == config_.seed, "seed");
  match(cc.injection_rate_bits ==
            std::bit_cast<std::uint64_t>(config_.injection_rate),
        "injection_rate");
  match(cc.warmup_cycles == config_.warmup_cycles, "warmup_cycles");
  match(cc.measure_cycles == config_.measure_cycles, "measure_cycles");
  match(cc.service_rate == config_.service_rate, "service_rate");
  match(cc.buffer_limit == config_.buffer_limit, "buffer_limit");
  match(cc.hop_limit == hop_limit_, "reroute_hop_limit");
  match(cc.retry_limit == config_.retry_limit, "retry_limit");
  match(cc.retry_backoff_base == config_.retry_backoff_base,
        "retry_backoff_base");
  match(cc.park_capacity == config_.park_capacity, "park_capacity");
  match(cc.retry_budget == config_.retry_budget, "retry_budget");
  match(cc.retransmit_timeout == config_.retransmit_timeout,
        "retransmit_timeout");
  match((cc.steer != 0) == steer_, "fabric steering");
  match((cc.active_set != 0) == active_set_, "active_set");
  match(cc.node_count == node_count_, "node_count");
  match(cc.dims == dims_, "dims");
  match(cc.traffic_fingerprint == traffic_.state_fingerprint(),
        "traffic model");
  match(cc.schedule_fingerprint ==
            fault_events_fingerprint(schedule_events_),
        "fault schedule");
  match(ck.resume_cycle >= 1 && ck.resume_cycle < total_cycles_,
        "resume cycle");
  match(ck.next_event <= schedule_events_.size(), "fault schedule cursor");

  // Fault state. Dynamic mode rebuilds the live set by replaying the
  // captured lists in insertion order (identical vectors AND hash state);
  // the overlay refresh that follows in run() sees the generation bump
  // and rebuilds fully. Static mode cannot be mutated — verify instead.
  if (live_faults_ != nullptr) {
    live_faults_->clear();
    for (const NodeId u : ck.faulty_nodes) {
      if (u >= node_count_) {
        throw CheckpointError("faults", "faulty node out of range");
      }
      live_faults_->fail_node(u);
    }
    for (const LinkId& l : ck.faulty_links) {
      if (l.lo >= node_count_ || l.dim >= dims_) {
        throw CheckpointError("faults", "faulty link out of range");
      }
      live_faults_->fail_link(l.lo, l.dim);
    }
  } else if (faults_.faulty_nodes() != ck.faulty_nodes ||
             faults_.faulty_links() != ck.faulty_links) {
    throw CheckpointError("faults",
                          "static fault set differs from the checkpointed "
                          "one (element-wise, insertion order included)");
  }

  if (ck.queues.size() != node_count_) {
    throw CheckpointError("packets", "queue table size != node count");
  }
  std::uint64_t queued = 0;
  for (NodeId u = 0; u < node_count_; ++u) {
    const unsigned w = shard_of(u);
    for (const CheckpointPacket& p : ck.queues[u]) {
      queues_[u].push_back(restore_packet(w, p, "packets"));
      ++queued;
    }
    if (active_set_ && !ck.queues[u].empty()) {
      Shard& sh = shards_[w];
      sh.active.set(u - sh.begin);
    }
  }

  for (const CheckpointParked& cp : ck.parked) {
    if (!retries_) {
      throw CheckpointError("parked",
                            "parked entries without retry recovery enabled");
    }
    if (cp.node >= node_count_) {
      throw CheckpointError("parked", "parked node out of range");
    }
    const PacketRef ref = restore_packet(shard_of(cp.node), cp.packet,
                                         "parked");
    parked_.emplace(cp.wake, Parked{cp.node, ref, cp.respawn});
    if (!cp.respawn) ++parked_count_[cp.node];
    ++parked_now_;
  }
  // Closing the books: everything in flight is queued or parked, exactly.
  if (queued + parked_.size() != ck.in_flight) {
    throw CheckpointError(
        "globals", "in_flight does not equal queued + parked packets");
  }

  if (active_set_) {
    for (const CheckpointFire& f : ck.fires) {
      if (f.node >= node_count_) {
        throw CheckpointError("fires", "fire node out of range");
      }
      if (f.at < ck.resume_cycle) {
        throw CheckpointError("fires", "fire due in the past");
      }
      Shard& sh = shards_[shard_of(f.node)];
      if (sh.armed[f.node - sh.begin] != 0) {
        throw CheckpointError("fires", "duplicate fire for one node");
      }
      schedule_fire(sh, ck.resume_cycle - 1, f.at, f.node);
    }
  } else if (!ck.fires.empty()) {
    throw CheckpointError("fires",
                          "fires recorded without active_set mode");
  }

  if (ck.link_stamps.size() != link_busy_.size()) {
    throw CheckpointError("links",
                          "stamp table size != node_count * dims");
  }
  link_busy_ = ck.link_stamps;

  metrics_ = ck.metrics;
  in_flight_ = ck.in_flight;
  consecutive_stalls_ = ck.consecutive_stalls;
  next_event_ = static_cast<std::size_t>(ck.next_event);
}

}  // namespace gcube
