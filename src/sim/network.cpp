#include "sim/network.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "sim/sweep.hpp"
#include "util/error.hpp"

namespace gcube {

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel* traffic)
    : topo_(topo),
      router_(router),
      faults_(faults),
      config_(config),
      default_traffic_(topo.node_count(), config.injection_rate, faults,
                       config.seed),
      traffic_(traffic != nullptr ? *traffic : default_traffic_),
      hop_limit_(config.reroute_hop_limit != 0 ? config.reroute_hop_limit
                                               : 16 * topo.dims() + 64) {
  GCUBE_REQUIRE(config.service_rate >= 1, "service rate must be positive");
  GCUBE_REQUIRE(config.measure_cycles >= 1, "nothing to measure");
  GCUBE_REQUIRE(config.threads <= kMaxPoolShards,
                "thread count exceeds the packet-reference shard space");
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config)
    : NetworkSim(topo, router, faults, config, nullptr) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       const FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic)
    : NetworkSim(topo, router, faults, config, &traffic) {}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 nullptr) {
  attach_schedule(faults, schedule);
}

NetworkSim::NetworkSim(const Topology& topo, const Router& router,
                       FaultSet& faults, const SimConfig& config,
                       const TrafficModel& traffic,
                       const FaultSchedule& schedule)
    : NetworkSim(topo, router, static_cast<const FaultSet&>(faults), config,
                 &traffic) {
  attach_schedule(faults, schedule);
}

void NetworkSim::attach_schedule(FaultSet& faults,
                                 const FaultSchedule& schedule) {
  const std::vector<FaultEvent>& events = schedule.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    GCUBE_REQUIRE(e.node < topo_.node_count(),
                  "fault event node out of range");
    GCUBE_REQUIRE(e.kind == FaultEvent::Kind::kNode || e.dim < topo_.dims(),
                  "fault event dimension out of range");
    // apply_fault_events consumes the list front to back and would
    // silently skip any event filed behind a later-cycle one.
    GCUBE_REQUIRE(i == 0 || events[i - 1].cycle <= e.cycle,
                  "fault schedule events must be sorted by cycle");
  }
  live_faults_ = &faults;
  schedule_events_ = events;
}

void NetworkSim::configure_shards(unsigned shard_count) {
  const std::uint64_t nodes = topo_.node_count();
  auto count = static_cast<std::uint64_t>(shard_count);
  if (count > nodes) count = nodes;  // empty shards buy nothing
  if (count > kMaxPoolShards) count = kMaxPoolShards;
  if (count == 0) count = 1;
  shards_.clear();
  shards_.resize(count);
  range_base_ = static_cast<NodeId>(nodes / count);
  range_rem_ = static_cast<NodeId>(nodes % count);
  NodeId begin = 0;
  for (std::uint64_t s = 0; s < count; ++s) {
    Shard& sh = shards_[s];
    sh.begin = begin;
    sh.end = begin + range_base_ + (s < range_rem_ ? 1 : 0);
    sh.outbox.resize(count);
    begin = sh.end;
  }
  queues_.assign(nodes, {});
  link_busy_.assign(nodes * topo_.dims(), 0);
  occ_.assign(config_.buffer_limit != 0 ? nodes : 0, 0);
  in_flight_ = 0;
}

unsigned NetworkSim::shard_of(NodeId u) const noexcept {
  // Contiguous split: the first range_rem_ shards are one node wider.
  const NodeId wide = range_base_ + 1;
  const NodeId split = range_rem_ * wide;
  if (u < split) return static_cast<unsigned>(u / wide);
  return static_cast<unsigned>(
      range_rem_ + (u - split) / (range_base_ == 0 ? 1 : range_base_));
}

void NetworkSim::release_ref(unsigned w, PacketRef ref) {
  const unsigned home = packet_ref_shard(ref);
  if (home == w) {
    shards_[home].pool.release(packet_ref_slot(ref));
  } else {
    // Foreign pools may not be touched from phase B (their owners release
    // into them concurrently); park the slot for the serial commit.
    shards_[w].released.push_back(ref);
  }
}

std::size_t NetworkSim::discard_packets_at(NodeId u) {
  std::size_t lost = 0;
  Ring<PacketRef>& queue = queues_[u];
  while (!queue.empty()) {
    const PacketRef ref = queue.front();
    queue.pop_front();
    shards_[packet_ref_shard(ref)].pool.release(packet_ref_slot(ref));
    ++lost;
  }
  // Packets already forwarded to u but still parked in a mailbox are lost
  // with it too; rotate each ring once, keeping survivors in order.
  const unsigned dst_shard = shard_of(u);
  for (Shard& src : shards_) {
    Ring<Arrival>& box = src.outbox[dst_shard];
    for (std::size_t i = box.size(); i > 0; --i) {
      const Arrival a = box.front();
      box.pop_front();
      if (a.node == u) {
        shards_[packet_ref_shard(a.ref)].pool.release(packet_ref_slot(a.ref));
        ++lost;
      } else {
        box.push_back(a);
      }
    }
  }
  return lost;
}

void NetworkSim::apply_fault_events(Cycle now, bool measuring) {
  while (next_event_ < schedule_events_.size() &&
         schedule_events_[next_event_].cycle <= now) {
    const FaultEvent& e = schedule_events_[next_event_++];
    if (measuring) ++metrics_.fault_events;
    if (e.kind == FaultEvent::Kind::kLink) {
      live_faults_->fail_link(e.node, e.dim);
      continue;
    }
    live_faults_->fail_node(e.node);
    // Packets sitting at (or in transit to) the dead node are lost with it.
    const std::size_t lost = discard_packets_at(e.node);
    if (lost > 0) {
      in_flight_ -= lost;
      if (measuring) metrics_.orphaned_by_node_fault += lost;
    }
  }
}

void NetworkSim::phase_inject(unsigned w, Cycle now, bool measuring) {
  Shard& sh = shards_[w];
  sh.injected = 0;
  sh.removed = 0;
  sh.moved = false;
  // Drain last cycle's arrivals in ascending source-shard order; shards
  // are contiguous and ascending, so this equals ascending source-node
  // order — the canonical queue order, independent of shard count.
  const auto shard_count = static_cast<unsigned>(shards_.size());
  for (unsigned s = 0; s < shard_count; ++s) {
    Ring<Arrival>& box = shards_[s].outbox[w];
    while (!box.empty()) {
      const Arrival a = box.front();
      box.pop_front();
      queues_[a.node].push_back(a.ref);
    }
  }
  const std::uint64_t node_count = topo_.node_count();
  SimMetrics& m = sh.metrics;
  for (NodeId u = sh.begin; u < sh.end; ++u) {
    if (!traffic_.eligible(u)) continue;
    // Per-(node, cycle) draw stream: injection and destination choice are
    // pure functions of (seed, u, now), never of sweep or thread order.
    CounterRng rng(counter_key(config_.seed, u, now));
    if (!traffic_.should_inject(u, rng)) continue;
    // The destination draw happens before the buffer check so that offered
    // load (`generated`, and the draw stream behind it) is identical across
    // buffer_limit settings; a blocked injection differs only in being
    // counted in injections_blocked instead of entering the network.
    const NodeId dst = traffic_.pick_destination(u, rng);
    if (measuring) ++m.generated;
    if (config_.buffer_limit != 0 &&
        queues_[u].size() >= config_.buffer_limit) {
      if (measuring) ++m.injections_blocked;
      continue;
    }
    std::shared_ptr<const Route> planned = router_.plan_shared(u, dst);
    if (planned == nullptr) {
      if (measuring) ++m.dropped;
      continue;
    }
    const PacketIndex slot = sh.pool.acquire();
    Packet& p = sh.pool[slot];
    p.id = now * node_count + u;  // unique without a shared counter
    p.src = u;
    p.dst = dst;
    p.created = now;
    p.plan_len = static_cast<std::uint32_t>(planned->length());
    p.plan = std::move(planned);
    p.next_hop = 0;
    p.adaptive = false;
    p.tail.clear();
    queues_[u].push_back(make_packet_ref(w, slot));
    ++sh.injected;
  }
  if (config_.buffer_limit != 0) {
    // Publish committed occupancy for this cycle's backpressure checks.
    for (NodeId u = sh.begin; u < sh.end; ++u) {
      occ_[u] = static_cast<std::uint32_t>(queues_[u].size());
    }
  }
}

void NetworkSim::phase_forward(unsigned w, Cycle now, bool measuring) {
  Shard& sh = shards_[w];
  SimMetrics& m = sh.metrics;
  const Dim n = topo_.dims();
  bool moved = false;
  // Epoch-stamped link reservations: a directed link is free this cycle if
  // its stamp is older than now + 1 (stamps store now + 1 to keep 0 free).
  // Every link written here starts at a node this shard owns.
  for (NodeId u = sh.begin; u < sh.end; ++u) {
    Ring<PacketRef>& queue = queues_[u];
    for (std::uint32_t served = 0;
         served < config_.service_rate && !queue.empty(); ++served) {
      const PacketRef ref = queue.front();
      Packet& p = packet(ref);
      // An adaptive packet no longer carries a complete route, so arrival
      // is detected positionally; a planned packet arrives exactly when
      // its route is consumed (the planner guarantees it ends at dst).
      const bool arrived = p.adaptive ? u == p.dst : p.at_destination();
      if (arrived) {
        NodeId replay = p.src;
        for (std::uint32_t h = 0; h < p.next_hop; ++h) {
          replay = flip_bit(replay, p.hop_at(h));
        }
        GCUBE_REQUIRE(replay == p.dst,
                      "delivered packet's recorded path must end at dst");
        if (measuring) {
          ++m.delivered;
          m.total_latency += now - p.created;
          m.total_hops += p.next_hop;
          m.latency_histogram.record(now - p.created);
          ++m.service_ops;
        }
        ++sh.removed;
        queue.pop_front();
        release_ref(w, ref);
        moved = true;
        continue;
      }
      // A dropped packet leaves the network for good; dropping counts as
      // progress for the stall detector.
      const auto drop = [&]() {
        if (measuring) ++m.dropped_en_route;
        ++sh.removed;
        queue.pop_front();
        release_ref(w, ref);
        moved = true;
      };
      Dim c;
      if (p.adaptive) {
        if (p.next_hop >= hop_limit_) {
          drop();  // livelock guard: stepwise re-plans cycled
          continue;
        }
        const std::optional<Dim> nh = router_.next_hop(u, p.dst);
        if (!nh || !topo_.has_link(u, *nh) ||
            !faults_.link_usable(u, *nh)) {
          drop();  // no usable continuation (dst dead or region cut off)
          continue;
        }
        c = *nh;
      } else {
        c = p.plan->hops()[p.next_hop];
        if (!topo_.has_link(u, c) || !faults_.link_usable(u, c)) {
          // The precomputed next link died under the packet: re-plan from
          // here with current fault knowledge instead of traversing it.
          if (measuring) ++m.reroutes;
          p.adaptive = true;
          p.plan_len = p.next_hop;  // abandon the unconsumed planned tail
          const std::optional<Dim> nh = router_.next_hop(u, p.dst);
          if (!nh || !topo_.has_link(u, *nh) ||
              !faults_.link_usable(u, *nh)) {
            drop();
            continue;
          }
          c = *nh;
        }
      }
      Cycle& stamp = link_busy_[static_cast<std::size_t>(u) * n + c];
      if (stamp == now + 1) break;  // link busy: head-of-line blocking
      const NodeId v = flip_bit(u, c);
      if (config_.buffer_limit != 0 && occ_[v] >= config_.buffer_limit) {
        break;  // backpressure against start-of-cycle committed occupancy
      }
      stamp = now + 1;
      if (measuring) ++m.service_ops;
      if (p.adaptive) p.tail.push_back(c);
      ++p.next_hop;
      sh.outbox[shard_of(v)].push_back({v, ref});
      queue.pop_front();
      moved = true;
    }
  }
  sh.moved = moved;
}

SimMetrics NetworkSim::run() {
  metrics_ = SimMetrics{};
  metrics_.measured_cycles = config_.measure_cycles;
  next_event_ = 0;

  // Resolve the worker count. Explicit counts are honored exactly (the
  // determinism and TSan tests need real concurrency even on small
  // machines) but still deduct from the shared budget so enclosing sweeps
  // see the machine as busy; auto asks the budget what is spare.
  std::optional<ThreadLease> lease;
  unsigned shard_count;
  if (config_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    lease.emplace(hw - 1);
    shard_count = 1 + lease->granted();
  } else {
    lease.emplace(config_.threads - 1);
    shard_count = config_.threads;
  }
  configure_shards(shard_count);
  ShardPool pool(static_cast<unsigned>(shards_.size()));
  pool_ = &pool;

  // One job per cycle: inject phase, barrier, forward phase. Phases catch
  // into the shard's error slot so every worker always reaches the
  // barrier; failures are rethrown serially, in shard order.
  const std::function<void(unsigned)> job = [this](unsigned w) {
    Shard& sh = shards_[w];
    try {
      phase_inject(w, cycle_now_, cycle_measuring_);
    } catch (...) {
      sh.error = std::current_exception();
    }
    pool_->barrier();
    if (sh.error == nullptr) {
      try {
        phase_forward(w, cycle_now_, cycle_measuring_);
      } catch (...) {
        sh.error = std::current_exception();
      }
    }
  };

  RouterCacheStats cache_base{};
  bool cache_base_set = false;
  const Cycle total = config_.warmup_cycles + config_.measure_cycles;
  // With finite buffers a sustained global stall (packets in flight, none
  // moving) is a deadlock: declared after this many consecutive cycles.
  constexpr Cycle kDeadlockThreshold = 200;
  Cycle consecutive_stalls = 0;
  for (Cycle now = 0; now < total; ++now) {
    const bool measuring = now >= config_.warmup_cycles;
    if (measuring && !cache_base_set) {
      // Scope the reported cache counters to the measurement window.
      cache_base = router_.cache_stats();
      cache_base_set = true;
    }
    apply_fault_events(now, measuring);
    cycle_now_ = now;
    cycle_measuring_ = measuring;
    pool.run(job);
    for (Shard& sh : shards_) {
      if (sh.error != nullptr) {
        const std::exception_ptr error = sh.error;
        for (Shard& other : shards_) other.error = nullptr;
        pool_ = nullptr;
        std::rethrow_exception(error);
      }
    }
    // Serial commit: reclaim cross-shard packet slots, then the global
    // accounting no shard can do alone.
    std::uint64_t injected = 0;
    std::uint64_t removed = 0;
    bool moved = false;
    for (Shard& sh : shards_) {
      injected += sh.injected;
      removed += sh.removed;
      moved = moved || sh.moved;
      while (!sh.released.empty()) {
        const PacketRef ref = sh.released.front();
        sh.released.pop_front();
        shards_[packet_ref_shard(ref)].pool.release(packet_ref_slot(ref));
      }
    }
    // In-flight depth peaks after phase A (all injections in, no removals
    // yet); the same value the serial core saw at its last injection of
    // the cycle, now gated on the measurement window.
    if (measuring) {
      metrics_.peak_in_flight =
          std::max(metrics_.peak_in_flight, in_flight_ + injected);
    }
    in_flight_ = in_flight_ + injected - removed;
    if (!moved && in_flight_ > 0) {
      if (measuring) ++metrics_.stalled_cycles;
      if (++consecutive_stalls >= kDeadlockThreshold) {
        metrics_.deadlocked = true;
        break;
      }
    } else {
      consecutive_stalls = 0;
    }
  }
  pool_ = nullptr;

  // Deterministic reduction: fold shard partials in ascending shard order.
  for (const Shard& sh : shards_) metrics_.absorb(sh.metrics);
  if (cache_base_set) {
    const RouterCacheStats delta = router_.cache_stats() - cache_base;
    metrics_.plan_cache = delta.plan;
    metrics_.hop_cache = delta.hop;
  }
  return metrics_;
}

}  // namespace gcube
