// Persistent worker pool for the node-sharded simulation cycle loop.
//
// The simulator executes two phases per cycle across S workers with a full
// synchronization point between them; at thousands of cycles per run,
// spawning threads per cycle (or even per phase) would dominate the work.
// A ShardPool instead keeps S - 1 workers parked for the lifetime of a
// run() — the calling thread is always worker 0 — and dispatches one job
// per cycle through an epoch counter. Inside a job, barrier() lines every
// worker up between phases.
//
// Synchronization is spin-then-yield on atomics rather than mutex +
// condvar: the inter-phase gaps are microseconds, futex round trips would
// swamp them, and the yield fallback keeps oversubscribed runs (more
// workers than cores — the determinism and TSan tests do this on small
// machines) from starving the workers that hold the work. All handshakes
// are release/acquire pairs, so everything a worker wrote before arriving
// at a barrier is visible to every worker after it — the property the
// simulator's cross-shard mailbox reads rely on, and what ThreadSanitizer
// checks end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcube {

class ShardPool {
 public:
  /// A pool of `threads` workers total (>= 1); `threads - 1` are spawned,
  /// the caller of run() acts as worker 0.
  explicit ShardPool(unsigned threads);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs job(0) .. job(threads - 1) concurrently (job(0) on the calling
  /// thread) and returns once all are done. The first exception escaping a
  /// job is rethrown here. A job that calls barrier() must not throw
  /// before its last barrier() — every worker has to arrive or the others
  /// spin forever — so jobs with internal phases catch per phase and
  /// report after the join (the simulator does exactly that).
  void run(const std::function<void(unsigned)>& job);

  /// Full synchronization point inside a job: no worker returns until all
  /// `threads` workers have arrived. Release/acquire on both edges, so
  /// pre-barrier writes are visible post-barrier.
  void barrier() noexcept;

 private:
  void worker_loop(unsigned worker);
  void record_error() noexcept;
  static void spin_wait(const std::atomic<std::uint64_t>& flag,
                        std::uint64_t last_seen) noexcept;

  std::vector<std::jthread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;  // valid per epoch

  std::atomic<std::uint64_t> epoch_{0};     // bumped to dispatch a job
  std::atomic<unsigned> done_{0};           // workers finished this epoch
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> bar_gen_{0};   // barrier generation
  std::atomic<unsigned> bar_arrived_{0};

  std::atomic<bool> has_error_{false};
  std::exception_ptr first_error_;          // guarded by error_mutex_
  std::mutex error_mutex_;
};

}  // namespace gcube
