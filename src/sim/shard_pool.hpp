// Persistent worker pool for the node-sharded simulation cycle loop.
//
// The simulator executes its whole cycle loop as ONE dispatched job: every
// worker runs the loop locally and lines up with the others at barriers
// inside it. At thousands of cycles per run, even a per-cycle dispatch
// (epoch bump + done-count join) would cost two extra rendezvous per
// cycle, so run() is paid once per simulation and each cycle costs only
// its barriers — one on the fused fast path (phase A and B overlap freely
// across shards), two when a mid-cycle snapshot point is required.
//
// barrier_serial() is the fusion device: the LAST worker to arrive runs a
// caller-supplied serial section (global accounting, fault-schedule
// application) before opening the gate, so the per-cycle serial commit
// needs no extra rendezvous and no handoff to a distinguished thread.
//
// Waiting is three-staged: spin with a pause instruction (the inter-phase
// gaps are microseconds when every worker has a core), then a bounded
// number of sched_yields (gives the scheduler a chance when slightly
// oversubscribed), then a real futex park via std::atomic::wait — so
// workers > cores degrades to blocking instead of burning the cores the
// working threads need. Every gate opener notifies; the notify is cheap
// when nobody is parked. All handshakes are release/acquire pairs, so
// everything a worker wrote before arriving at a barrier is visible to
// every worker after it — the property the simulator's cross-shard
// mailbox reads rely on, and what ThreadSanitizer checks end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcube {

namespace detail {
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
}  // namespace detail

class ShardPool {
 public:
  /// A pool of `threads` workers total (>= 1); `threads - 1` are spawned,
  /// the caller of run() acts as worker 0.
  explicit ShardPool(unsigned threads);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs job(0) .. job(threads - 1) concurrently (job(0) on the calling
  /// thread) and returns once all are done. The first exception escaping a
  /// job is rethrown here. A job that calls barrier() must not throw
  /// before its last barrier() — every worker has to arrive or the others
  /// wait forever — so jobs with internal phases catch per phase and
  /// report after the join (the simulator does exactly that).
  void run(const std::function<void(unsigned)>& job);

  /// Full synchronization point inside a job: no worker returns until all
  /// `threads` workers have arrived. Release/acquire on both edges, so
  /// pre-barrier writes are visible post-barrier.
  void barrier() noexcept {
    barrier_serial([] {});
  }

  /// Barrier with a fused serial section: the last worker to arrive runs
  /// fn() — alone, with every pre-barrier write of every worker visible —
  /// before opening the gate, and fn's writes are visible to all workers
  /// after the barrier. fn must not throw (catch inside and report through
  /// shared state) and must not depend on WHICH thread runs it.
  template <typename F>
  void barrier_serial(F&& fn) noexcept {
    if (workers_.empty()) {  // single-worker pool: no rendezvous at all
      fn();
      return;
    }
    const std::uint64_t gen = bar_gen_.load(std::memory_order_acquire);
    // The last arriver resets the count *before* opening the gate, so the
    // next barrier's arrivals can't be lost; everyone else waits on the
    // generation. A worker can only reach barrier N+1 after observing the
    // generation bump of barrier N, so its captured `gen` is always
    // current.
    if (bar_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        threads()) {
      fn();
      bar_arrived_.store(0, std::memory_order_relaxed);
      bar_gen_.fetch_add(1, std::memory_order_release);
      bar_gen_.notify_all();
    } else {
      wait_for(bar_gen_, gen);
    }
  }

 private:
  void worker_loop(unsigned worker);
  void record_error() noexcept;

  /// Spin, then yield, then park until `flag` moves off `last_seen`.
  template <typename T>
  void wait_for(const std::atomic<T>& flag, T last_seen) const noexcept {
    // Stage 1: pure spin — the common multi-core case where the other
    // workers are mid-phase and the gate opens within microseconds.
    // Pointless when workers outnumber cores: the flag can only move
    // after the kernel runs someone else, so go straight to yielding.
    const int spin_budget = oversubscribed_ ? 0 : 128;
    for (int spins = 0; spins < spin_budget; ++spins) {
      if (flag.load(std::memory_order_acquire) != last_seen) return;
      detail::cpu_relax();
    }
    // Stage 2: bounded yields — slight oversubscription, give the
    // scheduler a chance to run whoever holds the work.
    for (int yields = 0; yields < 32; ++yields) {
      if (flag.load(std::memory_order_acquire) != last_seen) return;
      std::this_thread::yield();
    }
    // Stage 3: futex park — workers > cores (or a long serial section).
    // Burning the only core with yields is precisely what made threads=4
    // slower than threads=1 on small machines.
    T seen = flag.load(std::memory_order_acquire);
    while (seen == last_seen) {
      flag.wait(seen, std::memory_order_acquire);
      seen = flag.load(std::memory_order_acquire);
    }
  }

  std::vector<std::jthread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;  // valid per epoch
  bool oversubscribed_ = false;  // workers > cores: skip the spin stage

  // Each handshake atomic gets its own cache line: arrivers RMW one
  // counter while waiters spin-load another, and sharing a line would
  // ping-pong it on every crossing.
  alignas(64) std::atomic<std::uint64_t> epoch_{0};  // bumped per dispatch
  alignas(64) std::atomic<unsigned> done_{0};  // workers finished the epoch
  alignas(64) std::atomic<std::uint64_t> bar_gen_{0};  // barrier generation
  alignas(64) std::atomic<unsigned> bar_arrived_{0};
  alignas(64) std::atomic<bool> stop_{false};

  std::atomic<bool> has_error_{false};
  std::exception_ptr first_error_;          // guarded by error_mutex_
  std::mutex error_mutex_;
};

}  // namespace gcube
