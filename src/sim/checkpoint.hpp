// Versioned, checksummed checkpoint/restore for the network simulator.
//
// A checkpoint is the COMPLETE run state at the cycle-barrier serial point,
// captured in canonical (shard-count-independent) form: per-node effective
// packet queues (current queue contents plus the pending mailbox arrivals,
// pre-merged in the exact order the next phase A would drain them), the
// parked retry/retransmit entries in wake order, the pending injection
// fires as absolute (cycle, node) pairs, the directed-link epoch stamps,
// the live fault set with the fault-schedule cursor, and the folded
// SimMetrics. The counter RNG needs no stream state — every draw is a pure
// function of (seed, node, cycle) — so RNG identity is just the seed plus
// the resume cycle. Resuming from a checkpoint therefore reproduces the
// uninterrupted run's metrics bit for bit, for ANY thread count, SIMD
// level, or batch toggle on either side of the crash (the same contract
// the live simulator already enforces across those knobs).
//
// On-disk format (little-endian):
//
//   8-byte magic "GCUBECKP", u32 format version, then a fixed sequence of
//   sections, each framed as
//     u32 section id | u64 payload length | u32 CRC32 | payload bytes
//   with the CRC computed over id + length + payload. The loader knows
//   which section it expects next, so every detectable corruption — bad
//   magic, truncation, a flipped frame or payload byte — is refused with
//   an error NAMING that section; nothing is ever loaded silently wrong.
//
// Writes are atomic (tmp file + rename) with a two-generation rotation:
// the previous checkpoint survives as "<path>.1", and the fallback loader
// drops back to it (with a stderr note) when the newest generation is
// corrupt or truncated — so a crash mid-write never strands a run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "util/bits.hpp"

namespace gcube {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// A checkpoint load failure, carrying the name of the section that failed
/// validation ("header" for magic/version problems, "config" for a resume
/// under mismatched simulation parameters). The what() string always
/// contains the section name, so callers and logs get the line item.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(std::string section, const std::string& detail)
      : std::runtime_error("checkpoint section '" + section +
                           "': " + detail),
        section_(std::move(section)) {}

  [[nodiscard]] const std::string& section() const noexcept {
    return section_;
  }

 private:
  std::string section_;
};

/// One serialized in-flight packet: the hot record, the cold identity and
/// recovery counters, the carried Route (explicit hop list — shared
/// ownership is a process-local optimization, so restore rebuilds a
/// private copy), and the audited hop tail.
struct CheckpointPacket {
  NodeId dst = 0;
  std::uint32_t hops = 0;
  std::uint32_t plan_len = 0;
  std::uint32_t flags = 0;
  std::uint64_t id = 0;
  NodeId src = 0;
  Cycle created = 0;
  std::uint32_t steer_next = 0;
  std::uint16_t retry_attempts = 0;
  std::uint16_t retransmits_used = 0;
  NodeId plan_src = 0;             // kPktHasPlan only
  std::vector<Dim> plan_hops;      // kPktHasPlan only
  std::vector<Dim> tail_hops;      // kPktAudited only
};

/// One parked retry/retransmit entry, in multimap iteration order (wake
/// cycle, then insertion order) — the order wake_parked consumes.
struct CheckpointParked {
  Cycle wake = 0;
  NodeId node = 0;
  bool respawn = false;
  CheckpointPacket packet;
};

/// One pending injection fire, as the absolute cycle it is due. Stored
/// sorted by node (at most one fire per node exists); whether an entry sat
/// in the timing wheel or the far heap is unobservable and re-derived.
struct CheckpointFire {
  Cycle at = 0;
  NodeId node = 0;
};

/// Informational provenance — which configuration produced this file.
/// Everything load-bearing for resume safety lives in CheckpointConfig;
/// these fields are for humans and tooling (threads/simd/build may all
/// legitimately differ on resume without affecting the metrics contract).
struct CheckpointProvenance {
  std::uint64_t seed = 0;
  std::string topology;
  std::string router;
  std::string simd;
  std::uint32_t threads = 0;
  std::string build_type;
};

/// The semantic simulation parameters a resume MUST match: any difference
/// here changes the simulated trajectory, so the loader refuses with an
/// error naming the mismatched field. threads / SIMD level / batch are
/// deliberately absent — metrics are bit-identical across them.
struct CheckpointConfig {
  std::uint64_t seed = 0;
  std::uint64_t injection_rate_bits = 0;  // exact double bit pattern
  Cycle warmup_cycles = 0;
  Cycle measure_cycles = 0;
  std::uint32_t service_rate = 0;
  std::uint32_t buffer_limit = 0;
  std::uint32_t hop_limit = 0;  // effective (auto value resolved)
  std::uint32_t retry_limit = 0;
  Cycle retry_backoff_base = 0;
  std::uint32_t park_capacity = 0;
  std::uint32_t retry_budget = 0;
  Cycle retransmit_timeout = 0;
  std::uint8_t steer = 0;       // effective fabric steering
  std::uint8_t active_set = 0;  // injection realization differs across this
  std::uint64_t node_count = 0;
  std::uint32_t dims = 0;
  std::uint64_t traffic_fingerprint = 0;
  std::uint64_t schedule_fingerprint = 0;
  std::uint64_t schedule_events = 0;
};

struct SimCheckpoint {
  CheckpointProvenance provenance;
  CheckpointConfig config;
  /// The cycle the resumed loop starts at (the checkpoint was captured at
  /// the serial point ENTERING this cycle).
  Cycle resume_cycle = 0;
  std::uint64_t in_flight = 0;
  Cycle consecutive_stalls = 0;
  std::uint64_t next_event = 0;  // fault-schedule cursor
  /// Live fault state in insertion order, so a dynamic-mode restore
  /// replays it into an identical FaultSet (vector order included).
  std::vector<NodeId> faulty_nodes;
  std::vector<LinkId> faulty_links;
  /// queues[u] = node u's effective queue (see the header comment),
  /// exactly node_count entries.
  std::vector<std::vector<CheckpointPacket>> queues;
  std::vector<CheckpointParked> parked;
  std::vector<CheckpointFire> fires;
  /// Directed link epoch stamps, node-major (node_count * dims entries).
  std::vector<std::uint32_t> link_stamps;
  /// Global metrics with every shard partial already folded in.
  SimMetrics metrics;
};

/// CRC32 (IEEE, reflected 0xEDB88320) over `len` bytes, continuing from
/// `crc` (pass 0 to start). Exposed for tests and external tooling.
[[nodiscard]] std::uint32_t checkpoint_crc32(const void* data,
                                             std::size_t len,
                                             std::uint32_t crc = 0) noexcept;

/// Serializes `ck` to `path` atomically: the bytes land in "<path>.tmp",
/// are flushed and fsync'd, any existing "<path>" rotates to "<path>.1"
/// (replacing the generation before it), and the tmp file renames into
/// place. Throws std::runtime_error on I/O failure — the previous
/// generations are untouched in that case.
void save_checkpoint(const SimCheckpoint& ck, const std::string& path);

/// The rotation slot save_checkpoint moves the previous generation into.
[[nodiscard]] std::string checkpoint_previous_generation(
    const std::string& path);

/// Parses and validates one checkpoint file. Every failure throws
/// CheckpointError naming the failing section; a file that passes every
/// CRC and structural check is returned whole. Never crashes on corrupt
/// input: all reads are bounds-checked.
[[nodiscard]] SimCheckpoint load_checkpoint(const std::string& path);

/// load_checkpoint with generation fallback: tries `path`, and if that
/// fails (missing, truncated, or corrupt) notes the line-item error on
/// stderr and tries "<path>.1". Throws the PRIMARY failure when both are
/// unusable. `used_path`, when non-null, receives the file actually
/// loaded.
[[nodiscard]] SimCheckpoint load_checkpoint_with_fallback(
    const std::string& path, std::string* used_path = nullptr);

/// Deterministic fingerprint of a fault-event list (order-sensitive), the
/// schedule identity a resume validates against.
[[nodiscard]] std::uint64_t fault_events_fingerprint(
    const std::vector<FaultEvent>& events) noexcept;

}  // namespace gcube
