#include "sim/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gcube {

void LatencyHistogram::record(Cycle latency) noexcept {
  const std::size_t bucket =
      latency < 2 ? 0
                  : std::min<std::size_t>(kBuckets - 1,
                                          std::bit_width(latency) - 1);
  ++counts_[bucket];
  ++total_;
}

Cycle LatencyHistogram::percentile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the delivery that must be covered: ceil(q * total), clamped to
  // [1, total]. rank >= 1 keeps q = 0 from landing in an empty bucket 0,
  // and the ceiling (instead of +0.5 rounding) keeps q = 1.0 from
  // overshooting past the last nonempty bucket.
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total_))),
      1, total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return (Cycle{1} << (i + 1)) - 1;  // upper edge of bucket i
    }
  }
  return ~Cycle{0};
}

double SimMetrics::log2_throughput() const {
  const double t = throughput();
  return t <= 0.0 ? 0.0 : std::log2(t);
}

}  // namespace gcube
