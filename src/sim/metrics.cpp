#include "sim/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gcube {

void LatencyHistogram::record(Cycle latency) noexcept {
  const std::size_t bucket =
      latency < 2 ? 0
                  : std::min<std::size_t>(kBuckets - 1,
                                          std::bit_width(latency) - 1);
  ++counts_[bucket];
  ++total_;
}

Cycle LatencyHistogram::percentile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the delivery that must be covered: ceil(q * total), clamped to
  // [1, total]. rank >= 1 keeps q = 0 from landing in an empty bucket 0,
  // and the ceiling (instead of +0.5 rounding) keeps q = 1.0 from
  // overshooting past the last nonempty bucket.
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total_))),
      1, total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return (Cycle{1} << (i + 1)) - 1;  // upper edge of bucket i
    }
  }
  return ~Cycle{0};
}

void LatencyHistogram::merge(const LatencyHistogram& o) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
}

double SimMetrics::log2_throughput() const {
  const double t = throughput();
  return t <= 0.0 ? 0.0 : std::log2(t);
}

void SimMetrics::absorb(const SimMetrics& shard) noexcept {
  generated += shard.generated;
  delivered += shard.delivered;
  carryover_delivered += shard.carryover_delivered;
  dropped += shard.dropped;
  total_latency += shard.total_latency;
  total_hops += shard.total_hops;
  service_ops += shard.service_ops;
  peak_in_flight = std::max(peak_in_flight, shard.peak_in_flight);
  injections_blocked += shard.injections_blocked;
  stalled_cycles += shard.stalled_cycles;
  deadlocked = deadlocked || shard.deadlocked;
  fault_events += shard.fault_events;
  repairs_applied += shard.repairs_applied;
  reroutes += shard.reroutes;
  dropped_no_route += shard.dropped_no_route;
  dropped_hop_limit += shard.dropped_hop_limit;
  orphaned_by_node_fault += shard.orphaned_by_node_fault;
  parked_retries += shard.parked_retries;
  retransmits += shard.retransmits;
  gave_up += shard.gave_up;
  in_flight_at_end += shard.in_flight_at_end;
  phase_drain_ns += shard.phase_drain_ns;
  phase_inject_ns += shard.phase_inject_ns;
  phase_advance_ns += shard.phase_advance_ns;
  phase_commit_ns += shard.phase_commit_ns;
  latency_histogram.merge(shard.latency_histogram);
  plan_cache += shard.plan_cache;
  hop_cache += shard.hop_cache;
}

bool SimMetrics::deterministic_equals(const SimMetrics& o) const noexcept {
  return measured_cycles == o.measured_cycles && generated == o.generated &&
         delivered == o.delivered &&
         carryover_delivered == o.carryover_delivered &&
         dropped == o.dropped &&
         total_latency == o.total_latency && total_hops == o.total_hops &&
         service_ops == o.service_ops &&
         peak_in_flight == o.peak_in_flight &&
         injections_blocked == o.injections_blocked &&
         stalled_cycles == o.stalled_cycles && deadlocked == o.deadlocked &&
         fault_events == o.fault_events &&
         repairs_applied == o.repairs_applied && reroutes == o.reroutes &&
         dropped_no_route == o.dropped_no_route &&
         dropped_hop_limit == o.dropped_hop_limit &&
         orphaned_by_node_fault == o.orphaned_by_node_fault &&
         parked_retries == o.parked_retries &&
         retransmits == o.retransmits && gave_up == o.gave_up &&
         in_flight_at_end == o.in_flight_at_end &&
         latency_histogram == o.latency_histogram;
}

}  // namespace gcube
