// Fault schedules: when faults *arrive* — and heal — during a simulation.
//
// The paper's strategy is online and distributed — nodes route around
// faults they discover en route — so the interesting regime is faults that
// appear while packets are in flight. A FaultSchedule is an ordered list of
// {cycle, fail-or-repair, node-or-link} events that NetworkSim applies to
// the live FaultSet as the clock passes each event's cycle. Schedules come
// from four sources: programmatic construction (tests, benches), a text
// file (one event per line, see parse()), the random-arrival generator
// (delivery-ratio-vs-fault-arrival-rate studies), and the flapping-link
// generator (transient-fault churn with mean-time-to-failure/repair).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "sim/packet.hpp"
#include "util/bits.hpp"

namespace gcube {

struct FaultEvent {
  enum class Kind { kNode, kLink, kRepairNode, kRepairLink };

  Cycle cycle = 0;
  Kind kind = Kind::kNode;
  NodeId node = 0;
  Dim dim = 0;  // link events only: the dimension of the link at `node`

  /// True for the two link-shaped kinds (fail or repair), which carry a
  /// meaningful `dim` that must be range-checked against the topology.
  [[nodiscard]] bool targets_link() const noexcept {
    return kind == Kind::kLink || kind == Kind::kRepairLink;
  }
  /// True for the two repair kinds.
  [[nodiscard]] bool is_repair() const noexcept {
    return kind == Kind::kRepairNode || kind == Kind::kRepairLink;
  }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  void fail_node_at(Cycle cycle, NodeId node);
  void fail_link_at(Cycle cycle, NodeId node, Dim dim);
  void repair_node_at(Cycle cycle, NodeId node);
  void repair_link_at(Cycle cycle, NodeId node, Dim dim);

  /// Events sorted by cycle (stable: same-cycle events keep insertion
  /// order, so replay is deterministic — in particular a fail and a repair
  /// of the same element in the same cycle apply in insertion order).
  [[nodiscard]] const std::vector<FaultEvent>& events() const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Copy of this schedule with every repair event removed: the same churn
  /// pattern, made permanent. Used by recovery studies to compare
  /// "transient faults heal" against "same faults, forever".
  [[nodiscard]] FaultSchedule without_repairs() const;

  /// Random node-fault arrivals: each cycle in [0, horizon) one new node
  /// fails with probability `rate` (victim uniform among nodes not already
  /// scheduled), up to `max_faults` total. Deterministic in `seed`.
  [[nodiscard]] static FaultSchedule random_node_faults(
      std::uint64_t node_count, double rate, Cycle horizon,
      std::uint64_t seed, std::size_t max_faults);

  /// Flapping links: picks `flapping` distinct links from `candidates` and
  /// gives each an independent up/down renewal process over [0, horizon) —
  /// up-times geometric with mean `mttf` cycles, down-times geometric with
  /// mean `mttr` cycles. Every failure that completes its down-time before
  /// the horizon gets a matching repair event; a flap cut off by the
  /// horizon stays failed (callers wanting a clean end should pick a
  /// horizon past the churn window). Deterministic in `seed`; requires
  /// mttf >= 1, mttr >= 1, flapping <= candidates.size().
  [[nodiscard]] static FaultSchedule random_flapping_links(
      const std::vector<LinkId>& candidates, std::size_t flapping,
      double mttf, double mttr, Cycle horizon, std::uint64_t seed);

  /// Parses the schedule file format: one event per line,
  ///   <cycle> node <node-id>
  ///   <cycle> link <node-id> <dim>
  ///   <cycle> repair-node <node-id>
  ///   <cycle> repair-link <node-id> <dim>
  /// Blank lines and lines starting with '#' are ignored. Throws
  /// std::invalid_argument (with the line number) on malformed input,
  /// unknown event keywords, or ids too large for any supported topology
  /// (node >= 2^kMaxDimension, dim >= kMaxDimension); the tighter
  /// per-topology bound is enforced when the schedule is attached to a
  /// simulation.
  [[nodiscard]] static FaultSchedule parse(std::istream& in);
  [[nodiscard]] static FaultSchedule from_file(const std::string& path);

 private:
  void push(Cycle cycle, FaultEvent::Kind kind, NodeId node, Dim dim);

  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace gcube
