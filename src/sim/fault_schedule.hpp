// Fault schedules: when faults *arrive* during a simulation.
//
// The paper's strategy is online and distributed — nodes route around
// faults they discover en route — so the interesting regime is faults that
// appear while packets are in flight. A FaultSchedule is an ordered list of
// {cycle, node-or-link} events that NetworkSim applies to the live FaultSet
// as the clock passes each event's cycle. Schedules come from three
// sources: programmatic construction (tests, benches), a text file (one
// event per line, see parse()), or the random-arrival generator
// (delivery-ratio-vs-fault-arrival-rate studies).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "util/bits.hpp"

namespace gcube {

struct FaultEvent {
  enum class Kind { kNode, kLink };

  Cycle cycle = 0;
  Kind kind = Kind::kNode;
  NodeId node = 0;
  Dim dim = 0;  // kLink only: the dimension of the failing link at `node`

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  void fail_node_at(Cycle cycle, NodeId node);
  void fail_link_at(Cycle cycle, NodeId node, Dim dim);

  /// Events sorted by cycle (stable: same-cycle events keep insertion
  /// order, so replay is deterministic).
  [[nodiscard]] const std::vector<FaultEvent>& events() const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Random node-fault arrivals: each cycle in [0, horizon) one new node
  /// fails with probability `rate` (victim uniform among nodes not already
  /// scheduled), up to `max_faults` total. Deterministic in `seed`.
  [[nodiscard]] static FaultSchedule random_node_faults(
      std::uint64_t node_count, double rate, Cycle horizon,
      std::uint64_t seed, std::size_t max_faults);

  /// Parses the schedule file format: one event per line,
  ///   <cycle> node <node-id>
  ///   <cycle> link <node-id> <dim>
  /// Blank lines and lines starting with '#' are ignored. Throws
  /// std::invalid_argument on malformed input.
  [[nodiscard]] static FaultSchedule parse(std::istream& in);
  [[nodiscard]] static FaultSchedule from_file(const std::string& path);

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace gcube
