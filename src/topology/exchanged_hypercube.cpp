#include "topology/exchanged_hypercube.hpp"

#include "util/error.hpp"

namespace gcube {

ExchangedHypercube::ExchangedHypercube(Dim s, Dim t) : s_(s), t_(t) {
  GCUBE_REQUIRE(s >= 1 && t >= 1, "EH(s,t) requires s,t >= 1");
  GCUBE_REQUIRE(s + t + 1 <= kMaxDimension, "EH(s,t) too large");
}

std::string ExchangedHypercube::name() const {
  return "EH(" + std::to_string(s_) + "," + std::to_string(t_) + ")";
}

}  // namespace gcube
