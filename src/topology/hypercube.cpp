#include "topology/topology.hpp"

#include "util/error.hpp"

namespace gcube {

std::vector<Dim> Topology::link_dims(NodeId u) const {
  std::vector<Dim> out;
  const Dim n = dims();
  out.reserve(n);
  for (Dim c = 0; c < n; ++c) {
    if (has_link(u, c)) out.push_back(c);
  }
  return out;
}

Dim Topology::degree(NodeId u) const {
  Dim deg = 0;
  const Dim n = dims();
  for (Dim c = 0; c < n; ++c) {
    if (has_link(u, c)) ++deg;
  }
  return deg;
}

std::vector<NodeId> Topology::neighbors(NodeId u) const {
  std::vector<NodeId> out;
  const Dim n = dims();
  out.reserve(n);
  for (Dim c = 0; c < n; ++c) {
    if (has_link(u, c)) out.push_back(neighbor(u, c));
  }
  return out;
}

std::uint64_t Topology::link_count() const {
  std::uint64_t twice = 0;
  const std::uint64_t nodes = node_count();
  for (std::uint64_t u = 0; u < nodes; ++u) {
    twice += degree(static_cast<NodeId>(u));
  }
  return twice / 2;
}

Hypercube::Hypercube(Dim n) : n_(n) {
  GCUBE_REQUIRE(n >= 1 && n <= kMaxDimension, "hypercube dimension out of range");
}

std::string Hypercube::name() const { return "H_" + std::to_string(n_); }

}  // namespace gcube
