// Gaussian Graph G_n (paper Definition 1).
//
// G_n has 2^n nodes with n-bit labels; node u has an edge in dimension 0
// unconditionally, and in dimension c in [1, n-1] iff its low c bits equal
// c (note c < 2^c, so "c mod 2^c" is c itself). The paper's Theorem 2 proves
// G_n is a tree — it is connected (the PC algorithm constructs a path
// between any pair) and has exactly 2^n - 1 edges. The tree-specific
// operations live in GaussianTree; this class is the raw topology, which is
// also exactly GC(n, M) for M >= 2^(n-1) restricted to its tree dimensions.
#pragma once

#include <string>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

class GaussianGraph : public Topology {
 public:
  explicit GaussianGraph(Dim n);

  [[nodiscard]] Dim dims() const noexcept override { return n_; }
  [[nodiscard]] bool has_link(NodeId u, Dim c) const noexcept override {
    return c == 0 || low_bits(u, c) == c;
  }
  [[nodiscard]] std::string name() const override;

 private:
  Dim n_;
};

}  // namespace gcube
