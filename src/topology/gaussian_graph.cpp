#include "topology/gaussian_graph.hpp"

#include "util/error.hpp"

namespace gcube {

GaussianGraph::GaussianGraph(Dim n) : n_(n) {
  // n == 0 is the single-node graph (needed for GC(n, 1), whose Gaussian
  // Tree T_0 is trivial).
  GCUBE_REQUIRE(n <= kMaxDimension, "Gaussian graph dimension out of range");
}

std::string GaussianGraph::name() const { return "G_" + std::to_string(n_); }

}  // namespace gcube
