// Exchanged Hypercube EH(s, t) — paper Definition 7.
//
// EH(s, t) has 2^(s+t+1) nodes labeled  a_{s-1}..a_0 | b_{t-1}..b_0 | c :
// bit 0 is the "exchange" bit c, bits [1, t] are the b-part, bits
// [t+1, t+s] are the a-part. Links:
//   * every node has a dimension-0 link (flipping c);
//   * nodes with c == 1 have links in the b-part dimensions [1, t];
//   * nodes with c == 0 have links in the a-part dimensions [t+1, t+s].
// So the c==0 nodes form 2^t disjoint s-dimensional hypercubes B_s(k) (one
// per b-part value k), the c==1 nodes form 2^s disjoint t-dimensional
// hypercubes B_t(l) (one per a-part value l), and dimension-0 links stitch
// them together.
//
// In the paper this is the substrate of Theorem 5: for two classes p, q
// adjacent in the Gaussian Tree, the subgraph of GC induced by the pair
// (with all other label bits fixed) is isomorphic to EH(|Dim(p)|, |Dim(q)|),
// which is where B/C-category faults are routed around (algorithm FREH).
#pragma once

#include <string>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

class ExchangedHypercube final : public Topology {
 public:
  /// Requires s >= 1, t >= 1, s + t + 1 <= kMaxDimension.
  ExchangedHypercube(Dim s, Dim t);

  [[nodiscard]] Dim dims() const noexcept override { return s_ + t_ + 1; }
  [[nodiscard]] bool has_link(NodeId u, Dim c) const noexcept override {
    if (c == 0) return true;
    return (c <= t_) == (bit(u, 0) == 1);
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Dim s() const noexcept { return s_; }
  [[nodiscard]] Dim t() const noexcept { return t_; }

  /// The exchange bit c of node u.
  [[nodiscard]] std::uint32_t c_bit(NodeId u) const noexcept {
    return bit(u, 0);
  }
  /// The b-part (t bits) of node u.
  [[nodiscard]] NodeId b_part(NodeId u) const noexcept {
    return low_bits(u >> 1, t_);
  }
  /// The a-part (s bits) of node u.
  [[nodiscard]] NodeId a_part(NodeId u) const noexcept {
    return low_bits(u >> (t_ + 1), s_);
  }
  /// Rebuild a label from its parts.
  [[nodiscard]] NodeId make_node(NodeId a, NodeId b, std::uint32_t c) const noexcept {
    return (a << (t_ + 1)) | (b << 1) | (c & 1u);
  }

 private:
  Dim s_;
  Dim t_;
};

}  // namespace gcube
