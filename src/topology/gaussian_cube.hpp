// Gaussian Cube GC(n, M) — the paper's subject topology (its §2).
//
// GC(n, M) has 2^n nodes with n-bit labels. In the original definition,
// nodes p and p ^ (1<<c) are linked iff p ≡ c (mod M') with
// M' = min(2^c, M). The paper shows M must effectively be a power of two:
// for any other M the network decomposes into disconnected subnetworks each
// isomorphic to a smaller power-of-two GC (see is_connected_modulus and the
// topology tests). This class therefore requires M = 2^alpha and exposes the
// paper's equivalent local rule (Theorem 1):
//
//   has_link(p, c)  <=>  p mod 2^m == c mod 2^m,  m = min(c, alpha)
//
// which specializes to: every node has a dimension-0 link; for c in [1,alpha]
// the low c bits of p must equal c; for c > alpha the low alpha bits of p
// must equal c mod 2^alpha.
//
// The two-level structure the routing strategy exploits:
//  * ending class EC(k) = nodes whose low alpha bits equal k (paper Def. 2);
//    classes are the vertices of the Gaussian Tree T_alpha, and links in
//    dimensions < alpha are exactly the tree edges between classes;
//  * inside EC(k) only dimensions Dim(k) = {c in [alpha, n-1] : c ≡ k
//    (mod 2^alpha)} carry links, and EC(k) splits into disjoint binary
//    hypercubes GEEC(k, t) of dimension |Dim(k)| (paper Def. 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

class GaussianCube final : public Topology {
 public:
  /// Constructs GC(n, M). Requires 1 <= n <= kMaxDimension and M a power of
  /// two (throws std::invalid_argument otherwise — use is_connected_modulus
  /// to screen). M > 2^n is equivalent to M = 2^n and is clamped.
  GaussianCube(Dim n, std::uint64_t modulus);

  [[nodiscard]] Dim dims() const noexcept override { return n_; }
  [[nodiscard]] bool has_link(NodeId u, Dim c) const noexcept override {
    const Dim m = c < alpha_ ? c : alpha_;
    return low_bits(u, m) == (c & low_mask(m));
  }
  [[nodiscard]] std::string name() const override;

  /// alpha = log2(M), clamped to n.
  [[nodiscard]] Dim alpha() const noexcept { return alpha_; }
  /// The (clamped) modulus M = 2^alpha.
  [[nodiscard]] std::uint64_t modulus() const noexcept { return pow2(alpha_); }

  /// Number of ending classes, 2^alpha.
  [[nodiscard]] std::uint32_t class_count() const noexcept {
    return static_cast<std::uint32_t>(pow2(alpha_));
  }

  /// The ending class of node u: its low alpha bits (a vertex of T_alpha).
  [[nodiscard]] NodeId ending_class(NodeId u) const noexcept {
    return low_bits(u, alpha_);
  }

  /// Dim(k) as a bitmask over label bits: bit c set iff c in [alpha, n-1]
  /// and c ≡ k (mod 2^alpha). Precondition: k < class_count().
  [[nodiscard]] NodeId high_dims_mask(NodeId k) const noexcept {
    return high_dims_mask_[k];
  }

  /// Dim(k) as an ascending list of dimensions.
  [[nodiscard]] std::vector<Dim> high_dims(NodeId k) const;

  /// |Dim(k)| — the dimension of every GEEC hypercube of class k. This is
  /// the paper's N(k) (Theorem 3) and t_k (Figure 4).
  [[nodiscard]] Dim high_dim_count(NodeId k) const noexcept {
    return popcount(high_dims_mask_[k]);
  }

  /// Bits that identify which GEEC hypercube of its class a node lies in:
  /// everything outside the low alpha bits and outside Dim(k).
  [[nodiscard]] NodeId geec_fixed_mask(NodeId k) const noexcept {
    return low_bits(~(low_mask(alpha_) | high_dims_mask_[k]), n_);
  }

  /// Canonical GEEC identifier of node u: two nodes are in the same GEEC
  /// hypercube iff they are in the same ending class and have equal keys.
  [[nodiscard]] NodeId geec_key(NodeId u) const noexcept {
    return u & geec_fixed_mask(ending_class(u));
  }

  /// The original congruence-based link rule for arbitrary modulus (no
  /// power-of-two requirement). Used to cross-validate Theorem 1 and to
  /// demonstrate the decomposition for non-power-of-two M.
  [[nodiscard]] static bool has_link_original(Dim n, std::uint64_t modulus,
                                              NodeId u, Dim c) noexcept;

  /// True iff GC(n, modulus) is connected, i.e. modulus is 1 or a power of
  /// two (paper §2: any other modulus splits the network).
  [[nodiscard]] static bool is_connected_modulus(std::uint64_t modulus) noexcept {
    return is_pow2(modulus);
  }

 private:
  Dim n_;
  Dim alpha_;
  std::vector<NodeId> high_dims_mask_;  // indexed by ending class
};

}  // namespace gcube
