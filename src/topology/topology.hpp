// Topology interface.
//
// Every interconnection network in this library (binary hypercube, Gaussian
// Cube, Gaussian Graph/Tree, Exchanged Hypercube) shares one structural
// property: node labels are bit strings and every link connects two labels
// differing in exactly one bit — the link's *dimension*. A topology is
// therefore fully described by a predicate `has_link(node, dim)`, which keeps
// topologies O(1)-queryable with no stored adjacency, so simulations with
// 2^14+ nodes stay cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace gcube {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of label bits n; dimensions are 0 .. n-1. Nodes are 0 .. 2^n - 1.
  [[nodiscard]] virtual Dim dims() const noexcept = 0;

  /// True iff node `u` has a link in dimension `c` (to node u ^ (1<<c)).
  /// The predicate is symmetric in every topology here: has_link(u, c) ==
  /// has_link(u ^ (1<<c), c). Preconditions: u < node_count(), c < dims().
  [[nodiscard]] virtual bool has_link(NodeId u, Dim c) const noexcept = 0;

  /// Human-readable name, e.g. "GC(10,4)".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return pow2(dims());
  }

  /// The node reached from `u` along dimension `c` (caller must have checked
  /// has_link).
  [[nodiscard]] static NodeId neighbor(NodeId u, Dim c) noexcept {
    return flip_bit(u, c);
  }

  /// All dimensions in which `u` has a link, ascending.
  [[nodiscard]] std::vector<Dim> link_dims(NodeId u) const;

  /// Node degree.
  [[nodiscard]] Dim degree(NodeId u) const;

  /// All neighbors of `u`, ascending by dimension.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const;

  /// Total number of links in the network (counted once per link).
  [[nodiscard]] std::uint64_t link_count() const;
};

/// The ordinary binary hypercube H_n: every node has a link in every
/// dimension. Equals GC(n, 1) — with modulus 1 every congruence condition is
/// vacuous — and serves as the baseline topology in benchmarks.
class Hypercube final : public Topology {
 public:
  explicit Hypercube(Dim n);

  [[nodiscard]] Dim dims() const noexcept override { return n_; }
  [[nodiscard]] bool has_link(NodeId, Dim) const noexcept override {
    return true;
  }
  [[nodiscard]] std::string name() const override;

 private:
  Dim n_;
};

}  // namespace gcube
