#include "topology/gaussian_tree.hpp"

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace gcube {

namespace {

constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();

// BFS over the tree; returns (distances, farthest node). Distances fit in
// uint16_t for every supported n (tree paths are short; checked below).
std::pair<std::vector<std::uint16_t>, NodeId> bfs_farthest(
    const GaussianTree& t, NodeId start) {
  const std::uint64_t nodes = t.node_count();
  std::vector<std::uint16_t> dist(nodes, kUnreached);
  std::vector<NodeId> frontier{start};
  dist[start] = 0;
  NodeId farthest = start;
  const Dim n = t.dims();
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      const auto du = dist[u];
      for (Dim c = 0; c < n; ++c) {
        if (!t.has_link(u, c)) continue;
        const NodeId v = Topology::neighbor(u, c);
        if (dist[v] != kUnreached) continue;
        GCUBE_REQUIRE(du + 1 < kUnreached, "tree distance overflow");
        dist[v] = static_cast<std::uint16_t>(du + 1);
        if (dist[v] > dist[farthest]) farthest = v;
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  return {std::move(dist), farthest};
}

}  // namespace

void GaussianTree::build_path(NodeId s, NodeId d,
                              std::vector<NodeId>& out) const {
  // Paper Algorithm 1 (PC), iterative on the right branch. Each step finds
  // the unique edge of the path in the highest dimension where s and d still
  // differ: both endpoints of a dimension-c edge (c >= 1) have low c bits
  // equal to c and share all bits above c, so the crossing edge is fully
  // determined by (c, shared upper bits). Unlike the paper's formulation,
  // segments are emitted in order, so no final sort is needed.
  while (s != d) {
    const Dim c = msb_index(s ^ d);
    if (c == 0) {  // s and d are dimension-0 neighbors
      out.push_back(s);
      return;
    }
    const NodeId v1 = (s & ~low_mask(c)) | c;
    const NodeId v2 = flip_bit(v1, c);
    build_path(s, v1, out);
    out.push_back(v1);
    s = v2;  // continue with the segment from v2 to d
  }
}

std::vector<NodeId> GaussianTree::path(NodeId s, NodeId d) const {
  GCUBE_REQUIRE(s < node_count() && d < node_count(), "node out of range");
  std::vector<NodeId> out;
  build_path(s, d, out);
  out.push_back(d);
  return out;
}

std::vector<Dim> GaussianTree::path_dims(NodeId s, NodeId d) const {
  const auto nodes = path(s, d);
  std::vector<Dim> out;
  out.reserve(nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    out.push_back(lsb_index(nodes[i] ^ nodes[i + 1]));
  }
  return out;
}

Dim GaussianTree::distance(NodeId s, NodeId d) const {
  return static_cast<Dim>(path(s, d).size() - 1);
}

NodeId GaussianTree::parent(NodeId u) const {
  GCUBE_REQUIRE(u != 0, "the root has no parent");
  return path(u, 0)[1];
}

std::vector<NodeId> GaussianTree::children(NodeId u) const {
  std::vector<NodeId> out;
  for (NodeId v : neighbors(u)) {
    if (v != 0 && parent(v) == u) out.push_back(v);
  }
  return out;
}

Dim GaussianTree::diameter() const {
  if (node_count() == 1) return 0;
  // Double BFS: in a tree, the farthest node from anywhere is a diameter
  // endpoint.
  const auto [dist0, end0] = bfs_farthest(*this, 0);
  const auto [dist1, end1] = bfs_farthest(*this, end0);
  return dist1[end1];
}

}  // namespace gcube
