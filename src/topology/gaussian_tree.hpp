// Gaussian Tree T_n (paper §3).
//
// T_n is the Gaussian Graph G_n viewed as a tree (Theorem 2). This class
// adds the tree operations routing builds on:
//
//  * path(s, d)      — the paper's Path Construction algorithm (Algorithm 1):
//                      the unique tree path, found link-by-link in O(length)
//                      time with no search;
//  * path_dims(s, d) — the same path as a dimension sequence;
//  * distance(s, d)  — path length in edges;
//  * parent/children — with the tree rooted at node 0 (node 0 is the unique
//                      node whose only edge is in dimension 0, a natural
//                      anchor);
//  * diameter()      — exact, via double BFS (valid for trees).
//
// Within GC(n, 2^alpha), T_alpha is the quotient of the cube by the
// "ending class" map u -> u mod 2^alpha, and each tree edge in dimension
// c < alpha is realized by a cube link in the same dimension at *every* node
// of either incident class — that is what makes inter-class routing in the
// cube exactly tree routing.
#pragma once

#include <vector>

#include "topology/gaussian_graph.hpp"
#include "util/bits.hpp"

namespace gcube {

class GaussianTree final : public GaussianGraph {
 public:
  explicit GaussianTree(Dim n) : GaussianGraph(n) {}

  /// Paper Algorithm 1 (PC). Returns the unique path from s to d as a node
  /// sequence (front() == s, back() == d; size 1 when s == d).
  [[nodiscard]] std::vector<NodeId> path(NodeId s, NodeId d) const;

  /// The same path as the sequence of dimensions crossed (size == edge
  /// count). Dimension i is crossed between path[i] and path[i+1].
  [[nodiscard]] std::vector<Dim> path_dims(NodeId s, NodeId d) const;

  /// Tree distance in edges.
  [[nodiscard]] Dim distance(NodeId s, NodeId d) const;

  /// Parent of u in the tree rooted at 0. Precondition: u != 0.
  [[nodiscard]] NodeId parent(NodeId u) const;

  /// Children of u in the tree rooted at 0, ascending.
  [[nodiscard]] std::vector<NodeId> children(NodeId u) const;

  /// Exact diameter (maximum pairwise distance). Double-BFS; O(2^n).
  [[nodiscard]] Dim diameter() const;

 private:
  // Appends the path from s to d, excluding d itself, to out.
  void build_path(NodeId s, NodeId d, std::vector<NodeId>& out) const;
};

}  // namespace gcube
