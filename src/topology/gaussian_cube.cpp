#include "topology/gaussian_cube.hpp"

#include "util/error.hpp"

namespace gcube {

GaussianCube::GaussianCube(Dim n, std::uint64_t modulus) : n_(n) {
  GCUBE_REQUIRE(n >= 1 && n <= kMaxDimension, "GC dimension out of range");
  GCUBE_REQUIRE(is_pow2(modulus),
                "GC modulus must be a power of two; any other modulus yields "
                "a disconnected network (paper §2)");
  const Dim a = log2_exact(modulus);
  alpha_ = a < n ? a : n;
  high_dims_mask_.assign(pow2(alpha_), 0);
  for (Dim c = alpha_; c < n_; ++c) {
    high_dims_mask_[c & low_mask(alpha_)] |= NodeId{1} << c;
  }
}

std::string GaussianCube::name() const {
  return "GC(" + std::to_string(n_) + "," + std::to_string(pow2(alpha_)) + ")";
}

std::vector<Dim> GaussianCube::high_dims(NodeId k) const {
  std::vector<Dim> out;
  NodeId mask = high_dims_mask_[k];
  while (mask != 0) {
    out.push_back(lsb_index(mask));
    mask &= mask - 1;
  }
  return out;
}

bool GaussianCube::has_link_original(Dim n, std::uint64_t modulus, NodeId u,
                                     Dim c) noexcept {
  if (c >= n) return false;
  const std::uint64_t two_c = pow2(c);
  const std::uint64_t m = two_c < modulus ? two_c : modulus;
  // Both endpoints must be congruent to c mod m; they differ only in bit c,
  // so checking u suffices when 2^c >= m, but we check both for fidelity to
  // the original definition (and correctness for any m).
  const NodeId v = flip_bit(u, c);
  return (u % m) == (c % m) && (v % m) == (c % m);
}

}  // namespace gcube
