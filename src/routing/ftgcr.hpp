// FTGCR — the paper's fault-tolerant routing strategy for Gaussian Cubes
// (§5, Theorems 3 and 5 combined).
//
// The fault-free itinerary (ffgcr.hpp) is kept: an optimal Gaussian-Tree
// walk from class(s) to class(d) through every class owning a high bit that
// must change. Fault handling is layered onto its two primitive moves:
//
//  * in-class fixes (A-category faults, Theorem 3): setting the pending
//    Dim(k) bits is fault-tolerant unicast inside the current GEEC
//    hypercube — adaptive routing with spare-dimension masking
//    (hypercube_ft.hpp), which succeeds while each GEEC holds fewer than
//    N(k) = |Dim(k)| faults;
//
//  * tree crossings (B/C-category faults, Theorem 5): when the dimension-c
//    link at the current node is unusable, the crossing runs FREH over the
//    crossing structure G(p, q, ·) ≅ EH(|Dim(p)|, |Dim(q)|) via the
//    explicit embedding (eh_embedding.hpp), detouring through sibling nodes
//    of both classes.
//
// Invariant maintained throughout: every bit of Dim(k) not pending for
// class k already equals the destination's bit. Each crossing into class k
// therefore targets the neighbor node with *all* Dim(k) bits set to the
// destination's values, folding that class's pending fixes into the
// crossing — which also lets a crossing land around a faulty ideal
// neighbor.
//
// Guarantees (tested): under check_ftgcr_precondition the route is always
// found, is cycle-free in the fault-free case, and is at most 2F hops
// longer than FfgcrRouter::optimal_length when F faults are encountered.
#pragma once

#include <memory>

#include "fault/fault_set.hpp"
#include "routing/ffgcr.hpp"
#include "routing/next_hop_table.hpp"
#include "routing/router.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/flat_cache.hpp"

namespace gcube {

struct FtgcrStats {
  std::size_t faults_encountered = 0;  // distinct unusable links met (F)
  std::size_t spare_hops = 0;
  std::size_t freh_crossings = 0;  // crossings that needed the EH machinery
  bool used_fallback = false;      // any in-cube BFS safeguard engaged
  /// Times the strategy re-planned the remaining route with a global
  /// fault-aware search. This covers the one case the paper's §5 outline
  /// does not: a pass-through class whose forced intermediate node is
  /// faulty (see EXPERIMENTS.md). Zero in the Theorem-3 regime and for all
  /// leaf-detour itineraries.
  std::size_t global_replans = 0;
};

class FtgcrRouter final : public Router {
 public:
  /// Holds references; gc and faults must outlive the router.
  FtgcrRouter(const GaussianCube& gc, const FaultSet& faults);

  [[nodiscard]] RoutingResult plan(NodeId s, NodeId d) const override;
  [[nodiscard]] RoutingResult plan_with_stats(NodeId s, NodeId d,
                                              FtgcrStats& stats) const;
  /// Memoized shared route keyed on (s, d) and stamped with
  /// FaultSet::version(): a cache hit is valid only while the fault set is
  /// unchanged, so mid-run fault arrivals force a re-plan on next use.
  /// Failures (dst dead, cube disconnected) memoize as nullptr.
  [[nodiscard]] std::shared_ptr<const Route> plan_shared(
      NodeId s, NodeId d) const override;
  /// Stepwise plan against the *live* fault set. While the fault set is
  /// empty (and the modulus supports the fabric) the answer is a pure
  /// table lookup — the machinery would emit exactly the fault-free
  /// composite route, so its first hop is the fabric's, with no cache
  /// traffic at all. Under faults, entries are keyed on (cur, dst) and
  /// version-stamped, so a FaultSet::version() move makes stale entries
  /// misses (no global invalidation pass) and mid-run fault arrivals are
  /// picked up on the next hop. Failures (dst dead, cube disconnected)
  /// memoize too.
  [[nodiscard]] std::optional<Dim> next_hop(NodeId cur,
                                            NodeId dst) const override;
  /// Counters for the version-stamped route and hop caches; `stale` tallies
  /// lookups that found an entry superseded by a FaultSet::version() move.
  [[nodiscard]] RouterCacheStats cache_stats() const override {
    return {plan_cache_.stats(), hop_cache_.stats()};
  }
  [[nodiscard]] const NextHopFabric* fabric() const override {
    return &fabric_;
  }
  [[nodiscard]] std::string name() const override { return "FTGCR"; }

  [[nodiscard]] const GaussianTree& class_tree() const noexcept {
    return tree_;
  }

 private:
  /// The composite fault-free route (identical to what the Theorem-3/5
  /// machinery emits when it encounters zero faults), or nullopt as soon
  /// as any hop on it is unusable. The overwhelmingly common fast path:
  /// faults are sparse, so most routes never meet one.
  [[nodiscard]] std::optional<Route> fault_free_route_if_clean(
      NodeId s, NodeId d) const;

  const GaussianCube& gc_;
  const FaultSet& faults_;
  GaussianTree tree_;
  NextHopFabric fabric_;
  mutable GcItineraryCache itineraries_;
  mutable ShardedVersionCache<std::shared_ptr<const Route>> plan_cache_;
  mutable ShardedVersionCache<std::optional<Dim>> hop_cache_;
};

}  // namespace gcube
