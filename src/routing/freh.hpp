// FREH — Fault-tolerant Routing in the Exchanged Hypercube
// (paper Algorithm 4, Theorem 4).
//
// Movement in EH(s, t) is constrained: the a-part can change only on the
// c == 0 side, the b-part only on the c == 1 side, and dimension-0 links
// switch sides. A faulty cross link is bypassed by crossing at a
// Hamming-neighbor position instead — which displaces the packet — and the
// displacement is repaired by crossing back later, possibly after a spare
// in-cube hop whose dimension is then masked (the paper's livelock guard).
//
// This implementation follows the paper's case structure through one driver:
//   * same side & same cube as the destination: fault-tolerant in-cube
//     routing finishes the job;
//   * otherwise cross, ideally at the destination's position for this side,
//     or at the nearest usable neighbor position (spare dimension masked);
//     a cross position is never reused, which together with the masks makes
//     the walk livelock-free.
//
// Theorem 4: with F_s + F_0 < s and F_t + F_0 < t the route exists and is
// at most H(r, d) + 2(F_s + F_t) + 2 hops (verified exhaustively in tests).
#pragma once

#include <functional>

#include "fault/fault_set.hpp"
#include "routing/route.hpp"
#include "topology/exchanged_hypercube.hpp"

namespace gcube {

/// Fault knowledge in EH coordinates. link_usable must already account for
/// endpoint node faults (a faulty node kills its incident links).
struct EhFaultOracle {
  std::function<bool(NodeId)> node_faulty;
  std::function<bool(NodeId, Dim)> link_usable;
};

/// Oracle reading a FaultSet expressed directly in EH labels.
[[nodiscard]] EhFaultOracle make_eh_oracle(const FaultSet& faults);

struct FrehStats {
  std::size_t crossings = 0;        // dimension-0 hops taken
  std::size_t spare_hops = 0;       // displacement + in-cube spare hops
  std::size_t faults_encountered = 0;
  bool used_fallback = false;       // in-cube BFS safeguard engaged
};

/// Routes r -> d in EH(s, t) under the oracle's faults. Fails with a reason
/// if no usable crossing or in-cube path exists (i.e., when the Theorem-4
/// precondition is violated).
[[nodiscard]] RoutingResult freh_route(const ExchangedHypercube& eh,
                                       const EhFaultOracle& oracle, NodeId r,
                                       NodeId d, FrehStats* stats = nullptr);

/// Fault-aware optimal routing within the EH structure: BFS from the
/// destination over usable links. Models the initialization phase of
/// Algorithm 4 (nodes learn which cross links are dead before routing), so
/// the route commits to the right crossing positions up front instead of
/// discovering dead ends mid-dance. This is what FTGCR uses for crossing
/// legs; freh_route remains the paper's step-by-step mechanism and is
/// compared against this one in bench/abl_ft_hypercube.
[[nodiscard]] RoutingResult informed_eh_route(const ExchangedHypercube& eh,
                                              const EhFaultOracle& oracle,
                                              NodeId r, NodeId d,
                                              FrehStats* stats = nullptr);

/// Theorem-4 fault counts for a concrete FaultSet on EH labels:
/// f_s / f_t — faulty components among the c==0 / c==1 side nodes and their
/// in-cube links; f_0 — marked cross links between nonfaulty endpoints.
struct EhFaultCounts {
  std::size_t f_s = 0;
  std::size_t f_t = 0;
  std::size_t f_0 = 0;
};

[[nodiscard]] EhFaultCounts count_eh_faults(const ExchangedHypercube& eh,
                                            const FaultSet& faults);

/// Theorem 4 precondition (with the same zero-fault boundary reading as the
/// Theorem 5 checker: a fault-free side imposes no constraint).
[[nodiscard]] bool theorem4_holds(const ExchangedHypercube& eh,
                                  const FaultSet& faults);

}  // namespace gcube
