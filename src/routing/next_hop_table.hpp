// Next-hop fabric: FFGCR's stepwise decision compiled into flat tables.
//
// The paper's two-level decomposition makes the fault-free next hop from
// cur toward dst a pure function of very little state (Theorem 1 / Dim(k)):
//
//  * if any high bit owned by cur's ending class still differs
//    (pending = (cur ^ dst) & Dim(class(cur)) mask), FFGCR fixes it next,
//    lowest dimension first — no table needed;
//  * otherwise the move is a tree edge of T_alpha, and the edge depends
//    only on (class(cur), class(dst), set of classes owning remaining high
//    diff bits) — a key space of 2^alpha * 2^alpha * 2^(2^alpha), shared
//    by ALL nodes. We precompute the first walk edge for every key once at
//    construction via plan_tree_walk.
//
// fault_free_hop(cur, dst) is therefore two or three array loads plus bit
// ops: no hashing, no shared_ptr, no cache-stats bookkeeping — the move
// from route computation to table lookup. Because FFGCR's stepwise
// re-derivation is memoryless (next_hop(cur, dst) is the first hop of a
// fresh plan from cur), the table result is byte-identical to the plan
// machinery's answer; the property tests enforce this.
//
// Supported for alpha <= kMaxAlpha: the tree table is 2^(2alpha + 2^alpha)
// bytes — 16 B at alpha 1, 256 B at alpha 2, 16 KiB at alpha 3 — and grows
// doubly-exponentially beyond that, so larger moduli fall back to the
// plan-based path. alpha == 0 is supported trivially: every differing bit
// is pending (e-cube lsb order) and the tree table is never consulted.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/gaussian_cube.hpp"
#include "util/simd.hpp"

namespace gcube {

class NextHopFabric {
 public:
  /// Largest alpha the tree table is built for (16 KiB at 3).
  static constexpr Dim kMaxAlpha = 3;

  explicit NextHopFabric(const GaussianCube& gc);

  /// False when gc.alpha() > kMaxAlpha; fault_free_hop must not be called.
  [[nodiscard]] bool supported() const noexcept { return supported_; }

  /// First hop of the fault-free FFGCR route cur -> dst. Preconditions:
  /// supported(), cur != dst, both labels in range. The returned dimension
  /// is always an existing link of cur (pending dims are in Dim(class),
  /// tree-edge dims are present at every node of either adjacent class).
  [[nodiscard]] Dim fault_free_hop(NodeId cur, NodeId dst) const noexcept {
    const NodeId diff = cur ^ dst;
    const NodeId k = cur & class_mask_;
    const NodeId pending = diff & high_dims_[k];
    if (pending != 0) return lsb_index(pending);
    // Fold the remaining high diff bits into a class subset: bit c lands on
    // bit (c mod 2^alpha) because chunks are 2^alpha wide and the low alpha
    // bits were cleared first.
    std::uint32_t subset = 0;
    for (NodeId f = diff & high_mask_; f != 0; f >>= class_count_) {
      subset |= static_cast<std::uint32_t>(f) & chunk_mask_;
    }
    return tree_edge_[((((k << alpha_) | (dst & class_mask_))
                        << class_count_) |
                       subset)];
  }

  /// Batched fault_free_hop: out[i] = fault_free_hop(cur[i], dst[i]) for
  /// i < count. Same preconditions per element. The batched advance hands
  /// a whole active-word's worth of (cur, dst) pairs here so the pending
  /// mask + tree-edge loads run in a tight non-branchy loop instead of
  /// interleaved with queue and link bookkeeping.
  void fault_free_hops(std::size_t count, const NodeId* cur,
                       const NodeId* dst, Dim* out) const noexcept;

  /// SIMD-dispatched batch lookup: same contract as fault_free_hops, with
  /// the AVX2 path doing the pending-mask test, tzcnt (via the float
  /// exponent of the isolated low bit — exact for any power of two below
  /// 2^31, and labels stop at kMaxDimension = 26) and both table loads as
  /// 8-lane gathers. SSE has no gathers, so levels below AVX2 run the
  /// scalar reference. Bit-identical at every level.
  void fault_free_hops(SimdLevel level, std::size_t count, const NodeId* cur,
                       const NodeId* dst, Dim* out) const noexcept;

  /// Total bytes of precomputed tables (diagnostics / EXPERIMENTS.md).
  [[nodiscard]] std::size_t table_bytes() const noexcept {
    return (tree_edge_.size() - kGatherPad) * sizeof(std::uint8_t) +
           high_dims_.size() * sizeof(NodeId);
  }

 private:
  /// The AVX2 path reads tree_edge_ bytes with 4-byte gathers, so the table
  /// carries this much zero padding past its last real entry.
  static constexpr std::size_t kGatherPad = 3;

  void fault_free_hops_avx2(std::size_t count, const NodeId* cur,
                            const NodeId* dst, Dim* out) const noexcept;

  bool supported_ = false;
  Dim alpha_ = 0;
  std::uint32_t class_count_ = 1;  // 2^alpha
  NodeId class_mask_ = 0;          // class_count_ - 1
  NodeId high_mask_ = 0;           // label bits >= alpha
  std::uint32_t chunk_mask_ = 0;   // low class_count_ bits of a fold chunk
  std::uint32_t fold_iters_ = 0;   // subset-fold rounds: ceil(dims/2^alpha)
  std::vector<NodeId> high_dims_;  // Dim(k) mask per ending class
  // First tree-walk edge per (class(cur), class(dst), owning-class subset),
  // 0xFF where cur == dst would be the only way to reach the key.
  std::vector<std::uint8_t> tree_edge_;
};

}  // namespace gcube
