// Fault-tolerant routing inside binary hypercubes.
//
// Theorem 3 of the paper reduces Gaussian-Cube routing under A-category
// faults to fault-tolerant unicast inside GEEC hypercubes, citing classical
// strategies ([4] FTCR, [5] Wu's safety levels, [6] adaptive routing) that
// deliver whenever the number of faulty components is smaller than the cube
// dimension. Two implementations are provided:
//
//  * adaptive_subcube_route — the mechanism the paper itself uses inside
//    FREH: move along a *preferred* dimension (one where the current node
//    still differs from the destination) whenever a usable link exists;
//    otherwise take a usable *spare* dimension and mask it so it is not
//    taken again. Works on a subcube spanned by an arbitrary dimension set
//    (a GEEC's Dim(k) is not contiguous), with fault knowledge abstracted
//    behind a link-usability predicate. A breadth-first fallback guards
//    against dead ends; under the Theorem-3 precondition the fallback is
//    never needed (asserted by tests), and its use is reported in the stats
//    so experiments cannot silently lean on it.
//
//  * SafetyLevelRouter — Wu's safety levels [5] for full hypercubes with
//    node faults: each node's level S(u) is the largest h such that minimal
//    routing to any nonfaulty destination within distance h is guaranteed;
//    levels are computed by n-1 rounds of neighbor exchange (the paper's
//    "rounds of fault status exchange").
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_set.hpp"
#include "routing/route.hpp"
#include "util/bits.hpp"

namespace gcube {

/// May a packet traverse the link in dimension c at node u?
using LinkUsablePredicate = std::function<bool(NodeId, Dim)>;

struct SubcubeFtStats {
  std::size_t spare_hops = 0;           // detour hops taken
  std::size_t faults_encountered = 0;   // distinct unusable links met (F)
  bool used_fallback = false;           // BFS safeguard engaged
};

/// Routes from `start` to `dest` moving only along dimensions set in
/// `dims_mask`, using the paper's purely local mechanism (preferred
/// dimension, else masked spare, no 180-degree turns). Preconditions: start
/// and dest agree outside dims_mask; every node of the subcube has a
/// physical link in every dims_mask dimension (true for GEECs by
/// construction). Fails (with a reason) only if the subcube minus unusable
/// links disconnects start from dest. The route length is exactly
/// H(start, dest) + 2 * stats.spare_hops; with only local knowledge the
/// number of spare hops can exceed the number of distinct faults, so this
/// router alone does not meet the paper's 2F bound (see
/// informed_subcube_route and the abl_ft_hypercube benchmark).
[[nodiscard]] RoutingResult adaptive_subcube_route(
    NodeId start, NodeId dest, NodeId dims_mask,
    const LinkUsablePredicate& usable, SubcubeFtStats* stats = nullptr);

/// Fault-aware optimal routing within the subcube: BFS from the destination
/// over usable links (modeling the paper's rounds of fault-status exchange
/// within a class — §1 claim 4), then walk downhill. Produces the exact
/// fault-aware shortest path, which is at most 2 hops longer per fault in
/// the subcube; this is what FTGCR and FREH use for in-cube legs so the
/// paper's optimal+2F guarantee holds.
[[nodiscard]] RoutingResult informed_subcube_route(
    NodeId start, NodeId dest, NodeId dims_mask,
    const LinkUsablePredicate& usable, SubcubeFtStats* stats = nullptr);

/// Wu's safety levels for the n-cube under node faults.
class SafetyLevelRouter {
 public:
  /// Computes all safety levels; `faults` should contain node faults only
  /// (link faults are outside the classical formulation and rejected).
  SafetyLevelRouter(Dim n, const FaultSet& faults);

  [[nodiscard]] Dim level(NodeId u) const { return levels_[u]; }

  /// Wu's unicast: from a node with S >= H(s, d) the route is minimal; from
  /// an unsafe source the first hop may be a spare toward a safer node.
  [[nodiscard]] RoutingResult plan(NodeId s, NodeId d) const;

  [[nodiscard]] Dim dims() const noexcept { return n_; }

 private:
  Dim n_;
  const FaultSet& faults_;
  std::vector<Dim> levels_;
};

}  // namespace gcube
