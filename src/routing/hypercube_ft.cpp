#include "routing/hypercube_ft.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace gcube {

namespace {

/// BFS within the subcube spanned by dims_mask, over usable links only.
/// Returns the hop sequence or nothing if disconnected. This is the
/// safeguard path of adaptive_subcube_route, not the normal mechanism.
std::optional<std::vector<Dim>> bfs_subcube(NodeId start, NodeId dest,
                                            NodeId dims_mask,
                                            const LinkUsablePredicate& usable) {
  if (start == dest) return std::vector<Dim>{};
  std::unordered_map<NodeId, std::pair<NodeId, Dim>> prev;  // node -> (from, dim)
  std::deque<NodeId> queue{start};
  prev.emplace(start, std::make_pair(start, Dim{0}));
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    NodeId mask = dims_mask;
    while (mask != 0) {
      const Dim c = lsb_index(mask);
      mask &= mask - 1;
      if (!usable(u, c)) continue;
      const NodeId v = flip_bit(u, c);
      if (prev.contains(v)) continue;
      prev.emplace(v, std::make_pair(u, c));
      if (v == dest) {
        std::vector<Dim> hops;
        NodeId w = dest;
        while (w != start) {
          const auto& [from, dim] = prev.at(w);
          hops.push_back(dim);
          w = from;
        }
        std::reverse(hops.begin(), hops.end());
        return hops;
      }
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace

RoutingResult adaptive_subcube_route(NodeId start, NodeId dest,
                                     NodeId dims_mask,
                                     const LinkUsablePredicate& usable,
                                     SubcubeFtStats* stats) {
  GCUBE_REQUIRE(((start ^ dest) & ~dims_mask) == 0,
                "start and dest must agree outside the subcube dimensions");
  SubcubeFtStats local_stats;
  SubcubeFtStats& st = stats != nullptr ? *stats : local_stats;
  st = SubcubeFtStats{};

  RoutingResult result;
  Route route(start);
  NodeId cur = start;
  NodeId masked = 0;  // spare dimensions already used (paper's mask)
  Dim last_dim = kMaxDimension + 1;  // no 180-degree turns (see below)
  std::unordered_set<std::uint64_t> faults_seen;
  auto note_fault = [&](NodeId u, Dim c) {
    const LinkId l = LinkId::of(u, c);
    if (faults_seen.insert((std::uint64_t{l.lo} << 6) | l.dim).second) {
      ++st.faults_encountered;
    }
  };

  // Hop budget: optimal + two per possible detour. Exceeding it means the
  // greedy is wandering; switch to the BFS safeguard.
  const std::size_t budget =
      hamming(start, dest) + 2 * popcount(dims_mask) + 2;
  auto move_along = [&](Dim c) {
    route.append(c);
    cur = flip_bit(cur, c);
    last_dim = c;
  };
  while (cur != dest) {
    if (route.length() > budget) break;
    const NodeId pref = (cur ^ dest) & dims_mask;
    bool moved = false;
    // Preferred dimensions first, but never immediately undo the previous
    // hop: a spare hop followed by a preferred hop in the same dimension
    // would ping-pong between two nodes and pay for the same fault twice.
    // The arrival dimension is taken as preferred only when it is the sole
    // usable choice.
    bool last_dim_usable_pref = false;
    for (NodeId m = pref; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      if (c == last_dim) {
        last_dim_usable_pref = usable(cur, c);
        continue;
      }
      if (usable(cur, c)) {
        move_along(c);
        moved = true;
        break;
      }
      note_fault(cur, c);
    }
    if (!moved && last_dim_usable_pref) {
      move_along(last_dim);
      moved = true;
    }
    if (moved) continue;
    // Every preferred link is down: take a usable spare dimension and mask
    // it (paper: "use the spare dimension and mask it so that it will not
    // be used again" — this is what makes the walk livelock-free).
    for (NodeId m = dims_mask & ~pref & ~masked; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      if (c == last_dim) continue;  // would undo the previous hop
      if (usable(cur, c)) {
        masked |= NodeId{1} << c;
        move_along(c);
        ++st.spare_hops;
        moved = true;
        break;
      }
      note_fault(cur, c);
    }
    // Last resort: backtrack along the arrival dimension (the one move the
    // no-180 rule withheld). The next node then re-chooses with this
    // dimension masked, so the walk cannot oscillate.
    if (!moved && last_dim <= kMaxDimension && usable(cur, last_dim)) {
      masked |= NodeId{1} << last_dim;
      move_along(last_dim);
      ++st.spare_hops;
      moved = true;
    }
    if (!moved) break;  // dead end; fall through to the safeguard
  }

  if (cur == dest) {
    result.faults_hit = st.faults_encountered;
    result.route = std::move(route);
    return result;
  }

  // Safeguard: complete the route by BFS over usable links. Under the
  // Theorem-3 precondition (< dim faults per GEEC) this is unreachable;
  // tests assert used_fallback stays false there.
  st.used_fallback = true;
  const auto tail = bfs_subcube(cur, dest, dims_mask, usable);
  if (!tail) {
    result.failure = "subcube disconnected between current node and target";
    result.faults_hit = st.faults_encountered;
    return result;
  }
  for (const Dim c : *tail) route.append(c);
  result.faults_hit = st.faults_encountered;
  result.route = std::move(route);
  return result;
}

RoutingResult informed_subcube_route(NodeId start, NodeId dest,
                                     NodeId dims_mask,
                                     const LinkUsablePredicate& usable,
                                     SubcubeFtStats* stats) {
  GCUBE_REQUIRE(((start ^ dest) & ~dims_mask) == 0,
                "start and dest must agree outside the subcube dimensions");
  SubcubeFtStats local_stats;
  SubcubeFtStats& st = stats != nullptr ? *stats : local_stats;
  st = SubcubeFtStats{};
  RoutingResult result;

  // Fast path: the plain dimension-ordered path, taken when every link on
  // it is usable (the overwhelmingly common case — faults are sparse).
  {
    Route direct(start);
    NodeId cur = start;
    bool clean = true;
    for (NodeId m = (start ^ dest) & dims_mask; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      if (!usable(cur, c)) {
        clean = false;
        break;
      }
      direct.append(c);
      cur = flip_bit(cur, c);
    }
    if (clean) {
      result.route = std::move(direct);
      return result;
    }
  }

  // Fault-aware distances to the destination, learned by BFS over usable
  // links — the planner-side model of the paper's fault-status exchange
  // rounds within a class.
  std::unordered_map<NodeId, std::uint32_t> dist;
  std::deque<NodeId> queue{dest};
  dist.emplace(dest, 0);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId m = dims_mask; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      if (!usable(u, c)) continue;
      const NodeId v = flip_bit(u, c);
      if (dist.emplace(v, dist.at(u) + 1).second) queue.push_back(v);
    }
  }
  const auto it_start = dist.find(start);
  if (it_start == dist.end()) {
    result.failure = "subcube disconnected between start and destination";
    return result;
  }

  std::unordered_set<std::uint64_t> faults_seen;
  Route route(start);
  NodeId cur = start;
  while (cur != dest) {
    Dim chosen = kMaxDimension + 1;
    const std::uint32_t here = dist.at(cur);
    for (NodeId m = dims_mask; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      if (!usable(cur, c)) {  // an encountered fault, for the stats
        const LinkId l = LinkId::of(cur, c);
        if (faults_seen.insert((std::uint64_t{l.lo} << 6) | l.dim).second) {
          ++st.faults_encountered;
        }
        continue;
      }
      const auto it = dist.find(flip_bit(cur, c));
      if (it == dist.end() || it->second != here - 1) continue;
      // Downhill neighbor; prefer a preferred dimension on ties.
      if (chosen > kMaxDimension || (bit(cur ^ dest, c) == 1 &&
                                     bit(cur ^ dest, chosen) == 0)) {
        chosen = c;
      }
    }
    GCUBE_REQUIRE(chosen <= kMaxDimension,
                  "downhill neighbor must exist on a shortest path");
    if (bit(cur ^ dest, chosen) == 0) ++st.spare_hops;
    route.append(chosen);
    cur = flip_bit(cur, chosen);
  }
  result.faults_hit = st.faults_encountered;
  result.route = std::move(route);
  return result;
}

SafetyLevelRouter::SafetyLevelRouter(Dim n, const FaultSet& faults)
    : n_(n), faults_(faults) {
  GCUBE_REQUIRE(n >= 1 && n <= 20, "safety levels need 1 <= n <= 20");
  GCUBE_REQUIRE(faults.link_fault_count() == 0,
                "safety levels are defined for node faults");
  const auto nodes = static_cast<std::size_t>(pow2(n));
  levels_.assign(nodes, n);
  for (const NodeId u : faults.faulty_nodes()) levels_[u] = 0;
  // n-1 rounds of neighbor exchange reach the fixpoint (Wu 1997).
  std::vector<Dim> next(nodes);
  std::vector<Dim> sorted(n);
  for (Dim round = 0; round + 1 < n; ++round) {
    for (NodeId u = 0; u < nodes; ++u) {
      if (faults_.node_faulty(u)) {
        next[u] = 0;
        continue;
      }
      for (Dim c = 0; c < n_; ++c) sorted[c] = levels_[flip_bit(u, c)];
      std::sort(sorted.begin(), sorted.end());
      // S(u) = n if the ascending neighbor sequence dominates (0,1,..,n-1);
      // otherwise k-1 for the first position k (1-based) where it falls
      // short.
      Dim level = n_;
      for (Dim i = 0; i < n_; ++i) {
        if (sorted[i] < i) {
          level = i;  // first shortfall at 1-based position i+1 -> level i
          break;
        }
      }
      next[u] = level;
    }
    levels_.swap(next);
  }
}

RoutingResult SafetyLevelRouter::plan(NodeId s, NodeId d) const {
  RoutingResult result;
  if (faults_.node_faulty(s) || faults_.node_faulty(d)) {
    result.failure = "source or destination faulty";
    return result;
  }
  Route route(s);
  NodeId cur = s;
  // Once a node with S(cur) >= H(cur, d) is reached, each step picks a
  // nonfaulty preferred neighbor with S >= h-1, which exists by the level
  // definition; the route is then minimal from that point on.
  const std::size_t budget = hamming(s, d) + 2;
  while (cur != d) {
    if (route.length() > budget) {
      result.failure = "safety-level routing exceeded its hop budget";
      return result;
    }
    const Dim h = hamming(cur, d);
    Dim best_dim = n_;
    // Preferred: any differing dimension whose neighbor can finish the job.
    for (NodeId m = cur ^ d; m != 0; m &= m - 1) {
      const Dim c = lsb_index(m);
      const NodeId w = flip_bit(cur, c);
      if (!faults_.node_faulty(w) && (level(w) >= h - 1 || w == d)) {
        best_dim = c;
        break;
      }
    }
    if (best_dim == n_ && cur == s) {
      // Unsafe source: a spare first hop toward a sufficiently safe node
      // still guarantees delivery (at +2 hops).
      for (NodeId m = ~(cur ^ d) & low_mask(n_); m != 0; m &= m - 1) {
        const Dim c = lsb_index(m);
        const NodeId w = flip_bit(cur, c);
        if (!faults_.node_faulty(w) && level(w) >= h + 1) {
          best_dim = c;
          break;
        }
      }
    }
    if (best_dim == n_) {
      result.failure = "no neighbor with sufficient safety level";
      return result;
    }
    route.append(best_dim);
    cur = flip_bit(cur, best_dim);
  }
  result.route = std::move(route);
  return result;
}

}  // namespace gcube
