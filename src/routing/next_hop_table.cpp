#include "routing/next_hop_table.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "routing/tree_routing.hpp"
#include "topology/gaussian_tree.hpp"

namespace gcube {

NextHopFabric::NextHopFabric(const GaussianCube& gc) {
  alpha_ = gc.alpha();
  if (alpha_ > kMaxAlpha) return;
  supported_ = true;
  class_count_ = gc.class_count();
  class_mask_ = static_cast<NodeId>(class_count_ - 1);
  high_mask_ = low_bits(~low_mask(alpha_), gc.dims());
  chunk_mask_ = (std::uint32_t{1} << class_count_) - 1;
  fold_iters_ = (static_cast<std::uint32_t>(gc.dims()) + class_count_ - 1) /
                class_count_;
  high_dims_.resize(class_count_);
  for (std::uint32_t k = 0; k < class_count_; ++k) {
    high_dims_[k] = gc.high_dims_mask(k);
  }
  // One entry per (class(cur), class(dst), owning-class subset). Entries
  // with a == b and an empty subset are unreachable (they imply cur == dst)
  // and hold the sentinel; entries whose subset contains a are consulted
  // only after a's own pending bits were fixed, at which point the walk's
  // first edge is what matters — plan_tree_walk handles targets equal to
  // the endpoints, so building them uniformly is correct.
  const GaussianTree tree(alpha_);
  const std::uint32_t subsets = std::uint32_t{1} << class_count_;
  tree_edge_.assign(static_cast<std::size_t>(class_count_) * class_count_ *
                        subsets,
                    0xFF);
  std::vector<NodeId> targets;
  for (std::uint32_t a = 0; a < class_count_; ++a) {
    for (std::uint32_t b = 0; b < class_count_; ++b) {
      for (std::uint32_t subset = 0; subset < subsets; ++subset) {
        targets.clear();
        for (std::uint32_t s = subset; s != 0; s &= s - 1) {
          targets.push_back(lsb_index(s));
        }
        const std::vector<NodeId> walk = plan_tree_walk(tree, a, b, targets);
        if (walk.size() < 2) continue;  // nothing to cross: sentinel stays
        tree_edge_[(((static_cast<std::size_t>(a) << alpha_) | b)
                    << class_count_) |
                   subset] = static_cast<std::uint8_t>(
            lsb_index(walk[0] ^ walk[1]));
      }
    }
  }
  // Zero padding so the AVX2 byte gathers (4-byte loads at scale 1) stay in
  // bounds at the table's last entries.
  tree_edge_.insert(tree_edge_.end(), kGatherPad, 0);
}

void NextHopFabric::fault_free_hops(std::size_t count, const NodeId* cur,
                                    const NodeId* dst,
                                    Dim* out) const noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = fault_free_hop(cur[i], dst[i]);
  }
}

void NextHopFabric::fault_free_hops(SimdLevel level, std::size_t count,
                                    const NodeId* cur, const NodeId* dst,
                                    Dim* out) const noexcept {
#if defined(__x86_64__)
  if (level >= SimdLevel::kAvx2) {
    fault_free_hops_avx2(count, cur, dst, out);
    return;
  }
#else
  (void)level;
#endif
  fault_free_hops(count, cur, dst, out);
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) void NextHopFabric::fault_free_hops_avx2(
    std::size_t count, const NodeId* cur, const NodeId* dst,
    Dim* out) const noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vclass = _mm256_set1_epi32(static_cast<int>(class_mask_));
  const __m256i vhigh = _mm256_set1_epi32(static_cast<int>(high_mask_));
  const __m256i vchunk = _mm256_set1_epi32(static_cast<int>(chunk_mask_));
  const __m128i shift_cc = _mm_cvtsi32_si128(static_cast<int>(class_count_));
  const __m128i shift_a = _mm_cvtsi32_si128(static_cast<int>(alpha_));
  const auto* hd_table = reinterpret_cast<const int*>(high_dims_.data());
  const auto* edge_table = reinterpret_cast<const int*>(tree_edge_.data());
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cur + i));
    const __m256i d = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + i));
    const __m256i diff = _mm256_xor_si256(c, d);
    const __m256i k = _mm256_and_si256(c, vclass);
    const __m256i owned = _mm256_i32gather_epi32(hd_table, k, 4);
    const __m256i pending = _mm256_and_si256(diff, owned);
    // lsb_index(pending) without per-lane tzcnt: isolate the low bit and
    // read its float exponent — exact because the operand is a power of two
    // below 2^31 (labels stop at kMaxDimension bits).
    const __m256i low = _mm256_and_si256(pending,
                                         _mm256_sub_epi32(zero, pending));
    const __m256i exp_bits = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(low)), 23);
    __m256i hop = _mm256_sub_epi32(exp_bits, _mm256_set1_epi32(127));
    const __m256i pend_zero = _mm256_cmpeq_epi32(pending, zero);
    if (_mm256_movemask_epi8(pend_zero) != 0) {
      // Some lane exhausted its own class's bits: fold the remaining high
      // diff bits into an owning-class subset and gather the tree edge.
      __m256i f = _mm256_and_si256(diff, vhigh);
      __m256i subset = zero;
      for (std::uint32_t r = 0; r < fold_iters_; ++r) {
        subset = _mm256_or_si256(subset, _mm256_and_si256(f, vchunk));
        f = _mm256_srl_epi32(f, shift_cc);
      }
      const __m256i kd = _mm256_and_si256(d, vclass);
      __m256i idx = _mm256_or_si256(_mm256_sll_epi32(k, shift_a), kd);
      idx = _mm256_or_si256(_mm256_sll_epi32(idx, shift_cc), subset);
      const __m256i edge = _mm256_and_si256(
          _mm256_i32gather_epi32(edge_table, idx, 1),
          _mm256_set1_epi32(0xFF));
      hop = _mm256_blendv_epi8(hop, edge, pend_zero);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), hop);
  }
  for (; i < count; ++i) out[i] = fault_free_hop(cur[i], dst[i]);
}

#else

void NextHopFabric::fault_free_hops_avx2(std::size_t count, const NodeId* cur,
                                         const NodeId* dst,
                                         Dim* out) const noexcept {
  fault_free_hops(count, cur, dst, out);
}

#endif

}  // namespace gcube
