#include "routing/next_hop_table.hpp"

#include "routing/tree_routing.hpp"
#include "topology/gaussian_tree.hpp"

namespace gcube {

NextHopFabric::NextHopFabric(const GaussianCube& gc) {
  alpha_ = gc.alpha();
  if (alpha_ > kMaxAlpha) return;
  supported_ = true;
  class_count_ = gc.class_count();
  class_mask_ = static_cast<NodeId>(class_count_ - 1);
  high_mask_ = low_bits(~low_mask(alpha_), gc.dims());
  chunk_mask_ = (std::uint32_t{1} << class_count_) - 1;
  high_dims_.resize(class_count_);
  for (std::uint32_t k = 0; k < class_count_; ++k) {
    high_dims_[k] = gc.high_dims_mask(k);
  }
  // One entry per (class(cur), class(dst), owning-class subset). Entries
  // with a == b and an empty subset are unreachable (they imply cur == dst)
  // and hold the sentinel; entries whose subset contains a are consulted
  // only after a's own pending bits were fixed, at which point the walk's
  // first edge is what matters — plan_tree_walk handles targets equal to
  // the endpoints, so building them uniformly is correct.
  const GaussianTree tree(alpha_);
  const std::uint32_t subsets = std::uint32_t{1} << class_count_;
  tree_edge_.assign(static_cast<std::size_t>(class_count_) * class_count_ *
                        subsets,
                    0xFF);
  std::vector<NodeId> targets;
  for (std::uint32_t a = 0; a < class_count_; ++a) {
    for (std::uint32_t b = 0; b < class_count_; ++b) {
      for (std::uint32_t subset = 0; subset < subsets; ++subset) {
        targets.clear();
        for (std::uint32_t s = subset; s != 0; s &= s - 1) {
          targets.push_back(lsb_index(s));
        }
        const std::vector<NodeId> walk = plan_tree_walk(tree, a, b, targets);
        if (walk.size() < 2) continue;  // nothing to cross: sentinel stays
        tree_edge_[(((static_cast<std::size_t>(a) << alpha_) | b)
                    << class_count_) |
                   subset] = static_cast<std::uint8_t>(
            lsb_index(walk[0] ^ walk[1]));
      }
    }
  }
}

void NextHopFabric::fault_free_hops(std::size_t count, const NodeId* cur,
                                    const NodeId* dst,
                                    Dim* out) const noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = fault_free_hop(cur[i], dst[i]);
  }
}

}  // namespace gcube
