// Routes and route validation.
//
// A Route is a source node plus the sequence of dimensions crossed — the
// natural wire format for bit-flip topologies (the paper's O(n) message
// overhead is exactly such a header). Nothing downstream trusts a planner:
// validate() re-checks every hop against the topology's link predicate and
// the fault set, and reroute-freedom properties (no repeated node for
// fault-free optimal routes) are asserted in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

class Route {
 public:
  Route() = default;
  explicit Route(NodeId src) : src_(src) {}
  Route(NodeId src, std::vector<Dim> hops)
      : src_(src), hops_(std::move(hops)) {}

  [[nodiscard]] NodeId source() const noexcept { return src_; }
  [[nodiscard]] const std::vector<Dim>& hops() const noexcept { return hops_; }
  [[nodiscard]] std::size_t length() const noexcept { return hops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }

  void append(Dim c) { hops_.push_back(c); }
  void append(const Route& tail);

  /// The node reached after all hops.
  [[nodiscard]] NodeId destination() const noexcept;

  /// Every visited node, in order (size == length() + 1).
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// True iff no node is visited twice (a cycle-free route; the paper's
  /// deadlock-freedom claim is about generated routes being cycle-free).
  [[nodiscard]] bool is_simple() const;

 private:
  NodeId src_ = 0;
  std::vector<Dim> hops_;
};

/// Result of checking a route hop-by-hop.
struct RouteCheck {
  bool ok = true;
  std::string reason;  // first problem found, empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Checks that every hop uses an existing link of `topo`, that no traversed
/// link is unusable under `faults`, and that no visited node (including the
/// source) is faulty.
[[nodiscard]] RouteCheck validate_route(const Topology& topo,
                                        const FaultSet& faults,
                                        const Route& route);

/// Fault-free overload.
[[nodiscard]] RouteCheck validate_route(const Topology& topo,
                                        const Route& route);

/// A planner outcome: either a route or a diagnostic failure. Routing under
/// faults can legitimately fail when preconditions are violated; callers
/// must look.
struct RoutingResult {
  std::optional<Route> route;
  std::string failure;         // why planning failed, when !route
  std::size_t faults_hit = 0;  // faults encountered (the paper's F)

  [[nodiscard]] bool delivered() const noexcept { return route.has_value(); }
};

}  // namespace gcube
