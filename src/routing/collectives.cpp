#include "routing/collectives.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/error.hpp"

namespace gcube {

SpanningTree build_bfs_spanning_tree(const Topology& topo, NodeId root,
                                     const FaultSet* faults) {
  GCUBE_REQUIRE(root < topo.node_count(), "root out of range");
  GCUBE_REQUIRE(faults == nullptr || !faults->node_faulty(root),
                "root must be nonfaulty");
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(topo.node_count(), SpanningTree::kNoParent);
  tree.children.assign(topo.node_count(), {});
  tree.depth.assign(topo.node_count(), SpanningTree::kUnreachableDepth);
  tree.parent[root] = root;
  tree.depth[root] = 0;
  tree.reached = 1;
  std::deque<NodeId> queue{root};
  const Dim n = topo.dims();
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (Dim c = 0; c < n; ++c) {
      if (!topo.has_link(u, c)) continue;
      if (faults != nullptr && !faults->link_usable(u, c)) continue;
      const NodeId v = Topology::neighbor(u, c);
      if (tree.parent[v] != SpanningTree::kNoParent) continue;
      tree.parent[v] = u;
      tree.depth[v] = tree.depth[u] + 1;
      tree.max_depth = std::max(tree.max_depth, tree.depth[v]);
      tree.children[u].push_back(v);
      ++tree.reached;
      queue.push_back(v);
    }
  }
  return tree;
}

std::uint64_t single_port_broadcast_rounds(const SpanningTree& tree) {
  // time(u) = max over its children (ordered longest first) of
  // i + 1 + time(child_i), computed bottom-up. An explicit post-order
  // avoids recursion depth limits on deep trees.
  std::vector<std::uint64_t> time(tree.parent.size(), 0);
  std::vector<NodeId> order;
  order.reserve(tree.reached);
  std::deque<NodeId> queue{tree.root};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (const NodeId v : tree.children[u]) queue.push_back(v);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    std::vector<std::uint64_t> kids;
    kids.reserve(tree.children[u].size());
    for (const NodeId v : tree.children[u]) kids.push_back(time[v]);
    std::sort(kids.begin(), kids.end(), std::greater<>());
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      t = std::max(t, i + 1 + kids[i]);
    }
    time[u] = t;
  }
  return time[tree.root];
}

std::uint64_t all_port_broadcast_rounds(const SpanningTree& tree) {
  return tree.max_depth;
}

MulticastResult multicast_tree(const Router& router, NodeId src,
                               const std::vector<NodeId>& dests) {
  MulticastResult result;
  std::unordered_set<std::uint64_t> used;  // canonical (lo, dim) links
  for (const NodeId d : dests) {
    const RoutingResult planned = router.plan(src, d);
    GCUBE_REQUIRE(planned.delivered(),
                  "multicast requires routable destinations");
    const Route& route = *planned.route;
    result.max_route_length = std::max(result.max_route_length,
                                       route.length());
    result.total_route_length += route.length();
    NodeId cur = src;
    for (const Dim c : route.hops()) {
      const LinkId l = LinkId::of(cur, c);
      used.insert((std::uint64_t{l.lo} << 6) | l.dim);
      cur = flip_bit(cur, c);
    }
  }
  result.links_used = used.size();
  return result;
}

}  // namespace gcube
