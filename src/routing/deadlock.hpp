// Channel-dependency analysis (deadlock freedom).
//
// The paper claims its strategy "generates deadlock-free routes". Under the
// simulation model actually used (store-and-forward with eager readership —
// service outpaces arrival) any set of finite, cycle-free routes is
// deadlock-free. For stronger models (wormhole switching, bounded buffers)
// the classical criterion is Dally & Seitz: routing is deadlock-free iff
// the channel dependency graph (directed links as vertices; an edge
// whenever some route uses one link immediately after another) is acyclic.
// This module builds that graph from any set of routes so the claim can be
// tested per model rather than taken on faith; bench/abl_route_overhead and
// the routing tests report the findings (e-cube: acyclic; FFGCR's mixed
// dimension order: not wormhole-safe in general — see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "routing/route.hpp"
#include "util/bits.hpp"

namespace gcube {

class ChannelDependencyGraph {
 public:
  /// Records the channel sequence of one route.
  void add_route(const Route& route);

  /// Records a route whose hop i uses virtual channel vcs[i]: the vertex
  /// set becomes (directed link, vc) pairs. With the ascending-vc
  /// annotation from annotate_virtual_channels the graph stays acyclic.
  void add_route(const Route& route, const std::vector<std::uint32_t>& vcs);

  /// Number of distinct directed channels seen.
  [[nodiscard]] std::size_t channel_count() const { return edges_.size(); }

  /// Number of distinct dependency edges.
  [[nodiscard]] std::size_t dependency_count() const;

  /// Dally-Seitz criterion: true iff some dependency cycle exists.
  [[nodiscard]] bool has_cycle() const;

 private:
  /// Directed channel id: (source node, dimension[, virtual channel]).
  [[nodiscard]] static std::uint64_t channel_id(NodeId from, Dim dim,
                                                std::uint32_t vc = 0) {
    return (std::uint64_t{vc} << 38) | (std::uint64_t{from} << 6) | dim;
  }

  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> edges_;
};

/// Virtual-channel annotation making ANY route set wormhole-safe: hop i
/// gets vc = number of dimension *descents* before it (vc increments
/// whenever the dimension sequence goes down). Within one vc the dimensions
/// strictly ascend, so dependencies are ordered by (vc, dimension) — a
/// topological order — and the (link, vc) dependency graph is acyclic for
/// any set of routes (tested for FFGCR's all-pairs sets, whose plain CDG is
/// cyclic). The price is hardware VCs: one more than the route's descent
/// count; bench/abl_virtual_channels measures how many FFGCR needs.
[[nodiscard]] std::vector<std::uint32_t> annotate_virtual_channels(
    const Route& route);

/// Virtual channels needed for this route (max annotation + 1; 0 for an
/// empty route).
[[nodiscard]] std::uint32_t virtual_channels_required(const Route& route);

}  // namespace gcube
