// FFGCR — Fault-Free Gaussian Cube Routing (paper Algorithm 3).
//
// Plan structure for routing s -> d in GC(n, 2^alpha):
//  1. Group the high dimensions (>= alpha) in which s and d differ by the
//     ending class that owns them: bit c can only be flipped at a node of
//     class c mod 2^alpha.
//  2. Plan the inter-class itinerary: an optimal walk on the Gaussian Tree
//     T_alpha from class(s) to class(d) that visits every owning class
//     (tree_routing.hpp; the paper's PC + FindBP/B-table + CT machinery).
//  3. Execute: each tree edge is one cube hop in a dimension < alpha
//     (available at every node of the class); on first arrival at an owning
//     class, flip all its pending high bits (each flip stays inside the
//     class).
//
// The resulting route is optimal: every cube path must project onto a tree
// walk covering the same classes, and must flip the same high bits.
// Verified against BFS ground truth in the tests.
//
// Caching. The itinerary depends only on (class(s), s ^ d) — a key space
// of 2^(alpha + n), far smaller than the (s, d) pair space — so itineraries
// are memoized in a GcItineraryCache shared-ownership table and executed
// without mutation. Full routes and stepwise next hops are memoized per
// (s, d) in sharded open-addressed tables (util/flat_cache.hpp); FFGCR is
// fault-blind, so its entries never go stale.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "routing/next_hop_table.hpp"
#include "routing/router.hpp"
#include "topology/gaussian_cube.hpp"
#include "topology/gaussian_tree.hpp"
#include "util/flat_cache.hpp"

namespace gcube {

/// The source-computed plan, exposed separately so tests and the
/// fault-tolerant router can reuse the itinerary.
struct GcRoutePlan {
  /// class -> mask of high dimensions to flip there (nonzero masks only).
  std::map<NodeId, NodeId> pending_high;
  /// The inter-class walk on T_alpha (front() == class(s), back() ==
  /// class(d); consecutive entries are tree neighbors).
  std::vector<NodeId> class_walk;
};

/// Computes the itinerary for routing s -> d (both < gc.node_count()).
[[nodiscard]] GcRoutePlan make_gc_route_plan(const GaussianCube& gc,
                                             const GaussianTree& tree,
                                             NodeId s, NodeId d);

/// Memoized itineraries, keyed on (class(s), s ^ d) — the pair the plan is
/// actually a function of. Itineraries are fault-independent, so entries
/// never expire; consumers treat them as immutable and track pending-mask
/// consumption on their own stack.
class GcItineraryCache {
 public:
  [[nodiscard]] std::shared_ptr<const GcRoutePlan> get(const GaussianCube& gc,
                                                       const GaussianTree& tree,
                                                       NodeId s,
                                                       NodeId d) const;

 private:
  mutable ShardedVersionCache<std::shared_ptr<const GcRoutePlan>> cache_;
};

class FfgcrRouter final : public Router {
 public:
  explicit FfgcrRouter(const GaussianCube& gc);

  [[nodiscard]] RoutingResult plan(NodeId s, NodeId d) const override;
  /// Memoized shared route; FFGCR never fails, so the result is non-null.
  [[nodiscard]] std::shared_ptr<const Route> plan_shared(
      NodeId s, NodeId d) const override;
  /// Stepwise plan: a table lookup through the next-hop fabric when the
  /// modulus supports it (no caches touched), the memoized plan-based path
  /// otherwise. Routes are optimal either way, so first-hop iteration
  /// strictly shrinks the remaining distance and always terminates at dst.
  [[nodiscard]] std::optional<Dim> next_hop(NodeId cur,
                                            NodeId dst) const override;
  /// Counters for the (s, d) route cache and the (cur, dst) hop cache; the
  /// hop cache stays untouched (all-zero) when the fabric serves next_hop.
  [[nodiscard]] RouterCacheStats cache_stats() const override {
    return {plan_cache_.stats(), hop_cache_.stats()};
  }
  [[nodiscard]] const NextHopFabric* fabric() const override {
    return &fabric_;
  }
  [[nodiscard]] std::string name() const override { return "FFGCR"; }

  /// The optimal fault-free route length from s to d, computable without
  /// planning (used as the baseline in the +2F overhead checks).
  [[nodiscard]] std::size_t optimal_length(NodeId s, NodeId d) const;

  [[nodiscard]] const GaussianTree& class_tree() const noexcept {
    return tree_;
  }

 private:
  [[nodiscard]] Route build_route(NodeId s, NodeId d) const;

  const GaussianCube& gc_;
  GaussianTree tree_;
  NextHopFabric fabric_;
  mutable GcItineraryCache itineraries_;
  mutable ShardedVersionCache<std::shared_ptr<const Route>> plan_cache_;
  mutable ShardedVersionCache<Dim> hop_cache_;
};

}  // namespace gcube
