#include "routing/ffgcr.hpp"

#include "routing/tree_routing.hpp"
#include "util/error.hpp"

namespace gcube {

GcRoutePlan make_gc_route_plan(const GaussianCube& gc,
                               const GaussianTree& tree, NodeId s, NodeId d) {
  GCUBE_REQUIRE(s < gc.node_count() && d < gc.node_count(),
                "node out of range");
  GcRoutePlan plan;
  const Dim alpha = gc.alpha();
  NodeId high_diff = (s ^ d) & ~low_mask(alpha);
  while (high_diff != 0) {
    const Dim c = lsb_index(high_diff);
    high_diff &= high_diff - 1;
    plan.pending_high[c & low_mask(alpha)] |= NodeId{1} << c;
  }
  std::vector<NodeId> targets;
  targets.reserve(plan.pending_high.size());
  for (const auto& [k, mask] : plan.pending_high) targets.push_back(k);
  plan.class_walk = plan_tree_walk(tree, gc.ending_class(s),
                                   gc.ending_class(d), targets);
  return plan;
}

FfgcrRouter::FfgcrRouter(const GaussianCube& gc)
    : gc_(gc), tree_(gc.alpha()) {}

RoutingResult FfgcrRouter::plan(NodeId s, NodeId d) const {
  GcRoutePlan itinerary = make_gc_route_plan(gc_, tree_, s, d);
  Route route(s);
  NodeId cur = s;
  auto fix_high_bits = [&](NodeId cls) {
    const auto it = itinerary.pending_high.find(cls);
    if (it == itinerary.pending_high.end()) return;
    NodeId mask = it->second;
    while (mask != 0) {
      const Dim c = lsb_index(mask);
      mask &= mask - 1;
      route.append(c);
      cur = flip_bit(cur, c);
    }
    itinerary.pending_high.erase(it);
  };

  fix_high_bits(itinerary.class_walk.front());
  for (std::size_t i = 1; i < itinerary.class_walk.size(); ++i) {
    // One cube hop realizes the tree edge: the dimension (< alpha) in which
    // the adjacent classes differ, present at every node of either class.
    const Dim c =
        lsb_index(itinerary.class_walk[i - 1] ^ itinerary.class_walk[i]);
    route.append(c);
    cur = flip_bit(cur, c);
    fix_high_bits(itinerary.class_walk[i]);
  }
  GCUBE_REQUIRE(cur == d, "FFGCR route must terminate at the destination");
  RoutingResult result;
  result.route = std::move(route);
  return result;
}

std::optional<Dim> FfgcrRouter::next_hop(NodeId cur, NodeId dst) const {
  if (cur == dst) return std::nullopt;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(cur) << 32) | dst;
  {
    const std::lock_guard<std::mutex> lock(hop_cache_mu_);
    const auto it = hop_cache_.find(key);
    if (it != hop_cache_.end()) return it->second;
  }
  const RoutingResult r = plan(cur, dst);
  GCUBE_REQUIRE(r.delivered() && !r.route->empty(),
                "FFGCR always routes between distinct nodes");
  const Dim c = r.route->hops().front();
  const std::lock_guard<std::mutex> lock(hop_cache_mu_);
  hop_cache_.emplace(key, c);
  return c;
}

std::size_t FfgcrRouter::optimal_length(NodeId s, NodeId d) const {
  const GcRoutePlan itinerary = make_gc_route_plan(gc_, tree_, s, d);
  const NodeId cs = gc_.ending_class(s);
  const NodeId cd = gc_.ending_class(d);
  std::vector<NodeId> terminals{cs, cd};
  Dim high_flips = 0;
  for (const auto& [k, mask] : itinerary.pending_high) {
    terminals.push_back(k);
    high_flips += popcount(mask);
  }
  const std::size_t steiner = steiner_edge_count(tree_, terminals);
  return 2 * steiner - tree_.distance(cs, cd) + high_flips;
}

}  // namespace gcube
