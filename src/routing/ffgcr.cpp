#include "routing/ffgcr.hpp"

#include <array>
#include <utility>

#include "routing/tree_routing.hpp"
#include "util/error.hpp"

namespace gcube {

GcRoutePlan make_gc_route_plan(const GaussianCube& gc,
                               const GaussianTree& tree, NodeId s, NodeId d) {
  GCUBE_REQUIRE(s < gc.node_count() && d < gc.node_count(),
                "node out of range");
  GcRoutePlan plan;
  const Dim alpha = gc.alpha();
  NodeId high_diff = (s ^ d) & ~low_mask(alpha);
  while (high_diff != 0) {
    const Dim c = lsb_index(high_diff);
    high_diff &= high_diff - 1;
    plan.pending_high[c & low_mask(alpha)] |= NodeId{1} << c;
  }
  std::vector<NodeId> targets;
  targets.reserve(plan.pending_high.size());
  for (const auto& [k, mask] : plan.pending_high) targets.push_back(k);
  plan.class_walk = plan_tree_walk(tree, gc.ending_class(s),
                                   gc.ending_class(d), targets);
  return plan;
}

std::shared_ptr<const GcRoutePlan> GcItineraryCache::get(
    const GaussianCube& gc, const GaussianTree& tree, NodeId s,
    NodeId d) const {
  GCUBE_REQUIRE(s < gc.node_count() && d < gc.node_count(),
                "node out of range");
  const std::uint64_t key = pack_node_pair(gc.ending_class(s), s ^ d);
  if (auto hit = cache_.find(key, 0)) return *hit;
  auto plan =
      std::make_shared<const GcRoutePlan>(make_gc_route_plan(gc, tree, s, d));
  cache_.insert(key, 0, plan);
  return plan;
}

FfgcrRouter::FfgcrRouter(const GaussianCube& gc)
    : gc_(gc), tree_(gc.alpha()), fabric_(gc) {}

Route FfgcrRouter::build_route(NodeId s, NodeId d) const {
  const std::shared_ptr<const GcRoutePlan> itinerary =
      itineraries_.get(gc_, tree_, s, d);
  Route route(s);
  NodeId cur = s;
  // Pending masks copied to the stack (at most one entry per dimension) so
  // first-visit consumption does not touch the shared itinerary.
  std::array<std::pair<NodeId, NodeId>, kMaxDimension> pending;
  std::size_t pending_count = 0;
  for (const auto& [cls, mask] : itinerary->pending_high) {
    pending[pending_count++] = {cls, mask};
  }
  auto fix_high_bits = [&](NodeId cls) {
    for (std::size_t i = 0; i < pending_count; ++i) {
      if (pending[i].first != cls) continue;
      NodeId mask = pending[i].second;
      while (mask != 0) {
        const Dim c = lsb_index(mask);
        mask &= mask - 1;
        route.append(c);
        cur = flip_bit(cur, c);
      }
      pending[i] = pending[--pending_count];
      return;
    }
  };

  const std::vector<NodeId>& walk = itinerary->class_walk;
  fix_high_bits(walk.front());
  for (std::size_t i = 1; i < walk.size(); ++i) {
    // One cube hop realizes the tree edge: the dimension (< alpha) in which
    // the adjacent classes differ, present at every node of either class.
    const Dim c = lsb_index(walk[i - 1] ^ walk[i]);
    route.append(c);
    cur = flip_bit(cur, c);
    fix_high_bits(walk[i]);
  }
  GCUBE_REQUIRE(cur == d, "FFGCR route must terminate at the destination");
  return route;
}

RoutingResult FfgcrRouter::plan(NodeId s, NodeId d) const {
  RoutingResult result;
  result.route = *plan_shared(s, d);
  return result;
}

std::shared_ptr<const Route> FfgcrRouter::plan_shared(NodeId s,
                                                      NodeId d) const {
  const std::uint64_t key = pack_node_pair(s, d);
  if (auto hit = plan_cache_.find(key, 0)) return *hit;
  auto route = std::make_shared<const Route>(build_route(s, d));
  plan_cache_.insert(key, 0, route);
  return route;
}

std::optional<Dim> FfgcrRouter::next_hop(NodeId cur, NodeId dst) const {
  if (cur == dst) return std::nullopt;
  if (fabric_.supported()) return fabric_.fault_free_hop(cur, dst);
  const std::uint64_t key = pack_node_pair(cur, dst);
  if (auto hit = hop_cache_.find(key, 0)) return *hit;
  const std::shared_ptr<const Route> route = plan_shared(cur, dst);
  GCUBE_REQUIRE(route != nullptr && !route->empty(),
                "FFGCR always routes between distinct nodes");
  const Dim c = route->hops().front();
  hop_cache_.insert(key, 0, c);
  return c;
}

std::size_t FfgcrRouter::optimal_length(NodeId s, NodeId d) const {
  const std::shared_ptr<const GcRoutePlan> itinerary =
      itineraries_.get(gc_, tree_, s, d);
  const NodeId cs = gc_.ending_class(s);
  const NodeId cd = gc_.ending_class(d);
  std::vector<NodeId> terminals{cs, cd};
  Dim high_flips = 0;
  for (const auto& [k, mask] : itinerary->pending_high) {
    terminals.push_back(k);
    high_flips += popcount(mask);
  }
  const std::size_t steiner = steiner_edge_count(tree_, terminals);
  return 2 * steiner - tree_.distance(cs, cd) + high_flips;
}

}  // namespace gcube
