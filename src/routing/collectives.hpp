// Collective communication on Gaussian Cubes.
//
// The paper's introduction motivates GCs with efficient unicast, multicast,
// broadcast and gather (its reference [1], Hsu/Chung/Hu). This module
// provides those primitives on any bit-flip topology:
//
//  * build_bfs_spanning_tree — a minimum-depth spanning tree from a root
//    (fault-aware when a FaultSet is given). On the hypercube with
//    ascending neighbor order this is exactly the binomial tree.
//  * single_port_broadcast_rounds — completion time when each node can
//    send to one child per round (children scheduled longest-subtree
//    first, the provably optimal order for a fixed tree).
//  * all_port_broadcast_rounds — completion time when a node feeds all
//    children at once: the tree depth. Gather is the same schedule in
//    reverse, so these numbers cover both primitives.
//  * multicast_tree — a multicast route set as the union of unicast routes
//    from a Router, with the link count it occupies.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "routing/router.hpp"
#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace gcube {

struct SpanningTree {
  NodeId root = 0;
  /// parent[v]; parent[root] == root; kNoParent for unreachable nodes.
  std::vector<NodeId> parent;
  std::vector<std::vector<NodeId>> children;
  std::vector<std::uint32_t> depth;  // kUnreachableDepth if unreachable
  std::uint32_t max_depth = 0;
  std::uint64_t reached = 0;  // number of reachable nodes incl. root

  static constexpr NodeId kNoParent = ~NodeId{0};
  static constexpr std::uint32_t kUnreachableDepth = ~std::uint32_t{0};
};

/// Minimum-depth spanning tree by BFS from `root`, over usable links only
/// when `faults` is non-null (faulty nodes are never attached).
[[nodiscard]] SpanningTree build_bfs_spanning_tree(
    const Topology& topo, NodeId root, const FaultSet* faults = nullptr);

/// Rounds to broadcast from the root when each node sends to one child per
/// round after receiving. Children are served longest-completion first —
/// optimal for a fixed tree.
[[nodiscard]] std::uint64_t single_port_broadcast_rounds(
    const SpanningTree& tree);

/// Rounds when every node serves all children simultaneously (= depth).
[[nodiscard]] std::uint64_t all_port_broadcast_rounds(const SpanningTree& tree);

struct MulticastResult {
  /// Directed (node, dim) hops used at least once, counted once.
  std::uint64_t links_used = 0;
  /// Longest route among the destinations.
  std::size_t max_route_length = 0;
  /// Sum of route lengths (total traffic without route sharing).
  std::uint64_t total_route_length = 0;
};

/// Multicast from src to dests as the union of the router's unicast routes.
/// links_used measures sharing: the closer to the Steiner-tree size, the
/// better the routes overlap.
[[nodiscard]] MulticastResult multicast_tree(const Router& router, NodeId src,
                                             const std::vector<NodeId>& dests);

}  // namespace gcube
