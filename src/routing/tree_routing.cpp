#include "routing/tree_routing.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace gcube {

namespace {

/// The Steiner subtree of a terminal set: adjacency of the union of paths
/// from a root terminal to every other terminal.
class SteinerSubtree {
 public:
  SteinerSubtree(const GaussianTree& tree, NodeId root,
                 const std::vector<NodeId>& others)
      : root_(root) {
    adj_[root];  // ensure the root exists even with no other terminals
    for (const NodeId t : others) {
      const auto path = tree.path(root, t);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        add_edge(path[i], path[i + 1]);
      }
    }
  }

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId u) const {
    static const std::vector<NodeId> kEmpty;
    const auto it = adj_.find(u);
    return it == adj_.end() ? kEmpty : it->second;
  }

 private:
  void add_edge(NodeId u, NodeId v) {
    auto& au = adj_[u];
    if (std::find(au.begin(), au.end(), v) != au.end()) return;
    au.push_back(v);
    adj_[v].push_back(u);
    ++edges_;
  }

  NodeId root_;
  std::unordered_map<NodeId, std::vector<NodeId>> adj_;
  std::size_t edges_ = 0;
};

/// Euler-style walk over a Steiner subtree rooted at s, arranged to end at
/// `d` (which must be a subtree node): every subtree edge off the s-d path
/// is walked twice, s-d path edges once. Detours are taken *before*
/// continuing toward d — exactly the paper's "never backtrack to the parent
/// while a destination remains in the subtree" principle.
std::vector<NodeId> euler_walk_to(const SteinerSubtree& st, NodeId s,
                                  NodeId d, const GaussianTree& tree) {
  // Mark the spine: nodes on the s-d path.
  std::unordered_set<NodeId> spine;
  for (const NodeId u : tree.path(s, d)) spine.insert(u);

  std::vector<NodeId> walk;
  // Iterative DFS holding (node, parent); emits on first visit and on each
  // return to a node after a detour.
  struct Frame {
    NodeId node;
    NodeId parent;
    std::vector<NodeId> pending;  // children yet to visit, spine child last
    bool has_parent;
  };
  std::vector<Frame> stack;
  auto make_frame = [&](NodeId u, NodeId parent, bool has_parent) {
    Frame f{u, parent, {}, has_parent};
    NodeId spine_child = u;  // sentinel: none
    for (const NodeId v : st.neighbors(u)) {
      if (has_parent && v == parent) continue;
      if (spine.contains(v) && spine.contains(u)) {
        // At most one neighbor continues along the spine toward d.
        // (u may have several spine neighbors only if u itself is off the
        // spine, which cannot happen here.)
        if (spine_child == u) {
          spine_child = v;
          continue;
        }
      }
      f.pending.push_back(v);
    }
    // Detours first; the spine continuation (if any) goes last.
    std::reverse(f.pending.begin(), f.pending.end());  // pop_back order
    if (spine_child != u) f.pending.insert(f.pending.begin(), spine_child);
    return f;
  };

  stack.push_back(make_frame(s, s, false));
  walk.push_back(s);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.pending.empty()) {
      stack.pop_back();
      if (!stack.empty()) walk.push_back(stack.back().node);
      continue;
    }
    const NodeId next = top.pending.back();
    top.pending.pop_back();
    walk.push_back(next);
    stack.push_back(make_frame(next, top.node, true));
  }
  // The DFS return-phase appends the path back to s; trim the tail so the
  // walk ends at the last visit of d.
  while (!walk.empty() && walk.back() != d) walk.pop_back();
  GCUBE_REQUIRE(!walk.empty(), "walk must reach the destination");
  return walk;
}

}  // namespace

NodeId find_branch_point(const GaussianTree& tree,
                         const std::vector<NodeId>& path, NodeId d) {
  GCUBE_REQUIRE(!path.empty(), "FindBP requires a non-empty path");
  GCUBE_REQUIRE(d < tree.node_count(), "FindBP target out of range");
  std::unordered_set<NodeId> on_path(path.begin(), path.end());
  GCUBE_REQUIRE(!on_path.contains(d), "FindBP target must lie off the path");
  NodeId r = path.front();
  // Paper FindBP, iteratively: locate the crossing edge of path(r, d) in the
  // highest differing dimension and test which of its endpoints lie on L.
  while (true) {
    const NodeId diff = r ^ d;
    GCUBE_REQUIRE(diff != 0, "target unexpectedly reached");
    const Dim c = msb_index(diff);
    if (c == 0) return r;  // d is a dimension-0 neighbor: branch at r
    const NodeId v1 = (r & ~low_mask(c)) | c;
    const NodeId v2 = flip_bit(v1, c);
    const bool in1 = on_path.contains(v1);
    const bool in2 = on_path.contains(v2);
    if (in1 && !in2) return v1;
    if (in1 && in2) {
      r = v2;  // branch lies beyond the crossing: recurse from v2
    } else {
      GCUBE_REQUIRE(!in2, "v2 on path implies v1 on path in a tree");
      d = v1;  // branch lies before the crossing: recurse toward v1
    }
  }
}

std::map<NodeId, std::vector<NodeId>> build_branch_table(
    const GaussianTree& tree, const std::vector<NodeId>& path,
    const std::vector<NodeId>& targets) {
  std::unordered_set<NodeId> on_path(path.begin(), path.end());
  std::map<NodeId, std::vector<NodeId>> table;
  for (const NodeId t : targets) {
    if (on_path.contains(t)) continue;
    table[find_branch_point(tree, path, t)].push_back(t);
  }
  return table;
}

std::vector<NodeId> closed_traverse(const GaussianTree& tree, NodeId r,
                                    const std::vector<NodeId>& targets) {
  return plan_tree_walk(tree, r, r, targets);
}

std::vector<NodeId> plan_tree_walk(const GaussianTree& tree, NodeId s,
                                   NodeId d,
                                   const std::vector<NodeId>& targets) {
  std::vector<NodeId> terminals = targets;
  terminals.push_back(d);
  const SteinerSubtree st(tree, s, terminals);
  return euler_walk_to(st, s, d, tree);
}

std::size_t steiner_edge_count(const GaussianTree& tree,
                               const std::vector<NodeId>& terminals) {
  GCUBE_REQUIRE(!terminals.empty(), "need at least one terminal");
  const std::vector<NodeId> others(terminals.begin() + 1, terminals.end());
  return SteinerSubtree(tree, terminals.front(), others).edge_count();
}

}  // namespace gcube
