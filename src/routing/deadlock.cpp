#include "routing/deadlock.hpp"

namespace gcube {

void ChannelDependencyGraph::add_route(const Route& route) {
  NodeId cur = route.source();
  std::uint64_t prev_channel = 0;
  bool have_prev = false;
  for (const Dim c : route.hops()) {
    const std::uint64_t channel = channel_id(cur, c);
    edges_.try_emplace(channel);  // register the channel even without deps
    if (have_prev) {
      edges_[prev_channel].insert(channel);
    }
    prev_channel = channel;
    have_prev = true;
    cur = flip_bit(cur, c);
  }
}

void ChannelDependencyGraph::add_route(
    const Route& route, const std::vector<std::uint32_t>& vcs) {
  NodeId cur = route.source();
  std::uint64_t prev_channel = 0;
  bool have_prev = false;
  std::size_t i = 0;
  for (const Dim c : route.hops()) {
    const std::uint64_t channel = channel_id(cur, c, vcs.at(i));
    edges_.try_emplace(channel);
    if (have_prev) {
      edges_[prev_channel].insert(channel);
    }
    prev_channel = channel;
    have_prev = true;
    cur = flip_bit(cur, c);
    ++i;
  }
}

std::vector<std::uint32_t> annotate_virtual_channels(const Route& route) {
  std::vector<std::uint32_t> vcs;
  vcs.reserve(route.length());
  std::uint32_t vc = 0;
  Dim prev = 0;
  bool have_prev = false;
  for (const Dim c : route.hops()) {
    if (have_prev && c <= prev) ++vc;
    vcs.push_back(vc);
    prev = c;
    have_prev = true;
  }
  return vcs;
}

std::uint32_t virtual_channels_required(const Route& route) {
  const auto vcs = annotate_virtual_channels(route);
  return vcs.empty() ? 0 : vcs.back() + 1;
}

std::size_t ChannelDependencyGraph::dependency_count() const {
  std::size_t count = 0;
  for (const auto& [channel, outs] : edges_) count += outs.size();
  return count;
}

bool ChannelDependencyGraph::has_cycle() const {
  // Iterative three-color DFS.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<std::uint64_t, Color> color;
  color.reserve(edges_.size());
  for (const auto& [channel, outs] : edges_) {
    color.emplace(channel, Color::kWhite);
  }
  struct Frame {
    std::uint64_t channel;
    std::unordered_set<std::uint64_t>::const_iterator next;
  };
  for (const auto& [start, start_outs] : edges_) {
    if (color.at(start) != Color::kWhite) continue;
    std::vector<Frame> stack;
    color[start] = Color::kGray;
    stack.push_back({start, start_outs.begin()});
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto& outs = edges_.at(top.channel);
      if (top.next == outs.end()) {
        color[top.channel] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::uint64_t next = *top.next;
      ++top.next;
      const auto it = color.find(next);
      if (it == color.end()) continue;  // channel with no outgoing entry
      if (it->second == Color::kGray) return true;
      if (it->second == Color::kWhite) {
        it->second = Color::kGray;
        stack.push_back({next, edges_.at(next).begin()});
      }
    }
  }
  return false;
}

}  // namespace gcube
