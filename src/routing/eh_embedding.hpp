// Embedding of a Gaussian-Cube crossing structure into an Exchanged
// Hypercube (paper §5, the step enabling Theorem 5).
//
// For two classes p, q adjacent in the Gaussian Tree (differing in exactly
// one tree dimension c), fix every label bit outside
// [0, alpha) ∪ Dim(p) ∪ Dim(q) to an anchor value k. The induced subgraph
// G(p, q, k) of GC is isomorphic to EH(|Dim(p)|, |Dim(q)|):
//
//   GC bits at Dim(p) positions  <->  EH a-part   (movable while in class p)
//   GC bits at Dim(q) positions  <->  EH b-part   (movable while in class q)
//   low alpha bits == p or q     <->  EH c-bit 0 or 1
//   GC links in tree dimension c <->  EH dimension-0 (cross) links
//
// EhEmbedding realizes the bijection in both directions and translates
// dimensions, so FREH can run in clean EH coordinates while faults are
// queried in GC coordinates.
#pragma once

#include <vector>

#include "topology/exchanged_hypercube.hpp"
#include "topology/gaussian_cube.hpp"
#include "util/bits.hpp"

namespace gcube {

class EhEmbedding {
 public:
  /// p, q: adjacent classes in T_alpha (differ in exactly one bit < alpha,
  /// and both |Dim| >= 1 — required for EH(s,t)); anchor: any GC node of
  /// class p or q whose fixed bits select the structure instance.
  EhEmbedding(const GaussianCube& gc, NodeId p, NodeId q, NodeId anchor);

  [[nodiscard]] const ExchangedHypercube& eh() const noexcept { return eh_; }
  /// The tree dimension realized by EH dimension 0.
  [[nodiscard]] Dim cross_dim() const noexcept { return cross_dim_; }

  /// True iff the GC node belongs to this structure instance.
  [[nodiscard]] bool contains(NodeId gc_node) const noexcept;

  /// GC -> EH label. Precondition: contains(gc_node).
  [[nodiscard]] NodeId to_eh(NodeId gc_node) const;

  /// EH -> GC label.
  [[nodiscard]] NodeId from_eh(NodeId eh_node) const;

  /// EH dimension -> GC dimension (0 maps to cross_dim()).
  [[nodiscard]] Dim to_gc_dim(Dim eh_dim) const;

 private:
  NodeId p_;           // the c-bit-0 class
  NodeId q_;           // the c-bit-1 class
  Dim cross_dim_;      // tree dimension where p and q differ
  NodeId fixed_bits_;  // anchored bits outside the structure's free bits
  NodeId fixed_mask_;
  std::vector<Dim> a_dims_;  // Dim(p), ascending: EH dims t+1 .. t+s
  std::vector<Dim> b_dims_;  // Dim(q), ascending: EH dims 1 .. t
  ExchangedHypercube eh_;
};

}  // namespace gcube
