#include "routing/route.hpp"

#include <sstream>
#include <unordered_set>

namespace gcube {

void Route::append(const Route& tail) {
  hops_.insert(hops_.end(), tail.hops_.begin(), tail.hops_.end());
}

NodeId Route::destination() const noexcept {
  NodeId u = src_;
  for (const Dim c : hops_) u = flip_bit(u, c);
  return u;
}

std::vector<NodeId> Route::nodes() const {
  std::vector<NodeId> out;
  out.reserve(hops_.size() + 1);
  NodeId u = src_;
  out.push_back(u);
  for (const Dim c : hops_) {
    u = flip_bit(u, c);
    out.push_back(u);
  }
  return out;
}

bool Route::is_simple() const {
  std::unordered_set<NodeId> seen;
  for (const NodeId u : nodes()) {
    if (!seen.insert(u).second) return false;
  }
  return true;
}

RouteCheck validate_route(const Topology& topo, const FaultSet& faults,
                          const Route& route) {
  auto fail = [](std::string why) { return RouteCheck{false, std::move(why)}; };
  NodeId u = route.source();
  if (u >= topo.node_count()) return fail("source out of range");
  if (faults.node_faulty(u)) return fail("source node is faulty");
  std::size_t i = 0;
  for (const Dim c : route.hops()) {
    std::ostringstream at;
    at << "hop " << i << " (dim " << c << " at node " << u << ")";
    if (c >= topo.dims()) return fail(at.str() + ": dimension out of range");
    if (!topo.has_link(u, c)) {
      return fail(at.str() + ": no such link in " + topo.name());
    }
    if (!faults.link_usable(u, c)) {
      return fail(at.str() + ": link unusable under fault set");
    }
    u = flip_bit(u, c);
    ++i;
  }
  return {};
}

RouteCheck validate_route(const Topology& topo, const Route& route) {
  return validate_route(topo, FaultSet{}, route);
}

}  // namespace gcube
