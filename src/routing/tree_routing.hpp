// Tree-level routing on the Gaussian Tree (paper §4, Algorithms 1-2).
//
// The GC routing strategy reduces inter-class movement to walking T_alpha:
// from the source's class to the destination's class, detouring to visit
// every class in which a high-dimension bit must be fixed. Components:
//
//  * find_branch_point — the paper's FindBP: given the main path L and an
//    off-path target d, the node of L where the detour to d branches off,
//    computed without materializing the path to d;
//  * build_branch_table — the paper's B(·) table: branch node -> targets;
//  * closed_traverse   — the paper's CT: an optimal closed walk from r
//    visiting a target set and returning to r;
//  * plan_tree_walk    — the complete inter-class itinerary: an optimal open
//    walk from s to d covering a target set (every edge off the s-d path is
//    walked exactly twice, every s-d path edge exactly once).
#pragma once

#include <map>
#include <vector>

#include "topology/gaussian_tree.hpp"
#include "util/bits.hpp"

namespace gcube {

/// Paper FindBP. `path` must be a tree path starting at the recursion root r
/// (path.front()); `d` must NOT lie on `path`. Returns the node of `path`
/// where the unique tree path from path.front() to d leaves `path`.
[[nodiscard]] NodeId find_branch_point(const GaussianTree& tree,
                                       const std::vector<NodeId>& path,
                                       NodeId d);

/// The paper's B(·) table for main path L: for every target not on L, the
/// branch node of L it detours from. Targets already on L are omitted.
[[nodiscard]] std::map<NodeId, std::vector<NodeId>> build_branch_table(
    const GaussianTree& tree, const std::vector<NodeId>& path,
    const std::vector<NodeId>& targets);

/// Paper Algorithm 2 (CT): a minimum-length closed walk from r that visits
/// every node in `targets` and returns to r. Length == 2 * (edges of the
/// Steiner tree of {r} ∪ targets).
[[nodiscard]] std::vector<NodeId> closed_traverse(
    const GaussianTree& tree, NodeId r, const std::vector<NodeId>& targets);

/// A minimum-length open walk from s to d visiting every node in `targets`.
/// Length == 2 * steiner_edges({s, d} ∪ targets) − dist(s, d). Consecutive
/// walk entries are always tree neighbors; the walk starts at s and ends at
/// d (size 1 when everything coincides).
[[nodiscard]] std::vector<NodeId> plan_tree_walk(
    const GaussianTree& tree, NodeId s, NodeId d,
    const std::vector<NodeId>& targets);

/// Number of edges of the Steiner tree spanning `terminals` (the union of
/// pairwise tree paths). Used by tests to certify walk optimality.
[[nodiscard]] std::size_t steiner_edge_count(
    const GaussianTree& tree, const std::vector<NodeId>& terminals);

}  // namespace gcube
