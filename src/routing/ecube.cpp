#include "routing/ecube.hpp"

#include "util/error.hpp"

namespace gcube {

RoutingResult EcubeRouter::plan(NodeId s, NodeId d) const {
  GCUBE_REQUIRE(s < topo_.node_count() && d < topo_.node_count(),
                "node out of range");
  Route route(s);
  NodeId cur = s;
  NodeId diff = s ^ d;
  while (diff != 0) {
    const Dim c = lsb_index(diff);
    diff &= diff - 1;
    GCUBE_REQUIRE(topo_.has_link(cur, c),
                  "e-cube requires a complete hypercube");
    route.append(c);
    cur = flip_bit(cur, c);
  }
  RoutingResult result;
  result.route = std::move(route);
  return result;
}

}  // namespace gcube
