#include "routing/freh.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "routing/hypercube_ft.hpp"
#include "util/error.hpp"

namespace gcube {

EhFaultOracle make_eh_oracle(const FaultSet& faults) {
  return EhFaultOracle{
      [&faults](NodeId u) { return faults.node_faulty(u); },
      [&faults](NodeId u, Dim c) { return faults.link_usable(u, c); }};
}

namespace {

/// Per-side geometry helpers: which EH dimensions span this side's cubes.
struct SideView {
  NodeId dims_mask;  // in-cube dimensions, as a label bitmask
  Dim dim_lo;        // first in-cube EH dimension
  Dim dim_count;
};

SideView side_view(const ExchangedHypercube& eh, std::uint32_t side) {
  if (side == 0) {  // a-part moves: dims [t+1, t+s]
    return {low_bits(low_mask(eh.t() + eh.s() + 1) & ~low_mask(eh.t() + 1),
                     eh.dims()),
            eh.t() + 1, eh.s()};
  }
  return {low_mask(eh.t() + 1) & ~NodeId{1}, 1, eh.t()};  // b-part: [1, t]
}

}  // namespace

RoutingResult freh_route(const ExchangedHypercube& eh,
                         const EhFaultOracle& oracle, NodeId r, NodeId d,
                         FrehStats* stats) {
  FrehStats local;
  FrehStats& st = stats != nullptr ? *stats : local;
  st = FrehStats{};
  RoutingResult result;
  auto fail = [&](std::string why) {
    result.failure = std::move(why);
    result.faults_hit = st.faults_encountered;
    return result;
  };
  if (oracle.node_faulty(r) || oracle.node_faulty(d)) {
    return fail("source or destination faulty");
  }

  Route route(r);
  NodeId cur = r;
  // Spare masks per side (EH label bitmasks) — the paper's dimension masks.
  NodeId mask[2] = {0, 0};
  // Cross positions (label with c cleared) already used; never reused.
  std::unordered_set<NodeId> used_cross;
  std::unordered_set<std::uint64_t> faults_seen;
  auto note_fault = [&](NodeId u, Dim c) {
    const LinkId l = LinkId::of(u, c);
    if (faults_seen.insert((std::uint64_t{l.lo} << 6) | l.dim).second) {
      ++st.faults_encountered;
    }
  };

  const std::size_t budget =
      (eh.s() + eh.t() + 2) + 2 * (eh.s() + eh.t()) + 4;

  auto in_cube_route = [&](NodeId target) -> bool {
    const SideView view = side_view(eh, eh.c_bit(cur));
    SubcubeFtStats cube_stats;
    RoutingResult leg = informed_subcube_route(cur, target, view.dims_mask,
                                               oracle.link_usable, &cube_stats);
    st.spare_hops += cube_stats.spare_hops;
    st.faults_encountered += cube_stats.faults_encountered;
    st.used_fallback = st.used_fallback || cube_stats.used_fallback;
    if (!leg.delivered()) return false;
    route.append(*leg.route);
    cur = target;
    return true;
  };

  while (cur != d) {
    if (route.length() > budget) {
      return fail("FREH exceeded its hop budget (precondition violated?)");
    }
    const std::uint32_t side = eh.c_bit(cur);
    if (side == eh.c_bit(d)) {
      const bool same_cube = side == 0 ? eh.b_part(cur) == eh.b_part(d)
                                       : eh.a_part(cur) == eh.a_part(d);
      if (same_cube) {
        if (!in_cube_route(d)) {
          return fail("in-cube routing to destination failed");
        }
        break;
      }
    }

    // We must cross. Candidate crossing positions within the current cube:
    // the destination's position for this side first, then its neighbors
    // (unmasked spare dimensions before masked ones).
    const SideView view = side_view(eh, side);
    const NodeId ideal_part = side == 0 ? eh.a_part(d) : eh.b_part(d);
    const NodeId ideal = side == 0
                             ? eh.make_node(ideal_part, eh.b_part(cur), 0)
                             : eh.make_node(eh.a_part(cur), ideal_part, 1);
    std::vector<NodeId> candidates{ideal};
    std::vector<NodeId> masked_candidates;
    for (Dim j = 0; j < view.dim_count; ++j) {
      const Dim dim = view.dim_lo + j;
      const NodeId cand = flip_bit(ideal, dim);
      ((mask[side] >> dim) & 1u ? masked_candidates : candidates)
          .push_back(cand);
    }
    candidates.insert(candidates.end(), masked_candidates.begin(),
                      masked_candidates.end());

    bool crossed = false;
    for (const NodeId cand : candidates) {
      if (used_cross.contains(cand & ~NodeId{1})) continue;
      if (oracle.node_faulty(cand) ||
          oracle.node_faulty(flip_bit(cand, 0)) ||
          !oracle.link_usable(cand, 0)) {
        note_fault(cand, 0);
        continue;
      }
      if (!in_cube_route(cand)) continue;
      if (cand != ideal) {
        mask[side] |= (cand ^ ideal);  // mask the displacement dimension
        ++st.spare_hops;
      }
      used_cross.insert(cand & ~NodeId{1});
      route.append(0);
      cur = flip_bit(cur, 0);
      ++st.crossings;
      crossed = true;
      break;
    }
    if (!crossed) {
      return fail("no usable crossing position (precondition violated?)");
    }
  }

  result.faults_hit = st.faults_encountered;
  result.route = std::move(route);
  return result;
}

RoutingResult informed_eh_route(const ExchangedHypercube& eh,
                                const EhFaultOracle& oracle, NodeId r,
                                NodeId d, FrehStats* stats) {
  FrehStats local;
  FrehStats& st = stats != nullptr ? *stats : local;
  st = FrehStats{};
  RoutingResult result;
  if (oracle.node_faulty(r) || oracle.node_faulty(d)) {
    result.failure = "source or destination faulty";
    return result;
  }
  // BFS from the destination over usable links (the post-initialization
  // knowledge), then walk downhill from r.
  std::unordered_map<NodeId, std::uint32_t> dist;
  std::deque<NodeId> queue{d};
  dist.emplace(d, 0);
  const Dim dims = eh.dims();
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (Dim c = 0; c < dims; ++c) {
      if (!eh.has_link(u, c) || !oracle.link_usable(u, c)) continue;
      const NodeId v = flip_bit(u, c);
      if (dist.emplace(v, dist.at(u) + 1).second) queue.push_back(v);
    }
  }
  if (!dist.contains(r)) {
    result.failure = "crossing structure disconnected under faults";
    return result;
  }
  Route route(r);
  NodeId cur = r;
  while (cur != d) {
    const std::uint32_t here = dist.at(cur);
    Dim chosen = kMaxDimension + 1;
    for (Dim c = 0; c < dims; ++c) {
      if (!eh.has_link(cur, c) || !oracle.link_usable(cur, c)) continue;
      const auto it = dist.find(flip_bit(cur, c));
      if (it != dist.end() && it->second == here - 1) {
        chosen = c;
        break;
      }
    }
    GCUBE_REQUIRE(chosen <= kMaxDimension,
                  "downhill neighbor must exist on a shortest path");
    if (chosen == 0) ++st.crossings;
    route.append(chosen);
    cur = flip_bit(cur, chosen);
  }
  result.route = std::move(route);
  return result;
}

EhFaultCounts count_eh_faults(const ExchangedHypercube& eh,
                              const FaultSet& faults) {
  EhFaultCounts counts;
  for (const NodeId u : faults.faulty_nodes()) {
    (eh.c_bit(u) == 0 ? counts.f_s : counts.f_t) += 1;
  }
  for (const LinkId& l : faults.faulty_links()) {
    if (l.dim == 0) {
      if (!faults.node_faulty(l.lo) && !faults.node_faulty(l.hi())) {
        ++counts.f_0;
      }
    } else {
      (l.dim > eh.t() ? counts.f_s : counts.f_t) += 1;
    }
  }
  return counts;
}

bool theorem4_holds(const ExchangedHypercube& eh, const FaultSet& faults) {
  const EhFaultCounts counts = count_eh_faults(eh, faults);
  const bool s_ok = counts.f_s + counts.f_0 == 0 ||
                    counts.f_s + counts.f_0 < eh.s();
  const bool t_ok = counts.f_t + counts.f_0 == 0 ||
                    counts.f_t + counts.f_0 < eh.t();
  return s_ok && t_ok;
}

}  // namespace gcube
