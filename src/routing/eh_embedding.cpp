#include "routing/eh_embedding.hpp"

#include "util/error.hpp"

namespace gcube {

namespace {

ExchangedHypercube make_eh(const GaussianCube& gc, NodeId p, NodeId q) {
  const Dim s = gc.high_dim_count(p);
  const Dim t = gc.high_dim_count(q);
  GCUBE_REQUIRE(s >= 1 && t >= 1,
                "EH embedding requires both classes to have hypercube "
                "dimensions (|Dim| >= 1)");
  return ExchangedHypercube(s, t);
}

}  // namespace

EhEmbedding::EhEmbedding(const GaussianCube& gc, NodeId p, NodeId q,
                         NodeId anchor)
    : p_(p), q_(q), eh_(make_eh(gc, p, q)) {
  const Dim alpha = gc.alpha();
  const NodeId class_diff = p ^ q;
  GCUBE_REQUIRE(popcount(class_diff) == 1 && lsb_index(class_diff) < alpha,
                "p and q must be tree neighbors (differ in one tree bit)");
  cross_dim_ = lsb_index(class_diff);

  for (NodeId m = gc.high_dims_mask(p); m != 0; m &= m - 1) {
    a_dims_.push_back(lsb_index(m));
  }
  for (NodeId m = gc.high_dims_mask(q); m != 0; m &= m - 1) {
    b_dims_.push_back(lsb_index(m));
  }
  GCUBE_REQUIRE((gc.high_dims_mask(p) & gc.high_dims_mask(q)) == 0,
                "Dim(p) and Dim(q) are disjoint by construction");

  // Free bits of the structure: the whole low-alpha field never varies
  // except for the cross bit, but nodes of the structure all carry either
  // exactly p or exactly q there — so the fixed mask covers everything
  // outside Dim(p) ∪ Dim(q) ∪ {cross bit}, with the low bits anchored to
  // the shared bits of p and q.
  const NodeId free = gc.high_dims_mask(p) | gc.high_dims_mask(q) |
                      (NodeId{1} << cross_dim_);
  fixed_mask_ = low_bits(~free, gc.dims());
  const NodeId anchor_class = gc.ending_class(anchor);
  GCUBE_REQUIRE(anchor_class == p || anchor_class == q,
                "anchor must belong to class p or q");
  fixed_bits_ = anchor & fixed_mask_;
}

bool EhEmbedding::contains(NodeId gc_node) const noexcept {
  return (gc_node & fixed_mask_) == fixed_bits_;
}

NodeId EhEmbedding::to_eh(NodeId gc_node) const {
  GCUBE_REQUIRE(contains(gc_node), "node outside this crossing structure");
  NodeId a = 0;
  for (std::size_t i = 0; i < a_dims_.size(); ++i) {
    a |= bit(gc_node, a_dims_[i]) << i;
  }
  NodeId b = 0;
  for (std::size_t i = 0; i < b_dims_.size(); ++i) {
    b |= bit(gc_node, b_dims_[i]) << i;
  }
  const std::uint32_t c = bit(gc_node, cross_dim_) == bit(q_, cross_dim_);
  return eh_.make_node(a, b, c);
}

NodeId EhEmbedding::from_eh(NodeId eh_node) const {
  NodeId out = fixed_bits_;
  const NodeId a = eh_.a_part(eh_node);
  for (std::size_t i = 0; i < a_dims_.size(); ++i) {
    out = set_bit(out, a_dims_[i], bit(a, static_cast<Dim>(i)));
  }
  const NodeId b = eh_.b_part(eh_node);
  for (std::size_t i = 0; i < b_dims_.size(); ++i) {
    out = set_bit(out, b_dims_[i], bit(b, static_cast<Dim>(i)));
  }
  const NodeId cls = eh_.c_bit(eh_node) == 1 ? q_ : p_;
  return set_bit(out, cross_dim_, bit(cls, cross_dim_));
}

Dim EhEmbedding::to_gc_dim(Dim eh_dim) const {
  if (eh_dim == 0) return cross_dim_;
  const Dim t = eh_.t();
  if (eh_dim <= t) return b_dims_[eh_dim - 1];
  return a_dims_[eh_dim - t - 1];
}

}  // namespace gcube
