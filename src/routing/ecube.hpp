// E-cube (dimension-ordered) routing for the binary hypercube.
//
// The classical baseline: flip differing dimensions in ascending order.
// Valid on any topology in which every node has every link (Hypercube,
// GC(n, 1)); used as the comparison router in benchmarks and as the
// fault-free intra-GEEC move order.
#pragma once

#include "routing/router.hpp"
#include "topology/topology.hpp"

namespace gcube {

class EcubeRouter final : public Router {
 public:
  /// `topo` must be a full hypercube (every link present); checked per hop
  /// when planning.
  explicit EcubeRouter(const Topology& topo) : topo_(topo) {}

  [[nodiscard]] RoutingResult plan(NodeId s, NodeId d) const override;
  [[nodiscard]] std::string name() const override { return "e-cube"; }

 private:
  const Topology& topo_;
};

}  // namespace gcube
