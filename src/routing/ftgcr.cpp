#include "routing/ftgcr.hpp"

#include <array>
#include <deque>
#include <unordered_map>
#include <utility>

#include "routing/eh_embedding.hpp"
#include "routing/freh.hpp"
#include "routing/hypercube_ft.hpp"
#include "util/error.hpp"

namespace gcube {

FtgcrRouter::FtgcrRouter(const GaussianCube& gc, const FaultSet& faults)
    : gc_(gc), faults_(faults), tree_(gc.alpha()), fabric_(gc) {}

RoutingResult FtgcrRouter::plan(NodeId s, NodeId d) const {
  FtgcrStats stats;
  return plan_with_stats(s, d, stats);
}

namespace {

/// Fault-aware BFS over the whole cube — the strategy's last-resort global
/// re-plan. Returns the hop sequence from `start` to `dest`, or nothing.
std::optional<std::vector<Dim>> global_bfs(const GaussianCube& gc,
                                           const FaultSet& faults,
                                           NodeId start, NodeId dest) {
  if (start == dest) return std::vector<Dim>{};
  std::unordered_map<NodeId, std::pair<NodeId, Dim>> prev;
  std::deque<NodeId> queue{start};
  prev.emplace(start, std::make_pair(start, Dim{0}));
  const Dim n = gc.dims();
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (Dim c = 0; c < n; ++c) {
      if (!gc.has_link(u, c) || !faults.link_usable(u, c)) continue;
      const NodeId v = flip_bit(u, c);
      if (prev.contains(v)) continue;
      prev.emplace(v, std::make_pair(u, c));
      if (v == dest) {
        std::vector<Dim> hops;
        NodeId w = dest;
        while (w != start) {
          const auto& [from, dim] = prev.at(w);
          hops.push_back(dim);
          w = from;
        }
        std::reverse(hops.begin(), hops.end());
        return hops;
      }
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Route> FtgcrRouter::fault_free_route_if_clean(
    NodeId s, NodeId d) const {
  const std::shared_ptr<const GcRoutePlan> itinerary =
      itineraries_.get(gc_, tree_, s, d);
  Route route(s);
  NodeId cur = s;
  bool clean = true;
  // Mirrors the traversal below with all fault branches collapsed to a
  // single usability check per hop: in-class fixes flip pending bits
  // lsb-first (informed_subcube_route's direct path), crossings take the
  // tree-edge dimension, and an already-satisfied leaf detour is skipped —
  // so a clean result is hop-for-hop what the full machinery would emit.
  auto append_checked = [&](Dim c) {
    if (!faults_.link_usable(cur, c)) {
      clean = false;
      return false;
    }
    route.append(c);
    cur = flip_bit(cur, c);
    return true;
  };
  auto fix_bits = [&](NodeId mask) {
    for (NodeId m = mask; m != 0; m &= m - 1) {
      if (!append_checked(lsb_index(m))) return false;
    }
    return true;
  };
  // Pending masks copied to the stack; consumption must not touch the
  // shared itinerary.
  std::array<std::pair<NodeId, NodeId>, kMaxDimension> pending;
  std::size_t pending_count = 0;
  for (const auto& [cls, mask] : itinerary->pending_high) {
    pending[pending_count++] = {cls, mask};
  }
  auto take_pending = [&](NodeId cls) -> NodeId {
    for (std::size_t i = 0; i < pending_count; ++i) {
      if (pending[i].first != cls) continue;
      const NodeId mask = pending[i].second;
      pending[i] = pending[--pending_count];
      return mask;
    }
    return 0;
  };

  const std::vector<NodeId>& walk = itinerary->class_walk;
  if (walk.size() == 1) {
    if (!fix_bits(take_pending(walk.front()))) return std::nullopt;
    GCUBE_REQUIRE(cur == d, "fault-free route must terminate at d");
    return route;
  }
  for (std::size_t i = 0; i + 1 < walk.size();) {
    const NodeId a = walk[i];
    const NodeId b = walk[i + 1];
    const Dim c = lsb_index(a ^ b);
    const NodeId mask_a = take_pending(a);
    const NodeId mask_b = take_pending(b);
    if (!fix_bits(mask_a)) return std::nullopt;
    const bool leaf_detour = i + 2 < walk.size() && walk[i + 2] == a;
    if (leaf_detour) {
      if (mask_b == 0 || ((cur ^ d) & mask_b) == 0) {
        i += 2;  // nothing left to fix there: skip the detour entirely
        continue;
      }
      if (!append_checked(c) || !fix_bits(mask_b) || !append_checked(c)) {
        return std::nullopt;
      }
      i += 2;
      continue;
    }
    if (!append_checked(c) || !fix_bits(mask_b)) return std::nullopt;
    ++i;
  }
  if (!clean) return std::nullopt;
  GCUBE_REQUIRE(cur == d, "fault-free route must terminate at d");
  return route;
}

RoutingResult FtgcrRouter::plan_with_stats(NodeId s, NodeId d,
                                           FtgcrStats& stats) const {
  stats = FtgcrStats{};
  RoutingResult result;
  auto fail = [&](std::string why) {
    result.failure = std::move(why);
    result.faults_hit = stats.faults_encountered;
    return result;
  };
  if (faults_.node_faulty(s) || faults_.node_faulty(d)) {
    return fail("source or destination faulty");
  }

  // Fast path: when no hop of the fault-free composite route is unusable,
  // the full machinery below would reproduce exactly that route with zero
  // stats — skip it. Faults are sparse, so this is the common case.
  if (std::optional<Route> fast = fault_free_route_if_clean(s, d)) {
    result.route = std::move(*fast);
    return result;
  }

  GcRoutePlan itinerary = *itineraries_.get(gc_, tree_, s, d);
  Route route(s);
  NodeId cur = s;
  const auto usable = [this](NodeId u, Dim c) {
    return faults_.link_usable(u, c);
  };

  /// Takes the pending high-bit mask of class `cls` out of the itinerary.
  auto take_pending = [&](NodeId cls) -> NodeId {
    const auto it = itinerary.pending_high.find(cls);
    if (it == itinerary.pending_high.end()) return 0;
    const NodeId mask = it->second;
    itinerary.pending_high.erase(it);
    return mask;
  };

  // Fault-tolerant unicast inside the current GEEC (Theorem 3 mechanism).
  auto in_class_route = [&](NodeId target) -> bool {
    if (target == cur) return true;
    const NodeId cls = gc_.ending_class(cur);
    SubcubeFtStats cube_stats;
    RoutingResult leg = informed_subcube_route(
        cur, target, gc_.high_dims_mask(cls), usable, &cube_stats);
    stats.spare_hops += cube_stats.spare_hops;
    stats.faults_encountered += cube_stats.faults_encountered;
    if (!leg.delivered()) return false;
    route.append(*leg.route);
    cur = target;
    return true;
  };

  // One FREH instance over the crossing structure of classes (p, q); the
  // destination may sit on either side, so this covers folded fixes,
  // displaced crossings, and leaf detours (Cases I-IV of Algorithm 4).
  auto freh_leg = [&](NodeId p, NodeId q, NodeId target) -> bool {
    if (gc_.high_dim_count(p) == 0 || gc_.high_dim_count(q) == 0) {
      return false;  // no EH structure to detour through (Theorem 5 limit)
    }
    const EhEmbedding emb(gc_, p, q, cur);
    if (!emb.contains(target)) return false;
    const EhFaultOracle oracle{
        [&](NodeId u) { return faults_.node_faulty(emb.from_eh(u)); },
        [&](NodeId u, Dim eh_dim) {
          return faults_.link_usable(emb.from_eh(u), emb.to_gc_dim(eh_dim));
        }};
    FrehStats freh_stats;
    RoutingResult leg = informed_eh_route(emb.eh(), oracle, emb.to_eh(cur),
                                          emb.to_eh(target), &freh_stats);
    stats.spare_hops += freh_stats.spare_hops;
    stats.faults_encountered += freh_stats.faults_encountered;
    stats.used_fallback = stats.used_fallback || freh_stats.used_fallback;
    ++stats.freh_crossings;
    if (!leg.delivered()) return false;
    for (const Dim eh_dim : leg.route->hops()) {
      const Dim gc_dim = emb.to_gc_dim(eh_dim);
      route.append(gc_dim);
      cur = flip_bit(cur, gc_dim);
    }
    GCUBE_REQUIRE(cur == target, "FREH leg must land on its target");
    return true;
  };

  // Last resort: globally re-plan the remaining route. Handles the one
  // configuration the paper's §5 outline leaves open (a faulty forced
  // intermediate at a pass-through class) without hiding it: counted in
  // stats.global_replans.
  auto global_replan = [&]() -> bool {
    const auto tail = global_bfs(gc_, faults_, cur, d);
    if (!tail) return false;
    ++stats.global_replans;
    for (const Dim c : *tail) {
      route.append(c);
      cur = flip_bit(cur, c);
    }
    return true;
  };

  auto finish = [&]() {
    GCUBE_REQUIRE(cur == d, "FTGCR route must terminate at the destination");
    result.faults_hit = stats.faults_encountered;
    result.route = std::move(route);
    return result;
  };

  const auto& walk = itinerary.class_walk;
  // Degenerate itinerary: everything happens inside the source class.
  if (walk.size() == 1) {
    const NodeId mask = take_pending(walk.front());
    const NodeId target = (cur & ~mask) | (d & mask);
    if (in_class_route(target)) return finish();
    if (global_replan()) return finish();
    return fail("in-class routing failed and the cube is disconnected");
  }

  for (std::size_t i = 0; i + 1 < walk.size();) {
    const NodeId a = walk[i];
    const NodeId b = walk[i + 1];
    const Dim c = lsb_index(a ^ b);
    const NodeId mask_a = take_pending(a);
    const NodeId mask_b = take_pending(b);

    // Leaf detour a -> b -> a: its only purpose is fixing b's bits; run it
    // as one same-side FREH instance (Algorithm 4 Case III/IV), which
    // tolerates a faulty natural intermediate by crossing displaced.
    const bool leaf_detour = i + 2 < walk.size() && walk[i + 2] == a;
    if (leaf_detour) {
      // a's own bits must be in place before detouring (invariant).
      const NodeId a_target = (cur & ~mask_a) | (d & mask_a);
      if (!in_class_route(a_target)) {
        if (global_replan()) return finish();
        return fail("in-class fix failed before a leaf detour");
      }
      const NodeId detour_target = (cur & ~mask_b) | (d & mask_b);
      if (detour_target == cur) {
        i += 2;  // nothing left to fix there: skip the detour entirely
        continue;
      }
      // Fast path: cross, fix b inside its GEEC, cross back — assembled
      // only if every piece works, so nothing needs undoing. This is the
      // optimal detour and the common case; the EH machinery below only
      // engages when a fault obstructs it.
      if (usable(cur, c)) {
        const NodeId over = flip_bit(cur, c);
        const NodeId fixed = (over & ~mask_b) | (d & mask_b);
        SubcubeFtStats cube_stats;
        RoutingResult mid = informed_subcube_route(
            over, fixed, gc_.high_dims_mask(b), usable, &cube_stats);
        if (mid.delivered() && usable(fixed, c)) {
          stats.spare_hops += cube_stats.spare_hops;
          stats.faults_encountered += cube_stats.faults_encountered;
          route.append(c);
          for (const Dim h : mid.route->hops()) route.append(h);
          route.append(c);
          cur = flip_bit(fixed, c);
          GCUBE_REQUIRE(cur == detour_target,
                        "plain detour must land on its target");
          i += 2;
          continue;
        }
      }
      // Blocked detour: same-side FREH instance (Algorithm 4 Case III/IV),
      // which tolerates a faulty natural intermediate by crossing
      // displaced. Needs hypercube dimensions on the a side.
      if (gc_.high_dim_count(a) >= 1 && freh_leg(a, b, detour_target)) {
        i += 2;
        continue;
      }
      if (global_replan()) return finish();
      return fail("leaf-detour crossing failed (Theorem 5 limit)");
    }

    // Ordinary walk edge a -> b. Invariant target: a's bits already at the
    // destination values, b's bits set while crossing.
    const NodeId a_target = (cur & ~mask_a) | (d & mask_a);
    const NodeId over_target =
        (flip_bit(a_target, c) & ~mask_b) | (d & mask_b);
    // Fast path: in-class fix, hop, in-class fix.
    bool ok = in_class_route(a_target);
    if (ok && usable(cur, c)) {
      route.append(c);
      cur = flip_bit(cur, c);
      ok = in_class_route(over_target);
    } else {
      ok = false;
    }
    if (!ok && cur != over_target) {
      if (!freh_leg(a, b, over_target)) {
        if (global_replan()) return finish();
        return fail("crossing failed and no global detour exists");
      }
    }
    ++i;
  }

  return finish();
}

std::shared_ptr<const Route> FtgcrRouter::plan_shared(NodeId s,
                                                      NodeId d) const {
  const std::uint64_t key = pack_node_pair(s, d);
  const std::uint64_t version = faults_.version();
  if (auto hit = plan_cache_.find(key, version)) return *hit;
  RoutingResult r = plan(s, d);
  std::shared_ptr<const Route> route =
      r.delivered() ? std::make_shared<const Route>(std::move(*r.route))
                    : nullptr;
  plan_cache_.insert(key, version, route);
  return route;
}

std::optional<Dim> FtgcrRouter::next_hop(NodeId cur, NodeId dst) const {
  if (cur == dst) return std::nullopt;
  // Fault-free fast path: with zero faults every route is clean, so the
  // machinery's first hop is FFGCR's — a pure table lookup. Gated on
  // faults_.empty(), NOT on cur being locally clean: a fault anywhere
  // downstream can steer informed_subcube_route onto a different first
  // dimension even at a node whose own links are all usable.
  if (fabric_.supported() && faults_.empty()) {
    return fabric_.fault_free_hop(cur, dst);
  }
  const std::uint64_t key = pack_node_pair(cur, dst);
  const std::uint64_t version = faults_.version();
  if (auto hit = hop_cache_.find(key, version)) return *hit;
  // Planning through plan_shared warms the route cache for free: a packet
  // re-planned here and a packet injected for the same pair share work.
  const std::shared_ptr<const Route> r = plan_shared(cur, dst);
  const std::optional<Dim> hop = r != nullptr && !r->empty()
                                     ? std::optional<Dim>(r->hops().front())
                                     : std::nullopt;
  hop_cache_.insert(key, version, hop);
  return hop;
}

}  // namespace gcube
