// Router interface: source-route planners.
//
// Planners produce complete Routes. This matches the paper's execution
// model: the tree itinerary is computed at the source (O(n) message
// overhead), while fault handling uses only information the paper assumes
// locally available (incident link status plus fault data for same-class
// nodes); the simulator then executes routes hop by hop under queueing.
#pragma once

#include <string>

#include "routing/route.hpp"
#include "util/bits.hpp"

namespace gcube {

class Router {
 public:
  virtual ~Router() = default;

  /// Plans a route from s to d. A planner may fail (RoutingResult::route
  /// empty) when fault preconditions are violated; it must never return an
  /// invalid route.
  [[nodiscard]] virtual RoutingResult plan(NodeId s, NodeId d) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace gcube
