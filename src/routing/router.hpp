// Router interface: source-route planners with an online stepwise view.
//
// Planners produce complete Routes. This matches the paper's execution
// model: the tree itinerary is computed at the source (O(n) message
// overhead), while fault handling uses only information the paper assumes
// locally available (incident link status plus fault data for same-class
// nodes); the simulator then executes routes hop by hop under queueing.
//
// FTGCR is additionally an *online, distributed* strategy (paper §5): a
// node can pick the next hop from its current fault knowledge. next_hop()
// exposes that view for the simulator's dynamic-fault mode — a packet
// whose precomputed next link just died re-plans from its current node
// instead of traversing a dead link. Fault-aware routers memoize these
// re-plans per (cur, dst) and invalidate on FaultSet::version() changes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "routing/route.hpp"
#include "util/bits.hpp"
#include "util/cache_stats.hpp"

namespace gcube {

class NextHopFabric;

/// Lookup counters for a router's memoization layers: whole-route planning
/// (plan_shared) and stepwise next-hop re-planning. Cumulative since router
/// construction; consumers snapshot-and-subtract to scope a measurement
/// window. Diagnostics only — under concurrent lookups the split between
/// hits and misses can vary run to run even when routing results do not.
struct RouterCacheStats {
  CacheStats plan;
  CacheStats hop;

  RouterCacheStats& operator+=(const RouterCacheStats& o) noexcept {
    plan += o.plan;
    hop += o.hop;
    return *this;
  }
  [[nodiscard]] RouterCacheStats operator-(
      const RouterCacheStats& o) const noexcept {
    return {plan - o.plan, hop - o.hop};
  }
  friend bool operator==(const RouterCacheStats&,
                         const RouterCacheStats&) = default;
};

class Router {
 public:
  virtual ~Router() = default;

  /// Plans a route from s to d. A planner may fail (RoutingResult::route
  /// empty) when fault preconditions are violated; it must never return an
  /// invalid route.
  [[nodiscard]] virtual RoutingResult plan(NodeId s, NodeId d) const = 0;

  /// Shared-ownership planning for the simulator hot path: the same route
  /// as plan(), or nullptr when planning fails. Fault-aware routers
  /// override this with a (src, dst)-keyed cache of immutable routes,
  /// invalidated by FaultSet::version() stamping, so repeat planning costs
  /// one lookup and packets can reference the route without copying its
  /// hop vector. The default derives an uncached route from plan().
  [[nodiscard]] virtual std::shared_ptr<const Route> plan_shared(
      NodeId s, NodeId d) const {
    RoutingResult r = plan(s, d);
    if (!r.delivered()) return nullptr;
    return std::make_shared<const Route>(std::move(*r.route));
  }

  /// Stepwise interface: the dimension of the first hop of a route from
  /// cur to dst under the router's *current* fault knowledge, or nullopt
  /// when cur == dst or no route exists. The default derives it from
  /// plan(); fault-aware routers override with memoized re-plans.
  [[nodiscard]] virtual std::optional<Dim> next_hop(NodeId cur,
                                                    NodeId dst) const {
    if (cur == dst) return std::nullopt;
    const RoutingResult r = plan(cur, dst);
    if (!r.delivered() || r.route->empty()) return std::nullopt;
    return r.route->hops().front();
  }

  /// Cumulative cache counters for the router's plan/hop memoization.
  /// Routers without caches report all-zero stats.
  [[nodiscard]] virtual RouterCacheStats cache_stats() const { return {}; }

  /// The router's precomputed next-hop tables (routing/next_hop_table.hpp),
  /// or nullptr when it has none. The simulator steers packets through the
  /// fabric directly — skipping plan_shared at injection — whenever the
  /// returned fabric reports supported().
  [[nodiscard]] virtual const NextHopFabric* fabric() const {
    return nullptr;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace gcube
